//! Aggregation trees: folding a whole fleet's snapshots into one.
//!
//! [`MonitorSnapshot::merge`] combines two shard snapshots — and pays a
//! full ε-kernel pass (window, decayed horizon, every subset) per pair.
//! Folding 1 000 replicas pairwise therefore runs the kernel 999 times to
//! produce one number, and clones the axis vocabulary at every step. The
//! tree fold exploits what PR 4's property suite proved about the merge:
//! it is a **commutative monoid** on the counts (cell sums, record
//! totals, max clocks, max detector statistics, canonically ordered log
//! concatenation), so every derived field depends only on the *final*
//! accumulated counts — never on the fold order or shape.
//!
//! [`merge_many`] and [`merge_tree`] accumulate raw state in place
//! ([`CountsSnapshot::merge_from`], no per-pair axis clones) and run the
//! ε kernel exactly **once**, at the root. The result is byte-identical
//! to the sequential pairwise fold for any arity and any leaf order:
//! integer window counts are exact in `f64`, so cell sums reassociate
//! freely, and the alert/alarm logs sort under a canonical total key.
//! (Decayed-horizon cells are floating-point; their sums reassociate
//! exactly whenever the decay factor keeps cells dyadic — e.g. λ = 0.5 —
//! and to within 1 ulp otherwise.)
//!
//! `merge_tree`'s explicit arity models a *distributed* aggregation tier:
//! each intermediate node folds the k frames below it and forwards one
//! partial frame upward; only the root finishes. `merge_many` is the
//! single-aggregator special case (arity = fleet size).

use crate::builder::EpsilonEstimator;
use crate::error::{DfError, Result};
use crate::monitor::MonitorSnapshot;

/// Folds any number of shard snapshots into the fleet-wide monitor state,
/// recomputing ε (and the subset lattice) with `estimator` once over the
/// accumulated counts. Byte-identical to folding the slice sequentially
/// with [`MonitorSnapshot::merge`], at a fraction of the cost — see the
/// `fleet` criterion bench. (Exact for integer window counts and every
/// count-derived field; decayed-horizon cells are floating-point sums,
/// byte-exact when the decay keeps them dyadic — e.g. λ = 0.5 — and
/// within 1 ulp of the pairwise fold otherwise.)
///
/// Errors on an empty slice and on configuration-incompatible shards
/// (different schemas, windows, decay, subset lattices, or detectors).
pub fn merge_many(
    snapshots: &[MonitorSnapshot],
    estimator: &dyn EpsilonEstimator,
) -> Result<MonitorSnapshot> {
    merge_tree(snapshots, snapshots.len().max(2), estimator)
}

/// [`merge_many`] through an explicit k-ary aggregation tree: leaves are
/// grouped `arity` at a time, each group folds into one partial node, and
/// levels repeat until a single root remains, which alone pays the ε
/// recomputation. The output is byte-identical for every `arity ≥ 2` and
/// every leaf order — tree shape is a deployment choice (how many frames
/// each aggregation tier fans in), not a semantic one. (Same
/// decayed-horizon caveat as [`merge_many`]: non-dyadic λ reassociates
/// float sums, so those cells match the pairwise fold to 1 ulp rather
/// than bit-for-bit.)
pub fn merge_tree(
    snapshots: &[MonitorSnapshot],
    arity: usize,
    estimator: &dyn EpsilonEstimator,
) -> Result<MonitorSnapshot> {
    if arity < 2 {
        return Err(DfError::Invalid(format!(
            "aggregation tree arity must be at least 2, got {arity}"
        )));
    }
    if snapshots.is_empty() {
        return Err(DfError::Invalid(
            "cannot merge an empty set of snapshots".into(),
        ));
    }
    // Level 0: fold each group of leaves into one partial node.
    let mut nodes: Vec<MonitorSnapshot> = snapshots
        .chunks(arity)
        .map(|group| {
            let mut acc = group[0].clone();
            for leaf in &group[1..] {
                acc.absorb_counts(leaf)?;
            }
            Ok(acc)
        })
        .collect::<Result<_>>()?;
    // Upper levels: fold partial nodes until one root remains. Counts are
    // already accumulated in place; no ε work happens here.
    while nodes.len() > 1 {
        nodes = fold_level(nodes, arity)?;
    }
    let mut root = nodes.pop().expect("at least one node by construction");
    root.canonicalize_and_recompute(estimator)?;
    Ok(root)
}

/// One tree level: absorbs every group of `arity` nodes into its first.
fn fold_level(nodes: Vec<MonitorSnapshot>, arity: usize) -> Result<Vec<MonitorSnapshot>> {
    let mut next = Vec::with_capacity(nodes.len().div_ceil(arity));
    let mut iter = nodes.into_iter();
    while let Some(mut acc) = iter.next() {
        for _ in 1..arity {
            match iter.next() {
                Some(node) => acc.absorb_counts(&node)?,
                None => break,
            }
        }
        next.push(acc);
    }
    Ok(next)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{Audit, Smoothed, SubsetPolicy};
    use df_prob::contingency::Axis;
    use df_prob::partial::{PartialCounts, Tally};

    struct Pairs(Vec<[usize; 2]>);

    impl Tally for Pairs {
        fn tally_into(&self, shard: &mut PartialCounts) -> df_prob::Result<()> {
            for idx in &self.0 {
                shard.record(idx);
            }
            Ok(())
        }
    }

    fn axes() -> Vec<Axis> {
        vec![
            Axis::from_strs("y", &["no", "yes"]).unwrap(),
            Axis::from_strs("g", &["a", "b"]).unwrap(),
        ]
    }

    fn shard_snapshots(n: usize) -> Vec<MonitorSnapshot> {
        (0..n)
            .map(|i| {
                let mut m = Audit::monitor("y", axes())
                    .estimator(Smoothed { alpha: 1.0 })
                    .subsets(SubsetPolicy::All)
                    .window_seconds(8.0)
                    .bucket_seconds(1.0)
                    .decay(0.5)
                    .build()
                    .unwrap();
                for t in 0..(2 + i % 3) {
                    let skew = (i + t) % 2;
                    m.push_at(&Pairs(vec![[1, skew], [0, 1 - skew]]), t as f64)
                        .unwrap();
                }
                m.snapshot().unwrap()
            })
            .collect()
    }

    fn sequential_fold(snaps: &[MonitorSnapshot]) -> MonitorSnapshot {
        let est = Smoothed { alpha: 1.0 };
        let mut acc = snaps[0].clone();
        for s in &snaps[1..] {
            acc = acc.merge(s, &est).unwrap();
        }
        acc
    }

    #[test]
    fn tree_fold_matches_sequential_pairwise_fold_bytewise() {
        let snaps = shard_snapshots(13);
        let reference = serde_json::to_string(&sequential_fold(&snaps)).unwrap();
        let est = Smoothed { alpha: 1.0 };
        for arity in [2, 3, 4, 7, 13, 64] {
            let tree = merge_tree(&snaps, arity, &est).unwrap();
            assert_eq!(
                serde_json::to_string(&tree).unwrap(),
                reference,
                "arity {arity}"
            );
        }
        assert_eq!(
            serde_json::to_string(&merge_many(&snaps, &est).unwrap()).unwrap(),
            reference
        );
    }

    #[test]
    fn singleton_fold_recanonicalizes_in_place() {
        let snaps = shard_snapshots(1);
        let est = Smoothed { alpha: 1.0 };
        let merged = merge_many(&snaps, &est).unwrap();
        // A snapshot is already canonical, so the one-leaf fold is the
        // identity on its serialized form.
        assert_eq!(
            serde_json::to_string(&merged).unwrap(),
            serde_json::to_string(&snaps[0]).unwrap()
        );
    }

    #[test]
    fn validates_arity_and_nonempty_input() {
        let est = Smoothed { alpha: 1.0 };
        assert!(merge_many(&[], &est).is_err());
        let snaps = shard_snapshots(2);
        assert!(merge_tree(&snaps, 0, &est).is_err());
        assert!(merge_tree(&snaps, 1, &est).is_err());
    }

    #[test]
    fn incompatible_shards_are_refused() {
        let mut snaps = shard_snapshots(3);
        snaps[2].decay = None;
        snaps[2].decayed = None;
        snaps[2].decayed_epsilon = None;
        let est = Smoothed { alpha: 1.0 };
        assert!(merge_many(&snaps, &est).is_err());
    }
}
