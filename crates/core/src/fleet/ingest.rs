//! Backpressure-free concurrent ingestion: N producers, N private
//! monitors, one merged fleet ε.
//!
//! The monitor is single-threaded by design — its hot path is an exact
//! merge/subtract over one ring, and a mutex around it would serialize
//! every producer in the process. [`FleetIngest`] shards instead, the
//! same pattern as [`crate::stream::sharded_joint_counts`]: each producer
//! owns a private channel into a dedicated worker thread holding its own
//! [`FairnessMonitor`], so the ingest hot path takes **no lock shared
//! between producers** and never blocks on aggregation
//! (`std::sync::mpsc` senders never wait on the receiver). Aggregation
//! happens only when someone asks: [`FleetIngest::snapshot`] enqueues a
//! snapshot command behind each shard's pending chunks (a consistent
//! cut: everything sent before the call is included), aligns every
//! shard's clock to the fleet-wide maximum, and folds the shard
//! snapshots through the aggregation tree ([`super::merge_many`]).
//!
//! Because each shard feeds its monitor in its own timestamp order and
//! snapshot merging is the counts monoid, the merged fleet snapshot is
//! **byte-identical** to one monitor ingesting the concatenated stream
//! in timestamp order — the union-of-traffic ε that per-silo monitoring
//! cannot see (Ghosh et al. 2021 call the gap *fairness
//! gerrymandering across silos*). The `fleet_equivalence` suite pins
//! exactly that, JSON byte for byte. Per-shard alert rules and
//! change-point detectors still run (each shard witnesses its own
//! traffic slice); configure none when bit-exact global-vs-local parity
//! of the *full* snapshot, logs included, is required.
//!
//! Entry point: [`crate::monitor::MonitorBuilder::fleet`] —
//! `Audit::monitor(..).window_seconds(T).bucket_seconds(b).fleet(n)`.

use crate::builder::EpsilonEstimator;
use crate::epsilon::EpsilonResult;
use crate::error::{DfError, Result};
use crate::fleet::telemetry::{FleetTelemetry, ShardTelemetry};
use crate::monitor::{FairnessMonitor, MonitorBuilder, MonitorSnapshot};
use df_prob::partial::Tally;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A bounded wait: the absolute deadline plus the original budget (echoed
/// in the timeout error so callers see what they asked for, not the
/// remainder that happened to be left on the final `recv`).
#[derive(Clone, Copy)]
struct Deadline {
    at: Instant,
    budget: Duration,
}

/// The one place this module — and all of `df-core` — reads the wall
/// clock. Everything fairness-related is driven by caller-supplied `f64`
/// timestamps (replay determinism: same stream, same ε, every run); the
/// wall clock exists solely for two operational concerns that are not
/// part of the fairness computation: bounding how long [`FleetIngest`]
/// waits for worker *threads* to reply, and measuring telemetry
/// durations (push latency, consistent-cut latency — see
/// [`FleetTelemetry`]). Callers that own a clock can skip the timeout
/// use entirely via [`FleetIngest::try_snapshot_deadline`].
fn wall_clock_now() -> Instant {
    // df-lint: allow(no-wall-clock) -- thread-liveness timeouts and telemetry durations only; never feeds timestamps, windows, or epsilon
    Instant::now()
}

/// Commands a shard worker understands.
enum ShardMsg<C> {
    /// Ingest one chunk at a timestamp (`FairnessMonitor::push_at`).
    Chunk { chunk: C, at: f64 },
    /// Advance the shard clock with zero arrivals
    /// (`FairnessMonitor::advance_to`).
    Advance { at: f64 },
    /// Report the shard's current clock (cheap: no ε work, no mutation).
    Clock { reply: Sender<Option<f64>> },
    /// Optionally advance to a fleet-wide clock, then snapshot.
    Snapshot {
        advance_to: Option<f64>,
        reply: Sender<Result<MonitorSnapshot>>,
    },
    /// Exit the worker loop — even while producer handles (cloned
    /// senders) are still alive somewhere.
    Shutdown,
}

/// A handle for one producer: owns a sender into its shard's private
/// channel. Clone it to let several sources feed the same shard (their
/// sends interleave in channel order; the shard still processes
/// single-threaded).
pub struct FleetProducer<C: Tally + Send + 'static> {
    shard: usize,
    sender: Sender<ShardMsg<C>>,
    telemetry: ShardTelemetry,
}

impl<C: Tally + Send + 'static> Clone for FleetProducer<C> {
    fn clone(&self) -> Self {
        Self {
            shard: self.shard,
            sender: self.sender.clone(),
            telemetry: self.telemetry.clone(),
        }
    }
}

impl<C: Tally + Send + 'static> FleetProducer<C> {
    /// The shard this producer feeds.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Enqueues one chunk at `at` seconds — returns immediately, never
    /// waiting on the worker (backpressure-free by construction). Chunk
    /// validation happens on the worker; a bad chunk poisons its shard
    /// and surfaces as a typed error from the next
    /// [`FleetIngest::snapshot`].
    pub fn send(&self, chunk: C, at: f64) -> Result<()> {
        self.sender
            .send(ShardMsg::Chunk { chunk, at })
            .map_err(|_| disconnected(self.shard))?;
        self.telemetry.enqueued.inc();
        Ok(())
    }

    /// Enqueues a zero-arrival clock advance, so an idle source keeps its
    /// shard's window draining.
    pub fn advance_to(&self, at: f64) -> Result<()> {
        self.sender
            .send(ShardMsg::Advance { at })
            .map_err(|_| disconnected(self.shard))?;
        self.telemetry.enqueued.inc();
        Ok(())
    }
}

fn disconnected(shard: usize) -> DfError {
    DfError::Invalid(format!(
        "fleet shard {shard} worker has shut down; the FleetIngest was \
         finished or dropped"
    ))
}

/// The concurrent sharded front-end; see the [module docs](self). Built
/// by [`MonitorBuilder::fleet`].
pub struct FleetIngest<C: Tally + Send + 'static> {
    senders: Vec<Sender<ShardMsg<C>>>,
    workers: Vec<JoinHandle<()>>,
    estimator: Box<dyn EpsilonEstimator>,
    telemetry: Arc<FleetTelemetry>,
}

impl<C: Tally + Send + 'static> FleetIngest<C> {
    fn spawn(
        monitors: Vec<FairnessMonitor>,
        estimator: Box<dyn EpsilonEstimator>,
        telemetry: Arc<FleetTelemetry>,
    ) -> Self {
        let mut senders = Vec::with_capacity(monitors.len());
        let mut workers = Vec::with_capacity(monitors.len());
        for (shard, monitor) in monitors.into_iter().enumerate() {
            let (tx, rx) = channel();
            let tel = telemetry.shard(shard).clone();
            senders.push(tx);
            workers.push(std::thread::spawn(move || shard_worker(monitor, rx, tel)));
        }
        Self {
            senders,
            workers,
            estimator,
            telemetry,
        }
    }

    /// Number of shards (= workers = independent producers).
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    /// Live fleet telemetry: per-shard traffic counters, queue depths,
    /// staleness gauges, cut latency, and the shared monitor bundle —
    /// readable at any time without touching the shard channels (see
    /// [`FleetTelemetry`]). The `Arc` is shared with every worker, so a
    /// scrape layer can clone it into gauge closures that outlive this
    /// handle's borrows.
    pub fn telemetry(&self) -> &Arc<FleetTelemetry> {
        &self.telemetry
    }

    /// A producer handle for the given shard.
    pub fn producer(&self, shard: usize) -> Result<FleetProducer<C>> {
        let sender = self.senders.get(shard).ok_or_else(|| {
            DfError::Invalid(format!(
                "no shard {shard}: this fleet has {} shards",
                self.senders.len()
            ))
        })?;
        Ok(FleetProducer {
            shard,
            sender: sender.clone(),
            telemetry: self.telemetry.shard(shard).clone(),
        })
    }

    /// One producer handle per shard, in shard order.
    pub fn producers(&self) -> Vec<FleetProducer<C>> {
        (0..self.shards())
            .map(|i| self.producer(i).expect("index in range"))
            .collect()
    }

    /// Drains and merges: waits for every shard to process everything
    /// enqueued before this call, aligns all shard clocks to the
    /// fleet-wide maximum (so every window evicts against the same
    /// horizon), and folds the shard snapshots through the aggregation
    /// tree. The first shard error (a corrupt chunk, a pre-window
    /// timestamp) surfaces here, typed.
    pub fn snapshot(&self) -> Result<MonitorSnapshot> {
        self.collect(None, None)
    }

    /// [`FleetIngest::snapshot`] with a bounded wait: if any shard fails
    /// to reply within `timeout` (measured across the whole consistent-cut
    /// round, not per shard), returns [`DfError::Timeout`] instead of
    /// blocking — so a stuck or overloaded shard cannot hang a serving
    /// request forever. The snapshot command stays queued on the slow
    /// shard; its eventual reply is discarded, and retrying later is safe.
    pub fn try_snapshot_timeout(&self, timeout: Duration) -> Result<MonitorSnapshot> {
        self.try_snapshot_deadline(wall_clock_now() + timeout, timeout)
    }

    /// [`FleetIngest::try_snapshot_timeout`] with the deadline threaded
    /// in from the caller: waits until the absolute instant `at`, and
    /// reports `budget` in any [`DfError::Timeout`] (the budget is an
    /// echo for error messages, not a second limit). This is the
    /// deterministic entry point — it never reads the wall clock to
    /// *construct* the deadline, so a caller that owns the clock (a
    /// test harness, a deadline-propagating RPC layer) stays in charge.
    pub fn try_snapshot_deadline(&self, at: Instant, budget: Duration) -> Result<MonitorSnapshot> {
        self.collect(None, Some(Deadline { at, budget }))
    }

    /// [`FleetIngest::snapshot`] against an explicit fleet clock: every
    /// shard advances to `now` (shards already ahead keep their own
    /// clock) before snapshotting. Use when the caller owns the clock —
    /// e.g. a 1 Hz aggregation timer stamping each tick.
    pub fn snapshot_at(&self, now: f64) -> Result<MonitorSnapshot> {
        if !now.is_finite() {
            return Err(DfError::Invalid(format!(
                "fleet snapshot timestamp must be finite, got {now}"
            )));
        }
        self.collect(Some(now), None)
    }

    /// The fleet-wide ε: the headline of [`FleetIngest::snapshot`].
    pub fn epsilon(&self) -> Result<EpsilonResult> {
        Ok(self.snapshot()?.epsilon)
    }

    /// Final snapshot, then shutdown: drains every shard, joins the
    /// workers, and returns the merged fleet state.
    pub fn finish(mut self) -> Result<MonitorSnapshot> {
        let snap = self.snapshot();
        self.shutdown();
        snap
    }

    /// Upper bound on snapshot rounds per [`FleetIngest::snapshot`] call.
    /// Re-aligning is what keeps the cut consistent when a newer-stamped
    /// chunk races in between rounds — but under *sustained* concurrent
    /// traffic each round could observe a newer clock forever, so after
    /// this many rounds the freshest round is merged as-is (a valid
    /// monoid merge whose shard clocks may trail the in-flight traffic
    /// by the last few milliseconds). Callers needing a perfectly
    /// clock-aligned cut quiesce their producers first, or stamp ticks
    /// themselves via [`FleetIngest::snapshot_at`].
    const MAX_ALIGN_ROUNDS: usize = 3;

    /// Clock discovery plus bounded alignment: a cheap clock round finds
    /// the fleet-wide maximum (no ε work), then snapshot rounds advance
    /// every shard to it; if a round observes a clock *ahead* of the
    /// target — a chunk raced in mid-snapshot — the round repeats with
    /// the newer clock, up to [`Self::MAX_ALIGN_ROUNDS`], so the merged
    /// state never mixes a fresh shard clock with another shard's stale
    /// eviction horizon. One clock round plus one snapshot round in the
    /// common case.
    ///
    /// Successful cuts record their wall-clock duration into
    /// [`FleetTelemetry::snapshot_cut_seconds`] (both clock reads go
    /// through the audited [`wall_clock_now`] seam; the duration never
    /// feeds back into any window).
    fn collect(&self, target: Option<f64>, deadline: Option<Deadline>) -> Result<MonitorSnapshot> {
        let start = wall_clock_now();
        let result = self.collect_rounds(target, deadline);
        if result.is_ok() {
            let cut = wall_clock_now().saturating_duration_since(start);
            self.telemetry
                .snapshot_cut_seconds
                .observe(cut.as_secs_f64());
            self.telemetry.snapshots.inc();
        }
        result
    }

    /// The alignment loop behind [`FleetIngest::collect`].
    fn collect_rounds(
        &self,
        target: Option<f64>,
        deadline: Option<Deadline>,
    ) -> Result<MonitorSnapshot> {
        let mut target = match target {
            Some(t) => Some(t),
            None => self.clock_round(deadline)?,
        };
        for round in 1.. {
            let snapshots = self.snapshot_round(target, deadline)?;
            let observed = snapshots
                .iter()
                .filter_map(|s| s.now_seconds)
                .fold(None, |acc: Option<f64>, now| {
                    Some(acc.map_or(now, |a| a.max(now)))
                });
            // Aligned when no clocked shard sits ahead of the target the
            // whole fleet was advanced to (clockless shards hold empty
            // windows — nothing to evict).
            let aligned = match observed {
                None => true,
                Some(fleet_now) => target.is_some_and(|t| fleet_now <= t),
            };
            if aligned || round >= Self::MAX_ALIGN_ROUNDS {
                return super::merge_many(&snapshots, &*self.estimator);
            }
            target = observed;
        }
        unreachable!("the loop returns within MAX_ALIGN_ROUNDS")
    }

    /// The fleet-wide maximum shard clock — a cheap query (no ε kernel),
    /// consistent with everything enqueued before the call (the reply is
    /// queued behind each shard's pending chunks).
    fn clock_round(&self, deadline: Option<Deadline>) -> Result<Option<f64>> {
        let mut replies = Vec::with_capacity(self.shards());
        for (shard, sender) in self.senders.iter().enumerate() {
            let (tx, rx) = channel();
            sender
                .send(ShardMsg::Clock { reply: tx })
                .map_err(|_| disconnected(shard))?;
            replies.push((shard, rx));
        }
        let mut fleet_now: Option<f64> = None;
        for (shard, rx) in replies {
            if let Some(now) = recv(shard, &rx, deadline)? {
                fleet_now = Some(fleet_now.map_or(now, |a: f64| a.max(now)));
            }
        }
        Ok(fleet_now)
    }

    /// One snapshot command to every shard, replies collected in order.
    fn snapshot_round(
        &self,
        advance_to: Option<f64>,
        deadline: Option<Deadline>,
    ) -> Result<Vec<MonitorSnapshot>> {
        let mut replies = Vec::with_capacity(self.shards());
        for (shard, sender) in self.senders.iter().enumerate() {
            let (tx, rx) = channel();
            sender
                .send(ShardMsg::Snapshot {
                    advance_to,
                    reply: tx,
                })
                .map_err(|_| disconnected(shard))?;
            replies.push((shard, rx));
        }
        replies
            .into_iter()
            .map(|(shard, rx)| recv(shard, &rx, deadline)?)
            .collect()
    }

    fn shutdown(&mut self) {
        // An explicit shutdown message, not just dropping our senders:
        // producer handles are cloned senders, and a worker blocked on
        // `recv` would otherwise wait on every outstanding clone.
        for sender in self.senders.drain(..) {
            // df-lint: allow(must-use-results) -- send fails only when the shard already exited; shutdown is then done
            let _ = sender.send(ShardMsg::Shutdown);
        }
        for worker in self.workers.drain(..) {
            // df-lint: allow(must-use-results) -- a panicked shard already surfaced its error through the reply channel
            let _ = worker.join();
        }
    }
}

impl<C: Tally + Send + 'static> Drop for FleetIngest<C> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn recv<T>(shard: usize, rx: &Receiver<T>, deadline: Option<Deadline>) -> Result<T> {
    let died = || {
        DfError::Invalid(format!(
            "fleet shard {shard} worker died before replying (panicked \
             while ingesting?)"
        ))
    };
    match deadline {
        None => rx.recv().map_err(|_| died()),
        Some(d) => match rx.recv_timeout(d.at.saturating_duration_since(wall_clock_now())) {
            Ok(v) => Ok(v),
            Err(RecvTimeoutError::Disconnected) => Err(died()),
            Err(RecvTimeoutError::Timeout) => Err(DfError::Timeout {
                what: "fleet snapshot",
                waited_ms: u64::try_from(d.budget.as_millis()).unwrap_or(u64::MAX),
            }),
        },
    }
}

/// One shard's event loop: a private monitor fed from a private channel.
/// The first ingest error poisons the shard — later chunks are discarded
/// and every subsequent snapshot reports the original error (matching the
/// streaming engine's abort-on-first-error contract).
///
/// Telemetry contract: `processed` counts every data message consumed
/// (even on a poisoned shard, so queue depth converges back to zero);
/// `last_seen` moves only on *producer* traffic — snapshot alignment
/// advances windows but must not make a silent shard look alive.
fn shard_worker<C: Tally + Send>(
    mut monitor: FairnessMonitor,
    rx: Receiver<ShardMsg<C>>,
    tel: ShardTelemetry,
) {
    let mut failed: Option<DfError> = None;
    // Local max over producer-supplied timestamps (the worker is
    // single-threaded, so no atomic max is needed): `last_seen` is "the
    // newest data time heard", monotone even under out-of-order sends.
    let mut newest_heard: Option<f64> = None;
    let mut heard = |tel: &ShardTelemetry, at: f64| {
        if newest_heard.is_none_or(|n| at > n) {
            newest_heard = Some(at);
            tel.last_seen.set(at);
        }
    };
    while let Ok(msg) = rx.recv() {
        match msg {
            ShardMsg::Chunk { chunk, at } => {
                if failed.is_none() {
                    let before = monitor.records_seen();
                    let start = wall_clock_now();
                    match monitor.push_at(&chunk, at) {
                        Ok(_) => {
                            let took = wall_clock_now().saturating_duration_since(start);
                            monitor.telemetry().push_seconds.observe(took.as_secs_f64());
                            tel.rows.add(monitor.records_seen() - before);
                            tel.chunks.inc();
                            heard(&tel, at);
                        }
                        Err(e) => failed = Some(e),
                    }
                }
                tel.processed.inc();
            }
            ShardMsg::Advance { at } => {
                if failed.is_none() {
                    match monitor.advance_to(at) {
                        Ok(_) => heard(&tel, at),
                        Err(e) => failed = Some(e),
                    }
                }
                tel.processed.inc();
            }
            ShardMsg::Clock { reply } => {
                // df-lint: allow(must-use-results) -- requester gone (timed out / dropped); the reply has no other consumer
                let _ = reply.send(monitor.now_seconds());
            }
            ShardMsg::Snapshot { advance_to, reply } => {
                // Only advance when the target actually moves this
                // shard's clock: `advance_to` evaluates alert rules and
                // change-point detectors (a genuine monitor step), and a
                // no-op alignment round must not feed them spurious
                // zero-arrival samples — snapshotting an already-aligned
                // fleet repeatedly has to leave every shard's detector
                // state untouched, no matter how often it is polled.
                // Clockless shards hold empty windows: nothing to evict,
                // so they are never advanced (or mutated) by alignment.
                let moves =
                    advance_to.is_some_and(|at| monitor.now_seconds().is_some_and(|now| at > now));
                let result = match &failed {
                    Some(e) => Err(e.clone()),
                    None if moves => monitor
                        .advance_to(advance_to.expect("moves implies Some"))
                        .and_then(|_| monitor.snapshot()),
                    None => monitor.snapshot(),
                };
                // df-lint: allow(must-use-results) -- requester gone (timed out / dropped); the reply has no other consumer
                let _ = reply.send(result);
            }
            ShardMsg::Shutdown => return,
        }
    }
}

impl MonitorBuilder {
    /// Turns this monitor configuration into a **fleet**: `shards`
    /// identical wall-clock monitors, each on its own worker thread
    /// behind its own channel, merged on demand into the fleet-wide ε.
    ///
    /// Requires a wall-clock window
    /// ([`MonitorBuilder::window_seconds`]): fleet aggregation aligns
    /// shard windows on the shared clock, which a record-count window
    /// does not have (the global "last W records" is not a union of
    /// per-shard "last W records").
    ///
    /// ```
    /// use df_core::builder::{Audit, Smoothed};
    /// use df_prob::contingency::Axis;
    /// use df_prob::partial::{PartialCounts, Tally};
    ///
    /// struct Rows(Vec<[usize; 2]>);
    /// impl Tally for Rows {
    ///     fn tally_into(&self, shard: &mut PartialCounts) -> df_prob::Result<()> {
    ///         for idx in &self.0 {
    ///             shard.record(idx);
    ///         }
    ///         Ok(())
    ///     }
    /// }
    ///
    /// let axes = vec![
    ///     Axis::from_strs("y", &["no", "yes"]).unwrap(),
    ///     Axis::from_strs("g", &["a", "b"]).unwrap(),
    /// ];
    /// let fleet = Audit::monitor("y", axes)
    ///     .estimator(Smoothed { alpha: 1.0 })
    ///     .window_seconds(60.0)
    ///     .bucket_seconds(5.0)
    ///     .fleet::<Rows>(2)
    ///     .unwrap();
    /// let producers = fleet.producers();
    /// producers[0].send(Rows(vec![[1, 0], [0, 1]]), 3.0).unwrap();
    /// producers[1].send(Rows(vec![[0, 0], [1, 1]]), 4.5).unwrap();
    /// let snap = fleet.finish().unwrap();
    /// assert_eq!(snap.records_seen, 4);
    /// assert_eq!(snap.now_seconds, Some(4.5));
    /// ```
    pub fn fleet<C: Tally + Send + 'static>(self, shards: usize) -> Result<FleetIngest<C>> {
        if shards == 0 {
            return Err(DfError::Invalid("a fleet needs at least one shard".into()));
        }
        if !self.is_wall_clock() {
            return Err(DfError::Invalid(
                "fleet ingestion needs a wall-clock window: configure \
                 window_seconds (and optionally bucket_seconds) before fleet()"
                    .into(),
            ));
        }
        let estimator = self.shared_estimator();
        // One FleetTelemetry per fleet; every shard monitor gets a clone
        // of the same MonitorTelemetry bundle (a user-injected bundle is
        // honoured), so alerts/alarms/evictions/push-latency aggregate
        // fleet-wide with no merge step.
        let mut telemetry = FleetTelemetry::new(shards);
        if let Some(bundle) = self.injected_telemetry() {
            telemetry.monitor = bundle.clone();
        }
        let shared = telemetry.monitor.clone();
        let monitors: Vec<FairnessMonitor> = (0..shards)
            .map(|_| self.clone().telemetry(shared.clone()).build())
            .collect::<Result<_>>()?;
        Ok(FleetIngest::spawn(monitors, estimator, Arc::new(telemetry)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{Audit, Smoothed};
    use df_prob::contingency::Axis;
    use df_prob::partial::PartialCounts;

    struct Pairs(Vec<[usize; 2]>);

    impl Tally for Pairs {
        fn tally_into(&self, shard: &mut PartialCounts) -> df_prob::Result<()> {
            for idx in &self.0 {
                shard.record(idx);
            }
            Ok(())
        }
    }

    fn axes() -> Vec<Axis> {
        vec![
            Axis::from_strs("y", &["no", "yes"]).unwrap(),
            Axis::from_strs("g", &["a", "b"]).unwrap(),
        ]
    }

    fn fleet(shards: usize) -> FleetIngest<Pairs> {
        Audit::monitor("y", axes())
            .estimator(Smoothed { alpha: 1.0 })
            .window_seconds(10.0)
            .bucket_seconds(1.0)
            .fleet(shards)
            .unwrap()
    }

    #[test]
    fn builder_validates_fleet_configuration() {
        assert!(Audit::monitor("y", axes())
            .window_seconds(10.0)
            .fleet::<Pairs>(0)
            .is_err());
        // A record-count window cannot be fleet-aggregated.
        assert!(Audit::monitor("y", axes())
            .window(100)
            .fleet::<Pairs>(2)
            .is_err());
        assert!(Audit::monitor("y", axes()).fleet::<Pairs>(2).is_err());
    }

    #[test]
    fn snapshot_mutates_nothing_no_matter_how_often_polled() {
        // The lint-enforced contract behind `ShardMsg::Snapshot`: a
        // snapshot is a pure read. The first poll may align shard
        // clocks (a genuine monitor step on the lagging shards), but
        // every poll after that — with no new traffic — must return a
        // bit-identical snapshot: no zero-arrival windows fed to alert
        // rules, no detector state advanced, no eviction.
        // An armed alert rule makes any accidental advance visible: a
        // spurious zero-arrival window would append to the alert log,
        // which is part of snapshot equality.
        let fleet: FleetIngest<Pairs> = Audit::monitor("y", axes())
            .estimator(Smoothed { alpha: 1.0 })
            .window_seconds(10.0)
            .bucket_seconds(1.0)
            .alert(crate::monitor::AlertRule::epsilon_above(0.0))
            .fleet(2)
            .unwrap();
        let producers = fleet.producers();
        // Deliberately skewed shard clocks so the first snapshot has
        // real alignment work to do.
        producers[0].send(Pairs(vec![[1, 0], [0, 1]]), 3.0).unwrap();
        producers[1].send(Pairs(vec![[0, 0], [1, 1]]), 7.5).unwrap();

        let first = fleet.snapshot().unwrap();
        for _ in 0..5 {
            let again = fleet.snapshot().unwrap();
            assert_eq!(again, first, "repeat poll mutated the fleet");
        }
        // Deadline-threaded form is the same pure read.
        let deadline = first.clone();
        let via_deadline = fleet
            .try_snapshot_deadline(
                wall_clock_now() + Duration::from_secs(5),
                Duration::from_secs(5),
            )
            .unwrap();
        assert_eq!(via_deadline, deadline);
        assert_eq!(first.now_seconds, Some(7.5));
        assert_eq!(first.records_seen, 4);
    }

    #[test]
    fn concurrent_producers_merge_into_one_window() {
        let fleet = fleet(4);
        assert_eq!(fleet.shards(), 4);
        assert!(fleet.producer(4).is_err());
        let producers = fleet.producers();
        std::thread::scope(|scope| {
            for (i, producer) in producers.into_iter().enumerate() {
                scope.spawn(move || {
                    for t in 0..5 {
                        producer
                            .send(Pairs(vec![[1, i % 2], [0, 1 - i % 2]]), t as f64)
                            .unwrap();
                    }
                });
            }
        });
        let snap = fleet.snapshot().unwrap();
        assert_eq!(snap.records_seen, 40);
        assert_eq!(snap.window_rows, 40);
        assert_eq!(snap.now_seconds, Some(4.0));
        // The fleet is balanced overall: 10 of each (y, g) cell.
        assert_eq!(snap.window.data, vec![10.0, 10.0, 10.0, 10.0]);
        assert_eq!(snap.epsilon.epsilon, 0.0);
        // finish() drains and shuts down; producers then error.
        let producer = fleet.producer(0).unwrap();
        let last = fleet.finish().unwrap();
        assert_eq!(last.records_seen, 40);
        assert!(producer.send(Pairs(vec![[0, 0]]), 9.0).is_err());
    }

    #[test]
    fn telemetry_tracks_traffic_staleness_and_cuts() {
        let fleet = fleet(2);
        let tel = Arc::clone(fleet.telemetry());
        let p0 = fleet.producer(0).unwrap();
        let p1 = fleet.producer(1).unwrap();
        p0.send(Pairs(vec![[1, 0], [0, 1]]), 10.0).unwrap();
        p1.send(Pairs(vec![[0, 0]]), 4.0).unwrap();
        let snap = fleet.snapshot().unwrap();
        assert_eq!(snap.records_seen, 3);
        // The cut drained both queues; per-shard traffic is accounted.
        assert_eq!(tel.queue_depth_total(), 0);
        assert_eq!(tel.rows_total(), 3);
        assert_eq!(tel.shard(0).rows.get(), 2);
        assert_eq!(tel.shard(0).chunks.get(), 1);
        assert_eq!(tel.shard(1).rows.get(), 1);
        // last_seen is *data* time, per shard — and snapshot alignment
        // (which advanced shard 1's window to 10.0) did not touch it:
        // a silent shard must keep looking stale.
        assert_eq!(tel.shard(0).last_seen.get_finite(), Some(10.0));
        assert_eq!(tel.shard(1).last_seen.get_finite(), Some(4.0));
        assert!((tel.max_lag_seconds() - 6.0).abs() < 1e-12);
        // Both pushes were timed onto the shared monitor bundle; the cut
        // itself was timed and counted.
        assert_eq!(tel.monitor.push_seconds.count(), 2);
        assert_eq!(tel.snapshots.get(), 1);
        assert_eq!(tel.snapshot_cut_seconds.count(), 1);
    }

    #[test]
    fn snapshot_aligns_stale_shard_clocks() {
        let fleet = fleet(2);
        let fast = fleet.producer(0).unwrap();
        let slow = fleet.producer(1).unwrap();
        // The slow shard's traffic is old enough to be outside the window
        // relative to the fast shard's clock.
        slow.send(Pairs(vec![[1, 0], [1, 0]]), 2.0).unwrap();
        fast.send(Pairs(vec![[0, 1], [1, 1]]), 30.0).unwrap();
        let snap = fleet.snapshot().unwrap();
        // Clock alignment evicted the slow shard's stale bucket: only the
        // fast shard's chunk remains in the fleet window.
        assert_eq!(snap.now_seconds, Some(30.0));
        assert_eq!(snap.window_rows, 2);
        assert_eq!(snap.records_seen, 4);
    }

    #[test]
    fn idle_advance_keeps_draining() {
        let fleet = fleet(1);
        let producer = fleet.producer(0).unwrap();
        producer.send(Pairs(vec![[1, 0], [0, 1]]), 1.0).unwrap();
        producer.advance_to(100.0).unwrap();
        let snap = fleet.snapshot().unwrap();
        assert_eq!(snap.window_rows, 0);
        assert_eq!(snap.records_seen, 2);
        assert_eq!(snap.now_seconds, Some(100.0));
    }

    #[test]
    fn empty_fleet_snapshot_is_the_zero_state() {
        let fleet = fleet(3);
        let snap = fleet.snapshot().unwrap();
        assert_eq!(snap.records_seen, 0);
        assert_eq!(snap.window_rows, 0);
        assert_eq!(snap.now_seconds, None);
        assert_eq!(snap.epsilon.epsilon, 0.0);
    }

    #[test]
    fn try_snapshot_timeout_bounds_the_wait_on_a_stuck_shard() {
        struct Stall(Duration);
        impl Tally for Stall {
            fn tally_into(&self, shard: &mut PartialCounts) -> df_prob::Result<()> {
                std::thread::sleep(self.0);
                shard.record(&[0, 0]);
                Ok(())
            }
        }
        let fleet: FleetIngest<Stall> = Audit::monitor("y", axes())
            .estimator(Smoothed { alpha: 1.0 })
            .window_seconds(10.0)
            .fleet(2)
            .unwrap();
        let producer = fleet.producer(0).unwrap();
        // The shard worker sleeps half a second tallying this chunk; the
        // bounded snapshot gives up long before that.
        producer
            .send(Stall(Duration::from_millis(500)), 1.0)
            .unwrap();
        let err = fleet
            .try_snapshot_timeout(Duration::from_millis(20))
            .unwrap_err();
        assert!(
            matches!(err, DfError::Timeout { waited_ms: 20, .. }),
            "expected Timeout, got {err:?}"
        );
        // The cut was only delayed, not lost: an unbounded snapshot later
        // sees the chunk, and a generous bounded wait succeeds too.
        let snap = fleet.snapshot().unwrap();
        assert_eq!(snap.records_seen, 1);
        let snap = fleet.try_snapshot_timeout(Duration::from_secs(30)).unwrap();
        assert_eq!(snap.records_seen, 1);
    }

    #[test]
    fn corrupt_chunks_poison_their_shard_with_a_typed_error() {
        struct Weighted(f64);
        impl Tally for Weighted {
            fn tally_into(&self, shard: &mut PartialCounts) -> df_prob::Result<()> {
                shard.add(&[0, 0], self.0);
                Ok(())
            }
        }
        let fleet: FleetIngest<Weighted> = Audit::monitor("y", axes())
            .window_seconds(10.0)
            .fleet(2)
            .unwrap();
        let producer = fleet.producer(0).unwrap();
        producer.send(Weighted(-1.0), 1.0).unwrap();
        producer.send(Weighted(2.0), 2.0).unwrap();
        let err = fleet.snapshot().unwrap_err();
        assert!(err.to_string().contains("finite, non-negative"));
        // The error is sticky: reported again on the next snapshot.
        assert!(fleet.snapshot().is_err());
    }
}
