//! Fleet ingest telemetry: per-shard traffic accounting, queue depths,
//! staleness, and consistent-cut latency.
//!
//! All of it rides `df-obs` atomics, so the ingest hot path pays one or
//! two relaxed atomic ops per message and the serving layer reads live
//! values at scrape time without touching the shard channels. Two
//! different notions of time coexist here, deliberately:
//!
//! - **Data time** (caller-supplied `at` seconds, the same timestamps
//!   the windows run on): [`ShardTelemetry::last_seen`] tracks the
//!   newest `at` each shard has *processed*, and
//!   [`FleetTelemetry::max_lag_seconds`] derives the worst shard's
//!   staleness against the fleet-wide maximum — a dead replica shows up
//!   as monotonically growing lag, a signal instead of a blind spot.
//!   Snapshot clock-alignment rounds do **not** touch `last_seen`: they
//!   advance monitor windows, but only real producer traffic counts as
//!   "heard from".
//! - **Wall time** ([`FleetTelemetry::snapshot_cut_seconds`], plus the
//!   push-latency histogram on the shared
//!   [`MonitorTelemetry`](crate::monitor::MonitorTelemetry)): measured
//!   by the ingest layer through its single audited liveness seam,
//!   never fed back into any window or ε.
//!
//! Queue depth is the difference of two counters (`enqueued` by
//! producers, `processed` by the worker) because `std::sync::mpsc`
//! exposes no length; the reads are racy by a message or two, which is
//! fine for a gauge.

use crate::monitor::MonitorTelemetry;
use df_obs::{Counter, Gauge, Histogram};

/// Telemetry for one ingest shard. `Clone` shares cells (the producer
/// side bumps `enqueued`, the worker side everything else).
#[derive(Clone, Debug, Default)]
pub struct ShardTelemetry {
    /// Records ingested by this shard's monitor.
    pub rows: Counter,
    /// Chunk messages processed.
    pub chunks: Counter,
    /// Data messages (chunks + advances) enqueued by producers.
    pub enqueued: Counter,
    /// Data messages the worker has finished processing.
    pub processed: Counter,
    /// Newest data timestamp (`at` seconds) this shard has processed;
    /// unset (`NaN`) until the first chunk or advance.
    pub last_seen: Gauge,
}

impl ShardTelemetry {
    /// Messages enqueued but not yet processed (racy by design; clamped
    /// at zero when the reads interleave).
    pub fn queue_depth(&self) -> u64 {
        self.enqueued.get().saturating_sub(self.processed.get())
    }
}

/// Fleet-wide telemetry: one [`ShardTelemetry`] per shard plus the
/// cut-latency histogram and the shared monitor bundle.
#[derive(Debug)]
pub struct FleetTelemetry {
    shards: Vec<ShardTelemetry>,
    /// Wall-clock duration of consistent-cut rounds (clock discovery +
    /// alignment + merge), in seconds.
    pub snapshot_cut_seconds: Histogram,
    /// Consistent cuts completed successfully.
    pub snapshots: Counter,
    /// The bundle shared by every shard monitor: alerts/alarms/evictions
    /// aggregate fleet-wide because all shards hold the same cells.
    pub monitor: MonitorTelemetry,
}

impl FleetTelemetry {
    /// A fresh bundle for a fleet of `shards` shards (all zeros/unset).
    pub fn new(shards: usize) -> Self {
        Self {
            shards: (0..shards).map(|_| ShardTelemetry::default()).collect(),
            snapshot_cut_seconds: Histogram::default_latency(),
            snapshots: Counter::new(),
            monitor: MonitorTelemetry::new(),
        }
    }

    /// Per-shard telemetry, indexed by shard id.
    pub fn shard(&self, shard: usize) -> &ShardTelemetry {
        &self.shards[shard]
    }

    /// All per-shard telemetry, in shard order.
    pub fn shards(&self) -> &[ShardTelemetry] {
        &self.shards
    }

    /// Total rows ingested across all shards.
    pub fn rows_total(&self) -> u64 {
        self.shards.iter().map(|s| s.rows.get()).sum()
    }

    /// Total enqueued-but-unprocessed messages across all shards.
    pub fn queue_depth_total(&self) -> u64 {
        self.shards.iter().map(|s| s.queue_depth()).sum()
    }

    /// The newest data timestamp any shard has processed (`None` until
    /// some shard hears real traffic).
    pub fn fleet_last_seen(&self) -> Option<f64> {
        self.shards
            .iter()
            .filter_map(|s| s.last_seen.get_finite())
            .fold(None, |acc, t| Some(acc.map_or(t, |a: f64| a.max(t))))
    }

    /// Worst staleness across reporting shards, in data-time seconds:
    /// `max_shard(fleet_last_seen − shard_last_seen)`. Shards that have
    /// never reported are excluded (their `last_seen` gauge scrapes as
    /// unset, which liveness probes see directly); 0.0 while fewer than
    /// two shards have reported.
    pub fn max_lag_seconds(&self) -> f64 {
        let Some(newest) = self.fleet_last_seen() else {
            return 0.0;
        };
        self.shards
            .iter()
            .filter_map(|s| s.last_seen.get_finite())
            .map(|t| newest - t)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_depth_is_enqueued_minus_processed() {
        let t = ShardTelemetry::default();
        t.enqueued.add(5);
        t.processed.add(3);
        assert_eq!(t.queue_depth(), 2);
        // Racy interleavings clamp at zero instead of wrapping.
        t.processed.add(10);
        assert_eq!(t.queue_depth(), 0);
    }

    #[test]
    fn max_lag_is_derived_from_reporting_shards_only() {
        let fleet = FleetTelemetry::new(3);
        // Nobody has reported: no lag, no fleet clock.
        assert_eq!(fleet.fleet_last_seen(), None);
        assert!(fleet.max_lag_seconds().abs() < 1e-12);
        fleet.shard(0).last_seen.set(10.0);
        // One reporting shard: it is the fleet clock, lag 0.
        assert_eq!(fleet.fleet_last_seen(), Some(10.0));
        assert!(fleet.max_lag_seconds().abs() < 1e-12);
        fleet.shard(1).last_seen.set(4.0);
        // Shard 2 still silent: excluded; lag is 10 − 4.
        assert!((fleet.max_lag_seconds() - 6.0).abs() < 1e-12);
    }
}
