//! Fleet aggregation: turning per-replica monitors into one global ε.
//!
//! The ε-DF audit is a function of joint counts, and PR 2–4 made those
//! counts a commutative monoid — mergeable, subtractable, snapshot-able.
//! This module is where that algebra pays off at fleet scale: a serving
//! fleet runs one [`crate::monitor::FairnessMonitor`] per replica, and
//! the *fleet-wide* ε — the worst-case-over-groups measure of Foulds et
//! al. (ICDE 2020), computed over the **union** of traffic rather than
//! per silo — falls out of three layers:
//!
//! - [`codec`]: a compact, versioned binary encoding for
//!   [`crate::monitor::MonitorSnapshot`] with schema interning — a
//!   replica ships its axis vocabularies once, then every tick is a
//!   small delta frame. JSON stays for dashboards; this is for
//!   1 000 replicas × 1 Hz.
//! - [`tree`]: [`merge_many`] / [`merge_tree`] fold any number of
//!   snapshots through a k-ary aggregation tree with in-place cell
//!   accumulation, byte-identical to the sequential pairwise
//!   [`crate::monitor::MonitorSnapshot::merge`] fold for every tree
//!   shape and leaf order.
//! - [`ingest`]: [`FleetIngest`] — a backpressure-free concurrent
//!   front-end: N producers feed N private per-shard monitors over
//!   channels (no shared lock on the hot path), and
//!   [`FleetIngest::snapshot`] drains, clock-aligns, and merges. Built
//!   from the fluent chain:
//!   `Audit::monitor(..).window_seconds(T).fleet(n)`.
//!
//! Why the union matters: Ghosh et al. (2021) show per-silo fairness
//! certificates do not compose — each replica can look fair on its own
//! slice while the fleet as a whole discriminates (the streaming twin of
//! fairness gerrymandering). The merged snapshot *is* the audit of the
//! concatenated traffic, proven byte-identical in `fleet_equivalence`.

pub mod codec;
pub mod ingest;
pub mod telemetry;
pub mod tree;

pub use codec::{decode_snapshot, encode_snapshot, SnapshotDecoder, SnapshotEncoder};
pub use ingest::{FleetIngest, FleetProducer};
pub use telemetry::{FleetTelemetry, ShardTelemetry};
pub use tree::{merge_many, merge_tree};
