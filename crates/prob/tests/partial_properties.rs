//! Property tests for the partial-counts monoid: the algebraic laws the
//! sharded streaming engine relies on. Merge must be associative and
//! commutative with `zeros` as identity — for *arbitrary* shapes, record
//! placements, and weights — or shard-count invariance of the audit would
//! be a coincidence instead of a theorem.
//!
//! Case budget: `PROPTEST_CASES` (default 48) — see CI.

use df_prob::contingency::{Axis, ContingencyTable};
use df_prob::partial::PartialCounts;
use proptest::prelude::*;

/// Axes with 2–4 categories per axis, 1–3 axes.
fn axes_from(arities: &[usize]) -> Vec<Axis> {
    arities
        .iter()
        .enumerate()
        .map(|(k, &a)| {
            Axis::new(format!("ax{k}"), (0..a).map(|i| format!("c{i}")).collect()).unwrap()
        })
        .collect()
}

/// Fills a shard with records decoded from a flat stream of cell picks.
fn shard_of(arities: &[usize], picks: &[u64]) -> PartialCounts {
    let mut shard = PartialCounts::zeros(axes_from(arities)).unwrap();
    let mut idx = vec![0usize; arities.len()];
    for &p in picks {
        let mut rem = p as usize;
        for (slot, &a) in idx.iter_mut().zip(arities) {
            *slot = rem % a;
            rem /= a;
        }
        shard.record(&idx);
    }
    shard
}

proptest! {
    /// a ⊕ b = b ⊕ a, exactly (integer counts are exact in f64).
    #[test]
    fn merge_is_commutative(
        arity0 in 2usize..5,
        arity1 in 2usize..5,
        picks_a in proptest::collection::vec(any::<u64>(), 0..60),
        picks_b in proptest::collection::vec(any::<u64>(), 0..60),
    ) {
        let arities = [arity0, arity1];
        let a = shard_of(&arities, &picks_a);
        let b = shard_of(&arities, &picks_b);
        let mut ab = a.clone();
        ab.merge(&b).unwrap();
        let mut ba = b.clone();
        ba.merge(&a).unwrap();
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.total(), (picks_a.len() + picks_b.len()) as f64);
    }

    /// (a ⊕ b) ⊕ c = a ⊕ (b ⊕ c), exactly.
    #[test]
    fn merge_is_associative(
        arity0 in 2usize..4,
        arity1 in 2usize..4,
        arity2 in 2usize..4,
        picks_a in proptest::collection::vec(any::<u64>(), 0..40),
        picks_b in proptest::collection::vec(any::<u64>(), 0..40),
        picks_c in proptest::collection::vec(any::<u64>(), 0..40),
    ) {
        let arities = [arity0, arity1, arity2];
        let a = shard_of(&arities, &picks_a);
        let b = shard_of(&arities, &picks_b);
        let c = shard_of(&arities, &picks_c);
        let mut left = a.clone();
        left.merge(&b).unwrap();
        left.merge(&c).unwrap();
        let mut bc = b.clone();
        bc.merge(&c).unwrap();
        let mut right = a.clone();
        right.merge(&bc).unwrap();
        prop_assert_eq!(left, right);
    }

    /// zeros is a two-sided identity.
    #[test]
    fn zeros_is_identity(
        arity in 2usize..6,
        picks in proptest::collection::vec(any::<u64>(), 0..80),
    ) {
        let arities = [arity, 2];
        let a = shard_of(&arities, &picks);
        let zero = PartialCounts::zeros(axes_from(&arities)).unwrap();
        let mut left = zero.clone();
        left.merge(&a).unwrap();
        let mut right = a.clone();
        right.merge(&zero).unwrap();
        prop_assert_eq!(&left, &a);
        prop_assert_eq!(&right, &a);
    }

    /// merge then subtract is the identity — the exact inverse the
    /// sliding-window monitor relies on to evict expired buckets — and the
    /// difference never holds a negative cell.
    #[test]
    fn subtract_round_trips_merge(
        arity0 in 2usize..5,
        arity1 in 2usize..5,
        picks_window in proptest::collection::vec(any::<u64>(), 0..60),
        picks_bucket in proptest::collection::vec(any::<u64>(), 0..60),
    ) {
        let arities = [arity0, arity1];
        let reference = shard_of(&arities, &picks_window);
        let bucket = shard_of(&arities, &picks_bucket);
        let mut window = reference.clone();
        window.merge(&bucket).unwrap();
        window.subtract(&bucket).unwrap();
        prop_assert_eq!(&window, &reference);
        prop_assert!(window.table().data().iter().all(|&v| v >= 0.0));
        // Subtracting the window from itself reaches the monoid identity.
        let mut drained = window.clone();
        drained.subtract(&window).unwrap();
        prop_assert_eq!(drained.total(), 0.0);
        prop_assert!(drained.table().data().iter().all(|&v| v == 0.0));
    }

    /// Subtracting mass that was never merged in errors and leaves the
    /// minuend untouched — the non-negativity invariant.
    #[test]
    fn subtract_never_goes_negative(
        arity in 2usize..5,
        picks in proptest::collection::vec(any::<u64>(), 0..40),
        extra in any::<u64>(),
    ) {
        let arities = [2, arity];
        let window = shard_of(&arities, &picks);
        // A bucket strictly exceeding the window in one cell.
        let mut bucket = window.clone();
        let mut idx = vec![0usize; 2];
        let mut rem = extra as usize;
        for (slot, &a) in idx.iter_mut().zip(&arities) {
            *slot = rem % a;
            rem /= a;
        }
        bucket.record(&idx);
        let before = window.clone();
        let mut window = window;
        prop_assert!(window.subtract(&bucket).is_err());
        prop_assert_eq!(&window, &before);
    }

    /// Folding any partition of the records through `from_partials` equals
    /// the single-shard tally — shard-count invariance at the table level.
    #[test]
    fn from_partials_is_partition_invariant(
        arity in 2usize..5,
        picks in proptest::collection::vec(any::<u64>(), 1..120),
        n_shards in 1usize..7,
    ) {
        let arities = [2, arity];
        let whole = shard_of(&arities, &picks).into_table();
        let per_shard = picks.len().div_ceil(n_shards);
        let shards: Vec<PartialCounts> = picks
            .chunks(per_shard)
            .map(|c| shard_of(&arities, c))
            .collect();
        let folded = ContingencyTable::from_partials(shards).unwrap();
        prop_assert_eq!(folded, whole);
    }
}
