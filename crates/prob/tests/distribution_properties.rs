//! Property-based tests of the distribution substrate: CDF monotonicity,
//! density positivity, quantile inversion, and sampling/CDF agreement.

use df_prob::dist::{Beta, Binomial, Categorical, Continuous, Discrete, Gamma, Normal, Sampler};
use df_prob::rng::Pcg32;
use df_prob::special::std_normal_cdf;
use proptest::prelude::*;

proptest! {
    #[test]
    fn normal_cdf_is_monotone_and_bounded(
        mean in -50.0f64..50.0,
        sd in 0.1f64..20.0,
        a in -100.0f64..100.0,
        b in -100.0f64..100.0,
    ) {
        let d = Normal::new(mean, sd).unwrap();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let (ca, cb) = (d.cdf(lo), d.cdf(hi));
        prop_assert!((0.0..=1.0).contains(&ca));
        prop_assert!((0.0..=1.0).contains(&cb));
        prop_assert!(ca <= cb + 1e-12);
    }

    #[test]
    fn normal_quantile_inverts_cdf(
        mean in -10.0f64..10.0,
        sd in 0.1f64..5.0,
        p in 0.001f64..0.999,
    ) {
        let d = Normal::new(mean, sd).unwrap();
        let x = d.quantile(p).unwrap();
        prop_assert!((d.cdf(x) - p).abs() < 1e-9);
    }

    #[test]
    fn normal_pdf_nonnegative_and_symmetric(
        mean in -10.0f64..10.0,
        sd in 0.1f64..5.0,
        dx in 0.0f64..10.0,
    ) {
        let d = Normal::new(mean, sd).unwrap();
        let left = d.pdf(mean - dx);
        let right = d.pdf(mean + dx);
        prop_assert!(left >= 0.0);
        prop_assert!((left - right).abs() <= 1e-12 * left.max(1e-300));
    }

    #[test]
    fn gamma_cdf_monotone(shape in 0.2f64..20.0, scale in 0.1f64..5.0, x in 0.0f64..50.0) {
        let d = Gamma::new(shape, scale).unwrap();
        prop_assert!(d.cdf(x) <= d.cdf(x + 1.0) + 1e-12);
        prop_assert!((0.0..=1.0).contains(&d.cdf(x)));
        prop_assert!(d.pdf(x) >= 0.0);
    }

    #[test]
    fn beta_cdf_hits_endpoints(a in 0.2f64..10.0, b in 0.2f64..10.0) {
        let d = Beta::new(a, b).unwrap();
        prop_assert!(d.cdf(0.0) == 0.0);
        prop_assert!(d.cdf(1.0) == 1.0);
        prop_assert!(d.cdf(0.5) >= 0.0 && d.cdf(0.5) <= 1.0);
    }

    #[test]
    fn binomial_pmf_sums_to_one(n in 1u64..60, p in 0.0f64..1.0) {
        let d = Binomial::new(n, p).unwrap();
        let total: f64 = (0..=n as usize).map(|k| d.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn categorical_pmf_matches_normalized_weights(
        weights in proptest::collection::vec(0.01f64..10.0, 2..20),
    ) {
        let d = Categorical::new(&weights).unwrap();
        let sum: f64 = weights.iter().sum();
        for (k, &w) in weights.iter().enumerate() {
            prop_assert!((d.pmf(k) - w / sum).abs() < 1e-12);
        }
        let total: f64 = (0..weights.len()).map(|k| d.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn samples_respect_support(seed in any::<u64>()) {
        let mut rng = Pcg32::new(seed);
        let gamma = Gamma::new(1.5, 2.0).unwrap();
        let beta = Beta::new(2.0, 3.0).unwrap();
        let binom = Binomial::new(20, 0.3).unwrap();
        for _ in 0..50 {
            prop_assert!(gamma.sample(&mut rng) >= 0.0);
            let b = beta.sample(&mut rng);
            prop_assert!((0.0..=1.0).contains(&b));
            prop_assert!(binom.sample(&mut rng) <= 20);
        }
    }

    #[test]
    fn erf_consistency_with_normal_cdf(x in -6.0f64..6.0) {
        // Φ(x) computed directly must agree with the distribution object.
        let d = Normal::standard();
        prop_assert!((d.cdf(x) - std_normal_cdf(x)).abs() < 1e-14);
    }

    #[test]
    fn empirical_mean_tracks_analytic(seed in 0u64..1000) {
        let mut rng = Pcg32::new(seed);
        let d = Gamma::new(3.0, 1.5).unwrap();
        let n = 4000;
        let mean = d.sample_n(&mut rng, n).iter().sum::<f64>() / n as f64;
        // 6-sigma band: sd of mean = sqrt(k θ²/n) ≈ 0.041.
        prop_assert!((mean - d.mean()).abs() < 0.25, "mean {mean}");
    }
}
