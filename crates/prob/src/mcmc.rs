//! Posterior samplers and chain diagnostics.
//!
//! The paper (§3, footnote 2) allows the distribution class Θ to be "a set of
//! burned-in MCMC samples" from a Bayesian model of the data. For the
//! Dirichlet-multinomial outcome model the posterior is conjugate, so
//! [`DirichletPosterior`] draws exact samples; a generic random-walk
//! [`MetropolisHastings`] sampler and effective-sample-size diagnostics are
//! provided for models without conjugacy.

use crate::dist::{Dirichlet, Sampler};
use crate::error::{ProbError, Result};
use crate::estimate::dirichlet_posterior_alpha;
use crate::numerics::exactly_zero;
use crate::rng::Pcg32;

/// Exact sampler for the posterior `Dir(N₁+α, …, N_K+α)` of outcome
/// probabilities given counts under a symmetric Dirichlet(α) prior.
#[derive(Debug, Clone)]
pub struct DirichletPosterior {
    posterior: Dirichlet,
}

impl DirichletPosterior {
    /// Builds the posterior from observed counts and prior concentration α.
    pub fn from_counts(counts: &[f64], alpha: f64) -> Result<Self> {
        let post_alpha = dirichlet_posterior_alpha(counts, alpha)?;
        Ok(Self {
            posterior: Dirichlet::new(post_alpha)?,
        })
    }

    /// Posterior mean (equals the Eq. 7 posterior predictive).
    pub fn mean(&self) -> Vec<f64> {
        self.posterior.mean()
    }

    /// Draws `n` posterior probability vectors (a plug-in Θ sample set).
    pub fn sample_thetas(&self, rng: &mut Pcg32, n: usize) -> Vec<Vec<f64>> {
        self.posterior.sample_n(rng, n)
    }
}

/// A target density for Metropolis–Hastings, given as a log-density.
pub trait LogDensity {
    /// Unnormalized log-density at `x`.
    fn ln_density(&self, x: f64) -> f64;
}

impl<F: Fn(f64) -> f64> LogDensity for F {
    fn ln_density(&self, x: f64) -> f64 {
        self(x)
    }
}

/// Random-walk Metropolis–Hastings on ℝ with a Gaussian proposal.
#[derive(Debug, Clone)]
pub struct MetropolisHastings {
    proposal_std: f64,
    burn_in: usize,
    thin: usize,
}

impl MetropolisHastings {
    /// Configures the sampler. `proposal_std > 0`, `thin ≥ 1`.
    pub fn new(proposal_std: f64, burn_in: usize, thin: usize) -> Result<Self> {
        if !(proposal_std.is_finite() && proposal_std > 0.0) {
            return Err(ProbError::InvalidParameter {
                name: "proposal_std",
                reason: format!("must be positive and finite, got {proposal_std}"),
            });
        }
        if thin == 0 {
            return Err(ProbError::InvalidParameter {
                name: "thin",
                reason: "must be at least 1".into(),
            });
        }
        Ok(Self {
            proposal_std,
            burn_in,
            thin,
        })
    }

    /// Runs the chain from `init`, returning `n` post-burn-in, thinned draws
    /// and the realized acceptance rate.
    pub fn run<D: LogDensity>(
        &self,
        target: &D,
        init: f64,
        n: usize,
        rng: &mut Pcg32,
    ) -> (Vec<f64>, f64) {
        let total_steps = self.burn_in + n * self.thin;
        let mut x = init;
        let mut lp = target.ln_density(x);
        let mut draws = Vec::with_capacity(n);
        let mut accepted = 0usize;
        for step in 0..total_steps {
            // Gaussian proposal via the polar method.
            let z = loop {
                let u = 2.0 * rng.next_f64() - 1.0;
                let v = 2.0 * rng.next_f64() - 1.0;
                let s = u * u + v * v;
                if s > 0.0 && s < 1.0 {
                    break u * (-2.0 * s.ln() / s).sqrt();
                }
            };
            let proposal = x + self.proposal_std * z;
            let lp_new = target.ln_density(proposal);
            let accept = lp_new - lp >= 0.0 || rng.next_f64().ln() < lp_new - lp;
            if accept {
                x = proposal;
                lp = lp_new;
                accepted += 1;
            }
            if step >= self.burn_in && (step - self.burn_in).is_multiple_of(self.thin) {
                draws.push(x);
            }
        }
        (draws, accepted as f64 / total_steps as f64)
    }
}

/// Lag-k autocorrelation of a chain.
pub fn autocorrelation(chain: &[f64], lag: usize) -> f64 {
    let n = chain.len();
    if lag >= n || n < 2 {
        return 0.0;
    }
    let mean = chain.iter().sum::<f64>() / n as f64;
    let var: f64 = chain.iter().map(|x| (x - mean).powi(2)).sum();
    if exactly_zero(var) {
        return 0.0;
    }
    let cov: f64 = (0..n - lag)
        .map(|i| (chain[i] - mean) * (chain[i + lag] - mean))
        .sum();
    cov / var
}

/// Effective sample size via the initial-positive-sequence estimator
/// (Geyer 1992): `ESS = n / (1 + 2 Σ ρ_k)` truncated at the first
/// non-positive autocorrelation.
pub fn effective_sample_size(chain: &[f64]) -> f64 {
    let n = chain.len();
    if n < 3 {
        return n as f64;
    }
    let mut rho_sum = 0.0;
    for lag in 1..n / 2 {
        let rho = autocorrelation(chain, lag);
        if rho <= 0.0 {
            break;
        }
        rho_sum += rho;
    }
    (n as f64 / (1.0 + 2.0 * rho_sum)).min(n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numerics::approx_eq;

    #[test]
    fn dirichlet_posterior_mean_matches_eq7() {
        let post = DirichletPosterior::from_counts(&[81.0, 6.0], 1.0).unwrap();
        let mean = post.mean();
        assert!(approx_eq(mean[0], 82.0 / 89.0, 1e-14, 0.0));
        assert!(approx_eq(mean[1], 7.0 / 89.0, 1e-14, 0.0));
    }

    #[test]
    fn posterior_samples_concentrate_with_data() {
        let mut rng = Pcg32::new(41);
        let tight = DirichletPosterior::from_counts(&[8000.0, 2000.0], 1.0).unwrap();
        let loose = DirichletPosterior::from_counts(&[8.0, 2.0], 1.0).unwrap();
        let spread = |s: &DirichletPosterior, rng: &mut Pcg32| {
            let draws = s.sample_thetas(rng, 2000);
            let xs: Vec<f64> = draws.iter().map(|d| d[0]).collect();
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            (xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
        };
        assert!(spread(&tight, &mut rng) < 0.02);
        assert!(spread(&loose, &mut rng) > 0.05);
    }

    #[test]
    fn mh_recovers_standard_normal() {
        let target = |x: f64| -0.5 * x * x;
        let mh = MetropolisHastings::new(1.5, 2000, 5).unwrap();
        let mut rng = Pcg32::new(42);
        let (draws, accept_rate) = mh.run(&target, 0.0, 5000, &mut rng);
        assert_eq!(draws.len(), 5000);
        assert!(accept_rate > 0.2 && accept_rate < 0.8, "rate={accept_rate}");
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        let var = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / draws.len() as f64;
        assert!(mean.abs() < 0.08, "mean={mean}");
        assert!((var - 1.0).abs() < 0.15, "var={var}");
    }

    #[test]
    fn mh_validates_parameters() {
        assert!(MetropolisHastings::new(0.0, 10, 1).is_err());
        assert!(MetropolisHastings::new(1.0, 10, 0).is_err());
    }

    #[test]
    fn autocorrelation_of_iid_is_near_zero() {
        let mut rng = Pcg32::new(43);
        let chain: Vec<f64> = (0..20_000).map(|_| rng.next_f64()).collect();
        assert!(autocorrelation(&chain, 1).abs() < 0.03);
        assert!(autocorrelation(&chain, 7).abs() < 0.03);
    }

    #[test]
    fn autocorrelation_of_constant_is_zero() {
        let chain = vec![2.0; 100];
        assert_eq!(autocorrelation(&chain, 1), 0.0);
    }

    #[test]
    fn ess_detects_correlation() {
        let mut rng = Pcg32::new(44);
        // AR(1) with strong persistence → low ESS.
        let mut x = 0.0;
        let ar: Vec<f64> = (0..5000)
            .map(|_| {
                x = 0.95 * x + (rng.next_f64() - 0.5);
                x
            })
            .collect();
        let iid: Vec<f64> = (0..5000).map(|_| rng.next_f64()).collect();
        let ess_ar = effective_sample_size(&ar);
        let ess_iid = effective_sample_size(&iid);
        assert!(ess_ar < 0.2 * ess_iid, "ar={ess_ar}, iid={ess_iid}");
        assert!(ess_iid > 3000.0);
    }
}
