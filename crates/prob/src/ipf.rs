//! Iterative proportional fitting (IPF).
//!
//! Calibrates a joint table to prescribed marginal totals while preserving
//! the interaction structure of the seed table. The synthetic-Adult generator
//! uses this to reconcile its joint (gender, race, nationality) distribution
//! with published marginals.

use crate::contingency::ContingencyTable;
use crate::error::{ProbError, Result};
use crate::numerics::exactly_zero;

/// A marginal constraint: the table, marginalized onto `axes`, should equal
/// `target` (axes and label order must match the marginalization output).
#[derive(Debug, Clone)]
pub struct MarginalTarget {
    /// Axis names defining the marginal, in order.
    pub axes: Vec<String>,
    /// Target marginal table over exactly those axes.
    pub target: ContingencyTable,
}

impl MarginalTarget {
    /// Creates a constraint after validating that `target`'s axes match
    /// `axes` by name and order.
    pub fn new(axes: Vec<String>, target: ContingencyTable) -> Result<Self> {
        if target.ndim() != axes.len() {
            return Err(ProbError::ShapeMismatch {
                context: "MarginalTarget",
                expected: axes.len(),
                actual: target.ndim(),
            });
        }
        for (want, have) in axes.iter().zip(target.axes()) {
            if want != have.name() {
                return Err(ProbError::UnknownAxis(format!(
                    "target axis `{}` does not match requested `{want}`",
                    have.name()
                )));
            }
        }
        Ok(Self { axes, target })
    }
}

/// Result of an IPF run.
#[derive(Debug, Clone)]
pub struct IpfOutcome {
    /// The fitted table.
    pub table: ContingencyTable,
    /// Iterations performed.
    pub iterations: usize,
    /// Final maximum absolute deviation from any target marginal cell.
    pub max_deviation: f64,
}

/// Runs IPF on `seed` until every target marginal matches within `tol`
/// (absolute per-cell), or `max_iter` sweeps elapse.
///
/// All targets must have the same total mass (checked within `tol`), and the
/// seed must put positive mass wherever the targets require it; otherwise IPF
/// cannot converge and an error is returned.
pub fn iterative_proportional_fit(
    seed: &ContingencyTable,
    targets: &[MarginalTarget],
    tol: f64,
    max_iter: usize,
) -> Result<IpfOutcome> {
    if targets.is_empty() {
        return Err(ProbError::InvalidParameter {
            name: "targets",
            reason: "need at least one marginal target".into(),
        });
    }
    let total0 = targets[0].target.total();
    for t in targets {
        if (t.target.total() - total0).abs() > tol.max(1e-9) * total0.max(1.0) {
            return Err(ProbError::InvalidParameter {
                name: "targets",
                reason: format!(
                    "marginal totals disagree: {} vs {}",
                    total0,
                    t.target.total()
                ),
            });
        }
    }

    let mut table = seed.clone();
    let ndim = table.ndim();
    let mut src_idx = vec![0usize; ndim];

    for iteration in 1..=max_iter {
        for target in targets {
            let axis_names: Vec<&str> = target.axes.iter().map(String::as_str).collect();
            let current = table.marginalize(&axis_names)?;
            let positions: Vec<usize> = axis_names
                .iter()
                .map(|n| table.axis_position(n))
                .collect::<Result<_>>()?;

            // Scale every cell by target/current of its projected marginal.
            let mut proj = vec![0usize; positions.len()];
            let cells: Vec<(usize, f64)> = table.data().iter().copied().enumerate().collect();
            for (flat, v) in cells {
                if exactly_zero(v) {
                    continue;
                }
                table.unflatten(flat, &mut src_idx);
                for (p, &pos) in proj.iter_mut().zip(&positions) {
                    *p = src_idx[pos];
                }
                let cur = current.get(&proj);
                let tgt = target.target.get(&proj);
                if cur > 0.0 {
                    let mut idx_val = v * tgt / cur;
                    if !idx_val.is_finite() {
                        idx_val = 0.0;
                    }
                    table.set(&src_idx, idx_val)?;
                } else if tgt > tol {
                    return Err(ProbError::NoConvergence {
                        algorithm: "ipf (seed has zero mass where target is positive)",
                        iterations: iteration,
                    });
                }
            }
        }

        // Convergence check across all targets.
        let mut max_dev = 0.0f64;
        for target in targets {
            let axis_names: Vec<&str> = target.axes.iter().map(String::as_str).collect();
            let current = table.marginalize(&axis_names)?;
            for ((_, got), (_, want)) in current.iter_cells().zip(target.target.iter_cells()) {
                max_dev = max_dev.max((got - want).abs());
            }
        }
        if max_dev <= tol {
            return Ok(IpfOutcome {
                table,
                iterations: iteration,
                max_deviation: max_dev,
            });
        }
    }
    Err(ProbError::NoConvergence {
        algorithm: "ipf",
        iterations: max_iter,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contingency::Axis;
    use crate::numerics::approx_eq;

    fn axes_2x2() -> Vec<Axis> {
        vec![
            Axis::from_strs("row", &["r0", "r1"]).unwrap(),
            Axis::from_strs("col", &["c0", "c1"]).unwrap(),
        ]
    }

    #[test]
    fn fits_two_marginals() {
        let seed = ContingencyTable::from_data(axes_2x2(), vec![1.0, 1.0, 1.0, 1.0]).unwrap();
        let row_target = ContingencyTable::from_data(
            vec![Axis::from_strs("row", &["r0", "r1"]).unwrap()],
            vec![30.0, 70.0],
        )
        .unwrap();
        let col_target = ContingencyTable::from_data(
            vec![Axis::from_strs("col", &["c0", "c1"]).unwrap()],
            vec![40.0, 60.0],
        )
        .unwrap();
        let out = iterative_proportional_fit(
            &seed,
            &[
                MarginalTarget::new(vec!["row".into()], row_target).unwrap(),
                MarginalTarget::new(vec!["col".into()], col_target).unwrap(),
            ],
            1e-10,
            200,
        )
        .unwrap();
        // With a uniform seed, the solution is the independent product.
        assert!(approx_eq(out.table.get(&[0, 0]), 12.0, 1e-6, 1e-8));
        assert!(approx_eq(out.table.get(&[1, 1]), 42.0, 1e-6, 1e-8));
        assert!(out.max_deviation <= 1e-10);
    }

    #[test]
    fn preserves_odds_ratio_of_seed() {
        // IPF keeps the seed's interaction structure (odds ratio) intact.
        let seed = ContingencyTable::from_data(axes_2x2(), vec![4.0, 1.0, 1.0, 4.0]).unwrap();
        let or_seed =
            (seed.get(&[0, 0]) * seed.get(&[1, 1])) / (seed.get(&[0, 1]) * seed.get(&[1, 0]));
        let row_target = ContingencyTable::from_data(
            vec![Axis::from_strs("row", &["r0", "r1"]).unwrap()],
            vec![25.0, 75.0],
        )
        .unwrap();
        let col_target = ContingencyTable::from_data(
            vec![Axis::from_strs("col", &["c0", "c1"]).unwrap()],
            vec![55.0, 45.0],
        )
        .unwrap();
        let out = iterative_proportional_fit(
            &seed,
            &[
                MarginalTarget::new(vec!["row".into()], row_target).unwrap(),
                MarginalTarget::new(vec!["col".into()], col_target).unwrap(),
            ],
            1e-10,
            500,
        )
        .unwrap();
        let t = &out.table;
        let or_fit = (t.get(&[0, 0]) * t.get(&[1, 1])) / (t.get(&[0, 1]) * t.get(&[1, 0]));
        assert!(
            approx_eq(or_fit, or_seed, 1e-6, 1e-8),
            "{or_fit} vs {or_seed}"
        );
    }

    #[test]
    fn rejects_inconsistent_totals() {
        let seed = ContingencyTable::from_data(axes_2x2(), vec![1.0, 1.0, 1.0, 1.0]).unwrap();
        let row_target = ContingencyTable::from_data(
            vec![Axis::from_strs("row", &["r0", "r1"]).unwrap()],
            vec![30.0, 70.0],
        )
        .unwrap();
        let col_target = ContingencyTable::from_data(
            vec![Axis::from_strs("col", &["c0", "c1"]).unwrap()],
            vec![10.0, 20.0],
        )
        .unwrap();
        assert!(iterative_proportional_fit(
            &seed,
            &[
                MarginalTarget::new(vec!["row".into()], row_target).unwrap(),
                MarginalTarget::new(vec!["col".into()], col_target).unwrap(),
            ],
            1e-8,
            100,
        )
        .is_err());
    }

    #[test]
    fn structural_zero_in_seed_blocks_positive_target() {
        let seed = ContingencyTable::from_data(axes_2x2(), vec![0.0, 0.0, 1.0, 1.0]).unwrap();
        let row_target = ContingencyTable::from_data(
            vec![Axis::from_strs("row", &["r0", "r1"]).unwrap()],
            vec![50.0, 50.0],
        )
        .unwrap();
        let col_target = ContingencyTable::from_data(
            vec![Axis::from_strs("col", &["c0", "c1"]).unwrap()],
            vec![50.0, 50.0],
        )
        .unwrap();
        assert!(iterative_proportional_fit(
            &seed,
            &[
                MarginalTarget::new(vec!["row".into()], row_target).unwrap(),
                MarginalTarget::new(vec!["col".into()], col_target).unwrap(),
            ],
            1e-8,
            100,
        )
        .is_err());
    }

    #[test]
    fn three_way_table_with_pairwise_targets() {
        let axes = vec![
            Axis::from_strs("a", &["a0", "a1"]).unwrap(),
            Axis::from_strs("b", &["b0", "b1"]).unwrap(),
            Axis::from_strs("c", &["c0", "c1"]).unwrap(),
        ];
        let seed = ContingencyTable::from_data(axes, vec![1.0; 8]).unwrap();
        let ab = ContingencyTable::from_data(
            vec![
                Axis::from_strs("a", &["a0", "a1"]).unwrap(),
                Axis::from_strs("b", &["b0", "b1"]).unwrap(),
            ],
            vec![10.0, 20.0, 30.0, 40.0],
        )
        .unwrap();
        let c = ContingencyTable::from_data(
            vec![Axis::from_strs("c", &["c0", "c1"]).unwrap()],
            vec![45.0, 55.0],
        )
        .unwrap();
        let out = iterative_proportional_fit(
            &seed,
            &[
                MarginalTarget::new(vec!["a".into(), "b".into()], ab).unwrap(),
                MarginalTarget::new(vec!["c".into()], c).unwrap(),
            ],
            1e-9,
            500,
        )
        .unwrap();
        let fitted_ab = out.table.marginalize(&["a", "b"]).unwrap();
        assert!(approx_eq(fitted_ab.get(&[0, 1]), 20.0, 1e-6, 1e-7));
        let fitted_c = out.table.marginalize(&["c"]).unwrap();
        assert!(approx_eq(fitted_c.get(&[1]), 55.0, 1e-6, 1e-7));
    }
}
