//! Numerically stable scalar primitives.
//!
//! Differential fairness is computed from ratios of small probabilities, so
//! everything downstream leans on the log-domain helpers here.

/// Natural log of the smallest positive normal `f64`, used as a floor for
/// log-probabilities so that ratios of underflowed probabilities stay finite.
pub const LOG_MIN_POSITIVE: f64 = -708.396_418_532_264_1;

/// Computes `ln(1 + e^x)` without overflow for large `x` or cancellation for
/// very negative `x` (the "softplus" function).
#[inline]
pub fn log1p_exp(x: f64) -> f64 {
    if x > 33.3 {
        // e^-x is below machine epsilon relative to x.
        x
    } else if x > -37.0 {
        x.exp().ln_1p()
    } else {
        // ln(1 + e^x) ≈ e^x for very negative x.
        x.exp()
    }
}

/// Computes `ln(e^a + e^b)` stably.
#[inline]
pub fn log_add_exp(a: f64, b: f64) -> f64 {
    if a == f64::NEG_INFINITY {
        return b;
    }
    if b == f64::NEG_INFINITY {
        return a;
    }
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    hi + log1p_exp(lo - hi)
}

/// Computes `ln Σ e^{x_i}` stably. Returns `-∞` for an empty slice.
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !max.is_finite() {
        // Either empty, all -inf (sum is 0 → log 0), or contains +inf/NaN;
        // the fold result is already the right answer for the first two.
        return max;
    }
    let sum: f64 = xs.iter().map(|&x| (x - max).exp()).sum();
    max + sum.ln()
}

/// The logistic sigmoid `1 / (1 + e^{-x})`, stable at both tails.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        let e = (-x).exp();
        1.0 / (1.0 + e)
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Inverse of [`sigmoid`]: `ln(p / (1-p))`.
///
/// Returns `±∞` at the endpoints, NaN outside `[0, 1]`.
#[inline]
pub fn logit(p: f64) -> f64 {
    (p / (1.0 - p)).ln()
}

/// Log of the ratio `p / q` with the conventions needed by differential
/// fairness (Definition 3.1 of the paper):
///
/// - both zero → `0.0` (the pair imposes no constraint; 0/0 groups are
///   excluded by the `P(s|θ) > 0` side condition upstream, and a shared
///   impossible outcome is vacuously fair),
/// - `p > 0, q == 0` → `+∞` (unboundedly unfair),
/// - `p == 0, q > 0` → `-∞`.
#[inline]
pub fn log_ratio(p: f64, q: f64) -> f64 {
    debug_assert!(p >= 0.0 && q >= 0.0, "log_ratio expects probabilities");
    if p == 0.0 && q == 0.0 {
        0.0
    } else if q == 0.0 {
        f64::INFINITY
    } else if p == 0.0 {
        f64::NEG_INFINITY
    } else {
        (p / q).ln()
    }
}

/// Kahan–Babuška compensated summation.
///
/// Keeps `O(1)` error on long, mixed-magnitude sums such as probability-mass
/// accumulations over large contingency tables.
#[derive(Debug, Clone, Copy, Default)]
pub struct KahanSum {
    sum: f64,
    compensation: f64,
}

impl KahanSum {
    /// Creates an empty sum.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one term.
    #[inline]
    pub fn add(&mut self, x: f64) {
        let t = self.sum + x;
        if self.sum.abs() >= x.abs() {
            self.compensation += (self.sum - t) + x;
        } else {
            self.compensation += (x - t) + self.sum;
        }
        self.sum = t;
    }

    /// Current compensated value of the sum.
    #[inline]
    pub fn value(&self) -> f64 {
        self.sum + self.compensation
    }
}

impl FromIterator<f64> for KahanSum {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut acc = KahanSum::new();
        for x in iter {
            acc.add(x);
        }
        acc
    }
}

/// Sums a slice with compensated summation.
pub fn stable_sum(xs: &[f64]) -> f64 {
    xs.iter().copied().collect::<KahanSum>().value()
}

/// Exact float equality as a named, reviewable operation.
///
/// The `no-float-eq` lint bans bare `==`/`!=` against float literals
/// because most such sites *should* be tolerance checks. The sites that
/// genuinely want bit-for-bit semantics — sentinel values, "is this
/// probability exactly the degenerate endpoint", guards before division
/// — route through these helpers instead, so every exact comparison in
/// the tree is a deliberate, greppable decision. For closeness checks
/// use [`approx_eq`].
#[inline]
pub fn exactly(a: f64, b: f64) -> bool {
    a == b
}

/// `x` is exactly `0.0` (or `-0.0`). See [`exactly`] for why this is a
/// named operation. Typical use: guarding a division or skipping empty
/// probability cells, where only the true zero is special.
#[inline]
pub fn exactly_zero(x: f64) -> bool {
    x == 0.0
}

/// `x` is exactly `1.0`. See [`exactly`].
#[inline]
pub fn exactly_one(x: f64) -> bool {
    x == 1.0
}

/// Relative closeness check used in tests and convergence criteria:
/// `|a - b| <= atol + rtol * max(|a|, |b|)`.
#[inline]
pub fn approx_eq(a: f64, b: f64, rtol: f64, atol: f64) -> bool {
    if a == b {
        return true; // covers infinities of equal sign
    }
    (a - b).abs() <= atol + rtol * a.abs().max(b.abs())
}

/// Clamps a probability into the closed unit interval, mapping NaN to 0.
#[inline]
pub fn clamp_prob(p: f64) -> f64 {
    if p.is_nan() {
        0.0
    } else {
        p.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log1p_exp_matches_naive_in_safe_range() {
        for i in -300..300 {
            let x = i as f64 / 10.0;
            let naive = (1.0 + x.exp()).ln();
            assert!(
                approx_eq(log1p_exp(x), naive, 1e-12, 1e-14),
                "x={x}: {} vs {}",
                log1p_exp(x),
                naive
            );
        }
    }

    #[test]
    fn log1p_exp_extremes() {
        assert_eq!(log1p_exp(1000.0), 1000.0);
        assert!(log1p_exp(-1000.0) >= 0.0);
        assert!(log1p_exp(-1000.0) < 1e-300);
    }

    #[test]
    fn log_add_exp_handles_neg_infinity() {
        assert_eq!(log_add_exp(f64::NEG_INFINITY, 3.0), 3.0);
        assert_eq!(log_add_exp(3.0, f64::NEG_INFINITY), 3.0);
        assert_eq!(
            log_add_exp(f64::NEG_INFINITY, f64::NEG_INFINITY),
            f64::NEG_INFINITY
        );
    }

    #[test]
    fn log_sum_exp_agrees_with_direct() {
        let xs = [0.1_f64, -2.0, 3.5, 1.0];
        let direct: f64 = xs.iter().map(|x| x.exp()).sum::<f64>().ln();
        assert!(approx_eq(log_sum_exp(&xs), direct, 1e-12, 0.0));
    }

    #[test]
    fn log_sum_exp_empty_and_all_neg_inf() {
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
        assert_eq!(
            log_sum_exp(&[f64::NEG_INFINITY, f64::NEG_INFINITY]),
            f64::NEG_INFINITY
        );
    }

    #[test]
    fn log_sum_exp_shift_invariance() {
        let xs = [-700.0, -701.0, -702.5];
        let shifted: Vec<f64> = xs.iter().map(|x| x + 700.0).collect();
        let a = log_sum_exp(&xs);
        let b = log_sum_exp(&shifted) - 700.0;
        assert!(approx_eq(a, b, 1e-12, 1e-12));
    }

    #[test]
    fn sigmoid_logit_roundtrip() {
        for i in 1..100 {
            let p = i as f64 / 100.0;
            assert!(approx_eq(sigmoid(logit(p)), p, 1e-12, 1e-14));
        }
    }

    #[test]
    fn sigmoid_tails_do_not_overflow() {
        assert_eq!(sigmoid(800.0), 1.0);
        assert!(sigmoid(-800.0) >= 0.0);
        assert!(sigmoid(-800.0) < 1e-300);
    }

    #[test]
    fn log_ratio_conventions() {
        assert_eq!(log_ratio(0.0, 0.0), 0.0);
        assert_eq!(log_ratio(0.5, 0.0), f64::INFINITY);
        assert_eq!(log_ratio(0.0, 0.5), f64::NEG_INFINITY);
        assert!(approx_eq(log_ratio(0.6, 0.3), 2.0_f64.ln(), 1e-14, 0.0));
    }

    #[test]
    fn kahan_beats_naive_on_adversarial_sum() {
        // 1.0 followed by many tiny values that naive summation drops.
        let tiny = 1e-16;
        let n = 100_000;
        let mut xs = vec![1.0];
        xs.extend(std::iter::repeat_n(tiny, n));
        let exact = 1.0 + tiny * n as f64;
        let kahan = stable_sum(&xs);
        assert!(
            approx_eq(kahan, exact, 1e-12, 0.0),
            "kahan={kahan}, exact={exact}"
        );
    }

    #[test]
    fn clamp_prob_bounds() {
        assert_eq!(clamp_prob(-0.5), 0.0);
        assert_eq!(clamp_prob(1.5), 1.0);
        assert_eq!(clamp_prob(f64::NAN), 0.0);
        assert_eq!(clamp_prob(0.25), 0.25);
    }
}
