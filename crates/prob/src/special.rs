//! Special functions: log-gamma, digamma, incomplete gamma, error function,
//! and the inverse normal CDF.
//!
//! Implementations are self-contained (no libm beyond `std`) and accurate to
//! ~1e-13 relative error in the ranges exercised by the workspace, verified
//! against high-precision reference values in the tests below.

use crate::error::{ProbError, Result};
use crate::numerics::{exactly_one, exactly_zero};

/// Lanczos coefficients (g = 7, n = 9), Boost/GSL-compatible.
const LANCZOS_G: f64 = 7.0;
const LANCZOS_COEF: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of the gamma function for `x > 0` (Lanczos approximation).
///
/// Accurate to better than 1e-13 relative error for `x ∈ (0, 170]`.
pub fn ln_gamma(x: f64) -> f64 {
    debug_assert!(x > 0.0, "ln_gamma domain is x > 0, got {x}");
    if x < 0.5 {
        // Reflection formula keeps precision near zero.
        let pi = std::f64::consts::PI;
        (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut a = LANCZOS_COEF[0];
        let t = x + LANCZOS_G + 0.5;
        for (i, &c) in LANCZOS_COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
    }
}

/// Digamma function ψ(x) = d/dx ln Γ(x) for `x > 0`.
///
/// Uses the recurrence to push the argument above 6, then the asymptotic
/// series.
pub fn digamma(mut x: f64) -> f64 {
    debug_assert!(x > 0.0, "digamma domain is x > 0, got {x}");
    let mut result = 0.0;
    while x < 10.0 {
        result -= 1.0 / x;
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    // Asymptotic expansion with Bernoulli-number coefficients.
    result + x.ln()
        - 0.5 * inv
        - inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 * (1.0 / 252.0 - inv2 * (1.0 / 240.0))))
}

/// Natural log of the beta function B(a, b).
pub fn ln_beta(a: f64, b: f64) -> f64 {
    ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)
}

const GAMMA_EPS: f64 = 1e-15;
const GAMMA_MAX_ITER: usize = 500;

/// Regularized lower incomplete gamma function P(a, x), for `a > 0`, `x ≥ 0`.
pub fn gamma_p(a: f64, x: f64) -> Result<f64> {
    if a <= 0.0 {
        return Err(ProbError::InvalidParameter {
            name: "a",
            reason: format!("must be positive, got {a}"),
        });
    }
    if x < 0.0 {
        return Err(ProbError::InvalidParameter {
            name: "x",
            reason: format!("must be non-negative, got {x}"),
        });
    }
    if exactly_zero(x) {
        return Ok(0.0);
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        Ok(1.0 - gamma_q_contfrac(a, x)?)
    }
}

/// Regularized upper incomplete gamma function Q(a, x) = 1 − P(a, x).
pub fn gamma_q(a: f64, x: f64) -> Result<f64> {
    if a <= 0.0 {
        return Err(ProbError::InvalidParameter {
            name: "a",
            reason: format!("must be positive, got {a}"),
        });
    }
    if x < 0.0 {
        return Err(ProbError::InvalidParameter {
            name: "x",
            reason: format!("must be non-negative, got {x}"),
        });
    }
    if exactly_zero(x) {
        return Ok(1.0);
    }
    if x < a + 1.0 {
        Ok(1.0 - gamma_p_series(a, x)?)
    } else {
        gamma_q_contfrac(a, x)
    }
}

/// Series expansion of P(a, x), convergent for x < a + 1.
fn gamma_p_series(a: f64, x: f64) -> Result<f64> {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..GAMMA_MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * GAMMA_EPS {
            let log_prefix = -x + a * x.ln() - ln_gamma(a);
            return Ok((sum * log_prefix.exp()).clamp(0.0, 1.0));
        }
    }
    Err(ProbError::NoConvergence {
        algorithm: "gamma_p_series",
        iterations: GAMMA_MAX_ITER,
    })
}

/// Continued-fraction (modified Lentz) evaluation of Q(a, x), for x ≥ a + 1.
fn gamma_q_contfrac(a: f64, x: f64) -> Result<f64> {
    const FPMIN: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=GAMMA_MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < GAMMA_EPS {
            let log_prefix = -x + a * x.ln() - ln_gamma(a);
            return Ok((h * log_prefix.exp()).clamp(0.0, 1.0));
        }
    }
    Err(ProbError::NoConvergence {
        algorithm: "gamma_q_contfrac",
        iterations: GAMMA_MAX_ITER,
    })
}

/// Error function, via the regularized incomplete gamma function:
/// `erf(x) = sign(x) · P(1/2, x²)`.
pub fn erf(x: f64) -> f64 {
    if exactly_zero(x) {
        return 0.0;
    }
    let p = gamma_p(0.5, x * x).expect("gamma_p(0.5, x^2) cannot fail for finite x");
    if x > 0.0 {
        p
    } else {
        -p
    }
}

/// Complementary error function `1 − erf(x)`, accurate in the upper tail.
pub fn erfc(x: f64) -> f64 {
    if exactly_zero(x) {
        return 1.0;
    }
    if x > 0.0 {
        gamma_q(0.5, x * x).expect("gamma_q(0.5, x^2) cannot fail for finite x")
    } else {
        2.0 - erfc(-x)
    }
}

/// Standard normal cumulative distribution function Φ(x).
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Standard normal probability density function φ(x).
pub fn std_normal_pdf(x: f64) -> f64 {
    (-(x * x) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Inverse of the standard normal CDF (the probit function).
///
/// Acklam's rational approximation (|rel. err.| < 1.15e-9) refined with one
/// Halley step against [`std_normal_cdf`], giving near machine precision for
/// `p ∈ (0, 1)`. Returns `±∞` at the endpoints.
pub fn std_normal_quantile(p: f64) -> Result<f64> {
    if !(0.0..=1.0).contains(&p) || p.is_nan() {
        return Err(ProbError::InvalidParameter {
            name: "p",
            reason: format!("must lie in [0, 1], got {p}"),
        });
    }
    if exactly_zero(p) {
        return Ok(f64::NEG_INFINITY);
    }
    if exactly_one(p) {
        return Ok(f64::INFINITY);
    }

    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step: x_{n+1} = x_n - f/(f' - f·f''/(2f')) with
    // f = Φ(x) - p.
    let e = std_normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    Ok(x - u / (1.0 + x * u / 2.0))
}

/// Regularized incomplete beta function I_x(a, b), via the continued fraction
/// of Numerical Recipes (Lentz's method).
pub fn beta_inc(a: f64, b: f64, x: f64) -> Result<f64> {
    if a <= 0.0 || b <= 0.0 {
        return Err(ProbError::InvalidParameter {
            name: "a/b",
            reason: format!("must be positive, got a={a}, b={b}"),
        });
    }
    if !(0.0..=1.0).contains(&x) {
        return Err(ProbError::InvalidParameter {
            name: "x",
            reason: format!("must lie in [0, 1], got {x}"),
        });
    }
    if exactly_zero(x) {
        return Ok(0.0);
    }
    if exactly_one(x) {
        return Ok(1.0);
    }
    let ln_front = a * x.ln() + b * (1.0 - x).ln() - ln_beta(a, b);
    // Use the symmetry relation where the continued fraction converges fast.
    if x < (a + 1.0) / (a + b + 2.0) {
        Ok((ln_front.exp() * beta_contfrac(a, b, x)? / a).clamp(0.0, 1.0))
    } else {
        Ok((1.0 - (ln_front.exp() * beta_contfrac(b, a, 1.0 - x)? / b)).clamp(0.0, 1.0))
    }
}

fn beta_contfrac(a: f64, b: f64, x: f64) -> Result<f64> {
    const FPMIN: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=GAMMA_MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < GAMMA_EPS {
            return Ok(h);
        }
    }
    Err(ProbError::NoConvergence {
        algorithm: "beta_contfrac",
        iterations: GAMMA_MAX_ITER,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numerics::approx_eq;

    #[test]
    fn ln_gamma_integer_factorials() {
        // Γ(n) = (n-1)!
        let mut fact = 1.0_f64;
        for n in 1..15 {
            assert!(
                approx_eq(ln_gamma(n as f64), fact.ln(), 1e-12, 1e-12),
                "n={n}"
            );
            fact *= n as f64;
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π
        let sqrt_pi = std::f64::consts::PI.sqrt();
        assert!(approx_eq(ln_gamma(0.5), sqrt_pi.ln(), 1e-12, 0.0));
        // Γ(3/2) = √π / 2
        assert!(approx_eq(ln_gamma(1.5), (sqrt_pi / 2.0).ln(), 1e-12, 1e-13));
    }

    #[test]
    fn ln_gamma_recurrence() {
        // Γ(x+1) = x Γ(x)  ⇒  lnΓ(x+1) = ln x + lnΓ(x)
        for i in 1..200 {
            let x = i as f64 * 0.37;
            assert!(
                approx_eq(ln_gamma(x + 1.0), x.ln() + ln_gamma(x), 1e-11, 1e-11),
                "x={x}"
            );
        }
    }

    #[test]
    fn digamma_known_values() {
        // ψ(1) = -γ (Euler–Mascheroni)
        let euler_gamma = 0.577_215_664_901_532_9;
        assert!(approx_eq(digamma(1.0), -euler_gamma, 1e-10, 1e-12));
        // ψ(1/2) = -γ - 2 ln 2
        assert!(approx_eq(
            digamma(0.5),
            -euler_gamma - 2.0 * 2.0_f64.ln(),
            1e-10,
            1e-12
        ));
    }

    #[test]
    fn digamma_recurrence() {
        // ψ(x+1) = ψ(x) + 1/x
        for i in 1..100 {
            let x = i as f64 * 0.23;
            assert!(
                approx_eq(digamma(x + 1.0), digamma(x) + 1.0 / x, 1e-10, 1e-11),
                "x={x}"
            );
        }
    }

    #[test]
    fn erf_reference_values() {
        // Reference values computed with mpmath to 15 digits.
        let cases = [
            (0.5, 0.520_499_877_813_046_5),
            (1.0, 0.842_700_792_949_714_9),
            (1.5, 0.966_105_146_475_310_7),
            (2.0, 0.995_322_265_018_952_7),
            (3.0, 0.999_977_909_503_001_4),
        ];
        for (x, want) in cases {
            assert!(approx_eq(erf(x), want, 1e-12, 1e-14), "x={x}: {}", erf(x));
            assert!(approx_eq(erf(-x), -want, 1e-12, 1e-14));
        }
    }

    #[test]
    fn erfc_upper_tail_accuracy() {
        // erfc(5) = 1.537459794428035e-12 — catastrophic for 1 - erf.
        assert!(approx_eq(erfc(5.0), 1.537_459_794_428_035e-12, 1e-9, 0.0));
    }

    #[test]
    fn normal_cdf_symmetry_and_known_points() {
        assert!(approx_eq(std_normal_cdf(0.0), 0.5, 1e-14, 0.0));
        // Φ(1.959964) ≈ 0.975
        assert!(approx_eq(
            std_normal_cdf(1.959_963_984_540_054),
            0.975,
            1e-10,
            0.0
        ));
        for i in -40..=40 {
            let x = i as f64 / 10.0;
            assert!(approx_eq(
                std_normal_cdf(x) + std_normal_cdf(-x),
                1.0,
                1e-13,
                1e-14
            ));
        }
    }

    #[test]
    fn figure2_worked_example_probabilities() {
        // The paper's Figure 2: P(yes|group1) = 1 - Φ(0.5) = 0.3085,
        // P(yes|group2) = 1 - Φ(-1.5) = 0.9332.
        assert!(approx_eq(1.0 - std_normal_cdf(0.5), 0.3085, 1e-4, 1e-4));
        assert!(approx_eq(1.0 - std_normal_cdf(-1.5), 0.9332, 1e-4, 1e-4));
    }

    #[test]
    fn quantile_inverts_cdf() {
        for i in 1..999 {
            let p = i as f64 / 1000.0;
            let x = std_normal_quantile(p).unwrap();
            assert!(
                approx_eq(std_normal_cdf(x), p, 1e-12, 1e-13),
                "p={p}, x={x}, cdf={}",
                std_normal_cdf(x)
            );
        }
    }

    #[test]
    fn quantile_extreme_tails() {
        let x = std_normal_quantile(1e-12).unwrap();
        assert!(approx_eq(std_normal_cdf(x), 1e-12, 1e-6, 0.0));
        assert_eq!(std_normal_quantile(0.0).unwrap(), f64::NEG_INFINITY);
        assert_eq!(std_normal_quantile(1.0).unwrap(), f64::INFINITY);
        assert!(std_normal_quantile(-0.1).is_err());
        assert!(std_normal_quantile(1.1).is_err());
    }

    #[test]
    fn gamma_p_q_sum_to_one() {
        for &a in &[0.3, 0.5, 1.0, 2.5, 10.0, 50.0] {
            for &x in &[0.1, 0.5, 1.0, 3.0, 10.0, 60.0] {
                let p = gamma_p(a, x).unwrap();
                let q = gamma_q(a, x).unwrap();
                assert!(approx_eq(p + q, 1.0, 1e-12, 1e-12), "a={a}, x={x}");
            }
        }
    }

    #[test]
    fn gamma_p_exponential_special_case() {
        // P(1, x) = 1 - e^{-x}
        for &x in &[0.1, 1.0, 2.0, 5.0] {
            assert!(approx_eq(
                gamma_p(1.0, x).unwrap(),
                1.0 - (-x).exp(),
                1e-12,
                1e-14
            ));
        }
    }

    #[test]
    fn gamma_domain_errors() {
        assert!(gamma_p(0.0, 1.0).is_err());
        assert!(gamma_p(-1.0, 1.0).is_err());
        assert!(gamma_p(1.0, -0.5).is_err());
    }

    #[test]
    fn beta_inc_uniform_special_case() {
        // I_x(1, 1) = x
        for i in 0..=10 {
            let x = i as f64 / 10.0;
            assert!(approx_eq(beta_inc(1.0, 1.0, x).unwrap(), x, 1e-12, 1e-14));
        }
    }

    #[test]
    fn beta_inc_symmetry() {
        // I_x(a, b) = 1 − I_{1−x}(b, a)
        for &(a, b) in &[(2.0, 3.0), (0.5, 0.5), (5.0, 1.5)] {
            for i in 1..10 {
                let x = i as f64 / 10.0;
                let lhs = beta_inc(a, b, x).unwrap();
                let rhs = 1.0 - beta_inc(b, a, 1.0 - x).unwrap();
                assert!(approx_eq(lhs, rhs, 1e-11, 1e-12), "a={a} b={b} x={x}");
            }
        }
    }

    #[test]
    fn beta_inc_binomial_identity() {
        // Binomial CDF identity: P(X ≤ k) = I_{1-p}(n-k, k+1), X~Bin(n,p).
        // n = 5, p = 0.3, k = 2: sum directly.
        let n = 5u32;
        let p: f64 = 0.3;
        let k = 2u32;
        let direct: f64 = (0..=k)
            .map(|i| {
                let comb = (ln_gamma(n as f64 + 1.0)
                    - ln_gamma(i as f64 + 1.0)
                    - ln_gamma((n - i) as f64 + 1.0))
                .exp();
                comb * p.powi(i as i32) * (1.0 - p).powi((n - i) as i32)
            })
            .sum();
        let via_beta = beta_inc((n - k) as f64, k as f64 + 1.0, 1.0 - p).unwrap();
        assert!(approx_eq(direct, via_beta, 1e-11, 1e-12));
    }
}
