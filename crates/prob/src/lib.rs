//! # df-prob — probability and statistics substrate
//!
//! From-scratch numerical building blocks used throughout the
//! differential-fairness workspace:
//!
//! - [`numerics`]: numerically stable primitives (log-sum-exp, Kahan
//!   summation, safe log-ratios).
//! - [`special`]: special functions (error function, inverse normal CDF,
//!   log-gamma, digamma, incomplete gamma/beta).
//! - [`rng`]: deterministic, seedable random-number generators (PCG32,
//!   SplitMix64) implementing [`rand::RngCore`].
//! - [`dist`]: probability distributions (Normal, Bernoulli, Categorical with
//!   alias-method sampling, Gamma, Dirichlet, Beta, Binomial).
//! - [`contingency`]: N-dimensional contingency tables with marginalization
//!   and conditioning — the data structure behind empirical differential
//!   fairness.
//! - [`ipf`]: iterative proportional fitting for calibrating joint tables to
//!   target marginals.
//! - [`estimate`]: categorical MLE and Dirichlet-multinomial posterior
//!   estimators (the smoothing model of Eq. 7 in the paper).
//! - [`mcmc`]: posterior samplers and chain diagnostics used to build the
//!   distribution class Θ from data.
//! - [`partial`]: mergeable partial counts — the commutative monoid behind
//!   sharded/streaming tallying of joint counts.
//! - [`summary`]: streaming moments and quantiles.
//!
//! The crate is `no_unsafe` by policy and deterministic by construction: all
//! stochastic components take explicit generators seeded by the caller.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod contingency;
pub mod dist;
pub mod error;
pub mod estimate;
pub mod ipf;
pub mod mcmc;
pub mod numerics;
pub mod partial;
pub mod rng;
pub mod special;
pub mod summary;

pub use contingency::ContingencyTable;
pub use error::{ProbError, Result};
pub use partial::{PartialCounts, Tally};
pub use rng::{DfRng, Pcg32, SplitMix64};
