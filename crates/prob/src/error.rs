//! Error type shared by the probability substrate.

use std::fmt;

/// Errors produced by the probability substrate.
///
/// All constructors carry enough context to diagnose the failing call without
/// a debugger; the crate never panics on user input.
#[derive(Debug, Clone, PartialEq)]
pub enum ProbError {
    /// A parameter was outside its mathematical domain
    /// (e.g. a negative standard deviation).
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// Two shapes that must agree did not (e.g. axis/label count mismatch).
    ShapeMismatch {
        /// What was being matched.
        context: &'static str,
        /// Expected extent.
        expected: usize,
        /// Actual extent.
        actual: usize,
    },
    /// An axis name was not found in a contingency table.
    UnknownAxis(String),
    /// A category label was not found on an axis.
    UnknownLabel {
        /// Axis that was searched.
        axis: String,
        /// Label that was missing.
        label: String,
    },
    /// An operation requiring positive mass encountered an all-zero table.
    EmptyTable(&'static str),
    /// An iterative algorithm failed to converge.
    NoConvergence {
        /// Algorithm name.
        algorithm: &'static str,
        /// Iterations performed before giving up.
        iterations: usize,
    },
}

impl fmt::Display for ProbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProbError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            ProbError::ShapeMismatch {
                context,
                expected,
                actual,
            } => write!(
                f,
                "shape mismatch in {context}: expected {expected}, got {actual}"
            ),
            ProbError::UnknownAxis(name) => write!(f, "unknown axis `{name}`"),
            ProbError::UnknownLabel { axis, label } => {
                write!(f, "unknown label `{label}` on axis `{axis}`")
            }
            ProbError::EmptyTable(context) => {
                write!(
                    f,
                    "operation `{context}` requires a table with positive total mass"
                )
            }
            ProbError::NoConvergence {
                algorithm,
                iterations,
            } => write!(
                f,
                "{algorithm} failed to converge after {iterations} iterations"
            ),
        }
    }
}

impl std::error::Error for ProbError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, ProbError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ProbError::InvalidParameter {
            name: "sigma",
            reason: "must be positive, got -1".into(),
        };
        assert!(e.to_string().contains("sigma"));
        assert!(e.to_string().contains("-1"));

        let e = ProbError::UnknownLabel {
            axis: "race".into(),
            label: "Martian".into(),
        };
        assert!(e.to_string().contains("race"));
        assert!(e.to_string().contains("Martian"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ProbError>();
    }
}
