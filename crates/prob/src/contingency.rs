//! N-dimensional contingency tables.
//!
//! A [`ContingencyTable`] stores a dense array of non-negative cell values
//! (counts or probability mass) indexed by named categorical axes. It is the
//! backbone of empirical differential fairness: the joint counts
//! `N[y, s₁, …, s_p]` live in one of these, and the per-subset ε computation
//! marginalizes it.
//!
//! Layout is row-major with precomputed strides; the hot loops index by
//! integer code (no hashing), following the perf-book guidance for hot data
//! structures.

use crate::error::{ProbError, Result};
use crate::numerics::{exactly_zero, stable_sum};

/// One categorical axis of a table: a name plus an ordered label vocabulary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Axis {
    name: String,
    labels: Vec<String>,
}

impl Axis {
    /// Creates an axis; needs at least one label and unique label names.
    pub fn new(name: impl Into<String>, labels: Vec<String>) -> Result<Self> {
        let name = name.into();
        if labels.is_empty() {
            return Err(ProbError::InvalidParameter {
                name: "labels",
                reason: format!("axis `{name}` needs at least one label"),
            });
        }
        for (i, l) in labels.iter().enumerate() {
            if labels[..i].contains(l) {
                return Err(ProbError::InvalidParameter {
                    name: "labels",
                    reason: format!("axis `{name}` has duplicate label `{l}`"),
                });
            }
        }
        Ok(Self { name, labels })
    }

    /// Convenience constructor from string slices.
    pub fn from_strs(name: &str, labels: &[&str]) -> Result<Self> {
        Self::new(name, labels.iter().map(|s| s.to_string()).collect())
    }

    /// Axis name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Ordered labels.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Always false (an axis has ≥ 1 label by construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Index of a label, if present.
    pub fn index_of(&self, label: &str) -> Option<usize> {
        self.labels.iter().position(|l| l == label)
    }
}

/// Dense N-dimensional table of non-negative `f64` cell values.
#[derive(Debug, Clone, PartialEq)]
pub struct ContingencyTable {
    axes: Vec<Axis>,
    strides: Vec<usize>,
    data: Vec<f64>,
}

impl ContingencyTable {
    /// Creates a zero-filled table over the given axes.
    pub fn zeros(axes: Vec<Axis>) -> Result<Self> {
        if axes.is_empty() {
            return Err(ProbError::InvalidParameter {
                name: "axes",
                reason: "a table needs at least one axis".into(),
            });
        }
        for (i, a) in axes.iter().enumerate() {
            if axes[..i].iter().any(|b| b.name == a.name) {
                return Err(ProbError::InvalidParameter {
                    name: "axes",
                    reason: format!("duplicate axis name `{}`", a.name),
                });
            }
        }
        let mut strides = vec![0usize; axes.len()];
        let mut acc = 1usize;
        for (i, axis) in axes.iter().enumerate().rev() {
            strides[i] = acc;
            acc = acc
                .checked_mul(axis.len())
                .ok_or_else(|| ProbError::InvalidParameter {
                    name: "axes",
                    reason: "table size overflows usize".into(),
                })?;
        }
        Ok(Self {
            axes,
            strides,
            data: vec![0.0; acc],
        })
    }

    /// Creates a table from axes and a row-major data vector.
    pub fn from_data(axes: Vec<Axis>, data: Vec<f64>) -> Result<Self> {
        let mut t = Self::zeros(axes)?;
        if data.len() != t.data.len() {
            return Err(ProbError::ShapeMismatch {
                context: "ContingencyTable::from_data",
                expected: t.data.len(),
                actual: data.len(),
            });
        }
        if data.iter().any(|&v| !v.is_finite() || v < 0.0) {
            return Err(ProbError::InvalidParameter {
                name: "data",
                reason: "cell values must be finite and non-negative".into(),
            });
        }
        t.data = data;
        Ok(t)
    }

    /// The table's axes, in storage order.
    pub fn axes(&self) -> &[Axis] {
        &self.axes
    }

    /// Number of axes.
    pub fn ndim(&self) -> usize {
        self.axes.len()
    }

    /// Shape vector (axis cardinalities).
    pub fn shape(&self) -> Vec<usize> {
        self.axes.iter().map(Axis::len).collect()
    }

    /// Total number of cells.
    pub fn num_cells(&self) -> usize {
        self.data.len()
    }

    /// Raw row-major cell data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Position of the axis with the given name.
    pub fn axis_position(&self, name: &str) -> Result<usize> {
        self.axes
            .iter()
            .position(|a| a.name == name)
            .ok_or_else(|| ProbError::UnknownAxis(name.to_string()))
    }

    /// Flat index of a multi-index (panics on rank mismatch in debug builds;
    /// callers validate ranks at API boundaries).
    #[inline]
    pub fn flat_index(&self, idx: &[usize]) -> usize {
        debug_assert_eq!(idx.len(), self.axes.len());
        let mut flat = 0;
        for (i, &ix) in idx.iter().enumerate() {
            debug_assert!(ix < self.axes[i].len(), "index out of bounds on axis {i}");
            flat += ix * self.strides[i];
        }
        flat
    }

    /// Cell value at a multi-index.
    #[inline]
    pub fn get(&self, idx: &[usize]) -> f64 {
        self.data[self.flat_index(idx)]
    }

    /// Sets a cell.
    pub fn set(&mut self, idx: &[usize], value: f64) -> Result<()> {
        if !(value.is_finite() && value >= 0.0) {
            return Err(ProbError::InvalidParameter {
                name: "value",
                reason: format!("cell values must be finite and non-negative, got {value}"),
            });
        }
        let flat = self.flat_index(idx);
        self.data[flat] = value;
        Ok(())
    }

    /// Adds `weight` to a cell (used when tallying records).
    pub fn add(&mut self, idx: &[usize], weight: f64) {
        let flat = self.flat_index(idx);
        self.data[flat] += weight;
    }

    /// Adds 1 to a cell.
    pub fn increment(&mut self, idx: &[usize]) {
        self.add(idx, 1.0);
    }

    /// Bulk-tallies a batch of coded records laid out column-major: one
    /// code slice per axis, all of equal length, each code indexing that
    /// axis's labels. Every record gets weight 1.
    ///
    /// This is the streaming hot path. It runs columnar on purpose — one
    /// multiply-add sweep per axis accumulating flat indices, then one
    /// scatter pass — which the compiler vectorizes, unlike the per-row
    /// `increment` loop that re-derives the stride arithmetic (and its
    /// bounds checks) for every record.
    pub fn tally_codes(&mut self, columns: &[&[u32]]) -> Result<()> {
        if columns.len() != self.axes.len() {
            return Err(ProbError::ShapeMismatch {
                context: "tally_codes: one code column per axis",
                expected: self.axes.len(),
                actual: columns.len(),
            });
        }
        // Code-range validation as a dedicated max-reduction per column —
        // a branchless sweep the compiler turns into SIMD max, unlike a
        // running max folded into the accumulation arithmetic (which blocks
        // vectorization of the hot loops).
        for (col, axis) in columns.iter().zip(&self.axes) {
            let max_code = col.iter().copied().max().unwrap_or(0);
            if max_code as usize >= axis.len() {
                return Err(ProbError::InvalidParameter {
                    name: "columns",
                    reason: format!(
                        "code {max_code} out of range for axis `{}` ({} labels)",
                        axis.name(),
                        axis.len()
                    ),
                });
            }
        }
        self.tally_codes_trusted(columns)
    }

    /// [`ContingencyTable::tally_codes`] without the per-code range scan —
    /// for callers whose codes are in-range *by construction* (e.g. a
    /// column interned against the very vocabulary the axis was built
    /// from), where re-reading every code just to validate it would double
    /// the memory traffic of the hot path.
    ///
    /// Shape requirements (one column per axis, equal lengths) are still
    /// checked. A contract violation — a code not indexing its axis — is
    /// memory-safe but may tally a wrong cell or panic on a slice bounds
    /// check; it is never undefined behavior.
    pub fn tally_codes_trusted(&mut self, columns: &[&[u32]]) -> Result<()> {
        if columns.len() != self.axes.len() {
            return Err(ProbError::ShapeMismatch {
                context: "tally_codes: one code column per axis",
                expected: self.axes.len(),
                actual: columns.len(),
            });
        }
        let n = columns[0].len();
        for col in columns {
            if col.len() != n {
                return Err(ProbError::ShapeMismatch {
                    context: "tally_codes: column lengths",
                    expected: n,
                    actual: col.len(),
                });
            }
        }
        debug_assert!(columns
            .iter()
            .zip(&self.axes)
            .all(|(col, axis)| col.iter().all(|&c| (c as usize) < axis.len())));
        // Columnar flat-index accumulation, flat[r] = Σ_k codes[k][r]·stride[k],
        // with axes processed in fused *pairs* to halve the sweeps over the
        // flat-index buffer.
        let ndim = self.axes.len();
        let mut flats: Vec<usize> = Vec::with_capacity(n);
        if ndim >= 2 {
            let (s0, s1) = (self.strides[0], self.strides[1]);
            flats.extend(
                columns[0]
                    .iter()
                    .zip(columns[1])
                    .map(|(&a, &b)| a as usize * s0 + b as usize * s1),
            );
        } else {
            let stride = self.strides[0];
            flats.extend(columns[0].iter().map(|&a| a as usize * stride));
        }
        let mut k = 2;
        while k < ndim {
            if k + 1 < ndim {
                let (sa, sb) = (self.strides[k], self.strides[k + 1]);
                for (flat, (&a, &b)) in flats.iter_mut().zip(columns[k].iter().zip(columns[k + 1]))
                {
                    *flat += a as usize * sa + b as usize * sb;
                }
                k += 2;
            } else {
                let stride = self.strides[k];
                for (flat, &a) in flats.iter_mut().zip(columns[k]) {
                    *flat += a as usize * stride;
                }
                k += 1;
            }
        }
        for &flat in &flats {
            self.data[flat] += 1.0;
        }
        Ok(())
    }

    /// Looks up label indices by name and increments the matching cell.
    pub fn increment_by_labels(&mut self, labels: &[&str]) -> Result<()> {
        if labels.len() != self.axes.len() {
            return Err(ProbError::ShapeMismatch {
                context: "increment_by_labels",
                expected: self.axes.len(),
                actual: labels.len(),
            });
        }
        let mut idx = Vec::with_capacity(labels.len());
        for (axis, &label) in self.axes.iter().zip(labels) {
            let i = axis
                .index_of(label)
                .ok_or_else(|| ProbError::UnknownLabel {
                    axis: axis.name.clone(),
                    label: label.to_string(),
                })?;
            idx.push(i);
        }
        self.increment(&idx);
        Ok(())
    }

    /// Total mass in the table (compensated sum).
    pub fn total(&self) -> f64 {
        stable_sum(&self.data)
    }

    /// Returns a copy normalized to sum to 1. Fails on an all-zero table.
    pub fn to_probabilities(&self) -> Result<ContingencyTable> {
        let total = self.total();
        if total <= 0.0 {
            return Err(ProbError::EmptyTable("to_probabilities"));
        }
        let mut out = self.clone();
        for v in &mut out.data {
            *v /= total;
        }
        Ok(out)
    }

    /// Sums out every axis *not* named in `keep`, preserving the order in
    /// which the kept axes appear in `keep`.
    ///
    /// This is probability-weighted marginalization: when the table holds the
    /// joint mass `P(y, s)`, marginalizing to `(y, D)` yields
    /// `P(y, D) = Σ_E P(y, D, E)` — exactly the quantity in the Theorem 3.2
    /// proof.
    pub fn marginalize(&self, keep: &[&str]) -> Result<ContingencyTable> {
        if keep.is_empty() {
            return Err(ProbError::InvalidParameter {
                name: "keep",
                reason: "must keep at least one axis".into(),
            });
        }
        let keep_pos: Vec<usize> = keep
            .iter()
            .map(|name| self.axis_position(name))
            .collect::<Result<_>>()?;
        for (i, p) in keep_pos.iter().enumerate() {
            if keep_pos[..i].contains(p) {
                return Err(ProbError::InvalidParameter {
                    name: "keep",
                    reason: format!("axis `{}` listed twice", keep[i]),
                });
            }
        }
        let out_axes: Vec<Axis> = keep_pos.iter().map(|&p| self.axes[p].clone()).collect();
        let mut out = ContingencyTable::zeros(out_axes)?;

        // Walk every source cell once, accumulating into the projected index.
        let mut src_idx = vec![0usize; self.axes.len()];
        let mut out_idx = vec![0usize; keep_pos.len()];
        for (flat, &v) in self.data.iter().enumerate() {
            if !exactly_zero(v) {
                self.unflatten(flat, &mut src_idx);
                for (o, &p) in out_idx.iter_mut().zip(&keep_pos) {
                    *o = src_idx[p];
                }
                out.add(&out_idx, v);
            }
        }
        Ok(out)
    }

    /// Fixes one axis at a label, returning the slice over the remaining
    /// axes. Fails if the table has only one axis.
    pub fn condition(&self, axis: &str, label: &str) -> Result<ContingencyTable> {
        if self.axes.len() < 2 {
            return Err(ProbError::InvalidParameter {
                name: "axis",
                reason: "cannot condition the only axis of a table".into(),
            });
        }
        let pos = self.axis_position(axis)?;
        let lab = self.axes[pos]
            .index_of(label)
            .ok_or_else(|| ProbError::UnknownLabel {
                axis: axis.to_string(),
                label: label.to_string(),
            })?;
        let out_axes: Vec<Axis> = self
            .axes
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != pos)
            .map(|(_, a)| a.clone())
            .collect();
        let mut out = ContingencyTable::zeros(out_axes)?;
        let mut src_idx = vec![0usize; self.axes.len()];
        let mut out_idx = vec![0usize; self.axes.len() - 1];
        for (flat, &v) in self.data.iter().enumerate() {
            self.unflatten(flat, &mut src_idx);
            if src_idx[pos] != lab {
                continue;
            }
            let mut j = 0;
            for (i, &ix) in src_idx.iter().enumerate() {
                if i != pos {
                    out_idx[j] = ix;
                    j += 1;
                }
            }
            out.add(&out_idx, v);
        }
        Ok(out)
    }

    /// Iterates `(multi_index, value)` over all cells.
    pub fn iter_cells(&self) -> impl Iterator<Item = (Vec<usize>, f64)> + '_ {
        let ndim = self.axes.len();
        self.data.iter().enumerate().map(move |(flat, &v)| {
            let mut idx = vec![0usize; ndim];
            self.unflatten(flat, &mut idx);
            (idx, v)
        })
    }

    /// Decodes a flat index into `idx` (len must equal `ndim`).
    #[inline]
    pub fn unflatten(&self, mut flat: usize, idx: &mut [usize]) {
        for (i, &stride) in self.strides.iter().enumerate() {
            idx[i] = flat / stride;
            flat %= stride;
        }
    }

    /// Element-wise scales the table by `factor ≥ 0`.
    pub fn scale(&mut self, factor: f64) -> Result<()> {
        if !(factor.is_finite() && factor >= 0.0) {
            return Err(ProbError::InvalidParameter {
                name: "factor",
                reason: format!("must be finite and non-negative, got {factor}"),
            });
        }
        for v in &mut self.data {
            *v *= factor;
        }
        Ok(())
    }

    /// Cell-wise adds another table into this one. Both tables must have
    /// identical axes (same names, same label order); errors otherwise.
    ///
    /// This is the merge step of the sharded counting monoid (see
    /// [`crate::partial`]): counts are additive, so per-shard tables sum to
    /// exactly the table a single-pass tally would have produced.
    pub fn merge_from(&mut self, other: &ContingencyTable) -> Result<()> {
        if self.axes != other.axes {
            return Err(ProbError::InvalidParameter {
                name: "other",
                reason: "cannot merge tables with different axes".into(),
            });
        }
        for (dst, &src) in self.data.iter_mut().zip(&other.data) {
            *dst += src;
        }
        Ok(())
    }

    /// Cell-wise subtracts another table from this one — the exact inverse
    /// of [`ContingencyTable::merge_from`] on integer tallies (integers up
    /// to 2⁵³ are exact in `f64`, so merge-then-subtract restores the
    /// original table bit for bit).
    ///
    /// Both tables must have identical axes, and every cell of `other` must
    /// be at most the matching cell of `self`: counts can only be removed
    /// if they were previously added, so a subtraction that would drive any
    /// cell negative is rejected *before* any cell is modified (`self` is
    /// left untouched on error). This non-negativity invariant is what lets
    /// the sliding-window monitor in df-core evict expired buckets without
    /// ever materializing a negative "count".
    pub fn subtract_from(&mut self, other: &ContingencyTable) -> Result<()> {
        if self.axes != other.axes {
            return Err(ProbError::InvalidParameter {
                name: "other",
                reason: "cannot subtract tables with different axes".into(),
            });
        }
        // Identical axes imply identical shape, so the data twin's length
        // check cannot fire.
        self.subtract_data(&other.data)
    }

    /// [`ContingencyTable::subtract_from`] against raw row-major cell
    /// data — the allocation-free twin for hot loops that keep expired
    /// bucket *data* around rather than whole tables (the sliding-window
    /// monitor's ring). Same contract: length must match, and no cell may
    /// go negative (checked before any mutation).
    pub fn subtract_data(&mut self, cells: &[f64]) -> Result<()> {
        if cells.len() != self.data.len() {
            return Err(ProbError::ShapeMismatch {
                context: "subtract_data",
                expected: self.data.len(),
                actual: cells.len(),
            });
        }
        if let Some(cell) = self
            .data
            .iter()
            .zip(cells)
            .position(|(have, take)| take > have)
        {
            return Err(ProbError::InvalidParameter {
                name: "cells",
                reason: format!(
                    "subtraction would drive cell {cell} negative ({} - {})",
                    self.data[cell], cells[cell]
                ),
            });
        }
        for (dst, &src) in self.data.iter_mut().zip(cells) {
            *dst -= src;
        }
        Ok(())
    }

    /// Resets every cell to zero, keeping the axes — lets hot loops reuse
    /// one scratch table instead of re-allocating axes per batch.
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    /// Folds any number of partial-count shards into one table. All shards
    /// must share identical axes; errors on an empty iterator or a
    /// mismatch.
    pub fn from_partials<I>(partials: I) -> Result<ContingencyTable>
    where
        I: IntoIterator<Item = crate::partial::PartialCounts>,
    {
        let mut iter = partials.into_iter();
        let first = iter.next().ok_or(ProbError::EmptyTable("from_partials"))?;
        let mut table = first.into_table();
        for shard in iter {
            table.merge_from(shard.table())?;
        }
        Ok(table)
    }

    /// Adds `alpha` to every cell (Dirichlet/Laplace smoothing of counts).
    pub fn smooth_additive(&self, alpha: f64) -> Result<ContingencyTable> {
        if !(alpha.is_finite() && alpha >= 0.0) {
            return Err(ProbError::InvalidParameter {
                name: "alpha",
                reason: format!("must be finite and non-negative, got {alpha}"),
            });
        }
        let mut out = self.clone();
        for v in &mut out.data {
            *v += alpha;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numerics::approx_eq;

    fn table_2x3() -> ContingencyTable {
        let axes = vec![
            Axis::from_strs("outcome", &["no", "yes"]).unwrap(),
            Axis::from_strs("group", &["a", "b", "c"]).unwrap(),
        ];
        ContingencyTable::from_data(axes, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap()
    }

    #[test]
    fn axis_rejects_duplicates_and_empty() {
        assert!(Axis::from_strs("g", &[]).is_err());
        assert!(Axis::from_strs("g", &["x", "x"]).is_err());
    }

    #[test]
    fn zeros_rejects_duplicate_axis_names() {
        let axes = vec![
            Axis::from_strs("g", &["a"]).unwrap(),
            Axis::from_strs("g", &["b"]).unwrap(),
        ];
        assert!(ContingencyTable::zeros(axes).is_err());
    }

    #[test]
    fn from_data_validates_shape_and_values() {
        let axes = vec![Axis::from_strs("g", &["a", "b"]).unwrap()];
        assert!(ContingencyTable::from_data(axes.clone(), vec![1.0]).is_err());
        assert!(ContingencyTable::from_data(axes.clone(), vec![1.0, -1.0]).is_err());
        assert!(ContingencyTable::from_data(axes, vec![1.0, f64::NAN]).is_err());
    }

    #[test]
    fn indexing_is_row_major() {
        let t = table_2x3();
        assert_eq!(t.get(&[0, 0]), 1.0);
        assert_eq!(t.get(&[0, 2]), 3.0);
        assert_eq!(t.get(&[1, 0]), 4.0);
        assert_eq!(t.get(&[1, 2]), 6.0);
    }

    #[test]
    fn unflatten_roundtrip() {
        let t = table_2x3();
        let mut idx = vec![0usize; 2];
        for flat in 0..t.num_cells() {
            t.unflatten(flat, &mut idx);
            assert_eq!(t.flat_index(&idx), flat);
        }
    }

    #[test]
    fn total_and_normalize() {
        let t = table_2x3();
        assert!(approx_eq(t.total(), 21.0, 1e-14, 0.0));
        let p = t.to_probabilities().unwrap();
        assert!(approx_eq(p.total(), 1.0, 1e-14, 0.0));
        assert!(approx_eq(p.get(&[1, 2]), 6.0 / 21.0, 1e-14, 0.0));
    }

    #[test]
    fn normalize_empty_fails() {
        let axes = vec![Axis::from_strs("g", &["a", "b"]).unwrap()];
        let t = ContingencyTable::zeros(axes).unwrap();
        assert!(matches!(
            t.to_probabilities(),
            Err(ProbError::EmptyTable(_))
        ));
    }

    #[test]
    fn marginalize_sums_out_axes() {
        let t = table_2x3();
        let m = t.marginalize(&["outcome"]).unwrap();
        assert_eq!(m.ndim(), 1);
        assert!(approx_eq(m.get(&[0]), 6.0, 1e-14, 0.0)); // 1+2+3
        assert!(approx_eq(m.get(&[1]), 15.0, 1e-14, 0.0)); // 4+5+6

        let g = t.marginalize(&["group"]).unwrap();
        assert!(approx_eq(g.get(&[0]), 5.0, 1e-14, 0.0)); // 1+4
        assert!(approx_eq(g.get(&[1]), 7.0, 1e-14, 0.0));
        assert!(approx_eq(g.get(&[2]), 9.0, 1e-14, 0.0));
    }

    #[test]
    fn marginalize_preserves_total() {
        let t = table_2x3();
        for keep in [&["outcome"][..], &["group"][..], &["outcome", "group"][..]] {
            let m = t.marginalize(keep).unwrap();
            assert!(approx_eq(m.total(), t.total(), 1e-12, 0.0));
        }
    }

    #[test]
    fn marginalize_reorders_axes() {
        let t = table_2x3();
        let m = t.marginalize(&["group", "outcome"]).unwrap();
        assert_eq!(m.axes()[0].name(), "group");
        assert_eq!(m.axes()[1].name(), "outcome");
        assert_eq!(m.get(&[2, 1]), t.get(&[1, 2]));
    }

    #[test]
    fn marginalize_errors() {
        let t = table_2x3();
        assert!(t.marginalize(&[]).is_err());
        assert!(t.marginalize(&["nope"]).is_err());
        assert!(t.marginalize(&["group", "group"]).is_err());
    }

    #[test]
    fn condition_slices_correctly() {
        let t = table_2x3();
        let c = t.condition("group", "b").unwrap();
        assert_eq!(c.ndim(), 1);
        assert_eq!(c.get(&[0]), 2.0);
        assert_eq!(c.get(&[1]), 5.0);

        let c = t.condition("outcome", "yes").unwrap();
        assert_eq!(c.get(&[0]), 4.0);
        assert_eq!(c.get(&[2]), 6.0);
    }

    #[test]
    fn condition_errors() {
        let t = table_2x3();
        assert!(t.condition("group", "zzz").is_err());
        assert!(t.condition("nope", "a").is_err());
        let one_axis = t.marginalize(&["group"]).unwrap();
        assert!(one_axis.condition("group", "a").is_err());
    }

    #[test]
    fn increment_by_labels_tallies_records() {
        let axes = vec![
            Axis::from_strs("outcome", &["no", "yes"]).unwrap(),
            Axis::from_strs("gender", &["f", "m"]).unwrap(),
        ];
        let mut t = ContingencyTable::zeros(axes).unwrap();
        t.increment_by_labels(&["yes", "f"]).unwrap();
        t.increment_by_labels(&["yes", "f"]).unwrap();
        t.increment_by_labels(&["no", "m"]).unwrap();
        assert_eq!(t.get(&[1, 0]), 2.0);
        assert_eq!(t.get(&[0, 1]), 1.0);
        assert!(t.increment_by_labels(&["yes"]).is_err());
        assert!(t.increment_by_labels(&["yes", "x"]).is_err());
    }

    #[test]
    fn tally_codes_matches_per_row_increments() {
        // Three axes of arities 2, 3, 2 — exercises the fused-pair sweep
        // plus the trailing odd column.
        let axes = vec![
            Axis::from_strs("y", &["0", "1"]).unwrap(),
            Axis::from_strs("a", &["p", "q", "r"]).unwrap(),
            Axis::from_strs("b", &["x", "z"]).unwrap(),
        ];
        let cols: [Vec<u32>; 3] = [
            vec![0, 1, 1, 0, 1, 0, 0],
            vec![2, 0, 1, 1, 2, 0, 2],
            vec![1, 1, 0, 0, 1, 0, 1],
        ];
        let mut bulk = ContingencyTable::zeros(axes.clone()).unwrap();
        bulk.tally_codes(&[&cols[0], &cols[1], &cols[2]]).unwrap();
        let mut slow = ContingencyTable::zeros(axes).unwrap();
        for ((&y, &a), &b) in cols[0].iter().zip(&cols[1]).zip(&cols[2]) {
            slow.increment(&[y as usize, a as usize, b as usize]);
        }
        assert_eq!(bulk, slow);
        assert_eq!(bulk.total(), 7.0);
        // The trusted path produces the same table on in-contract input.
        let mut trusted = ContingencyTable::zeros(bulk.axes().to_vec()).unwrap();
        trusted
            .tally_codes_trusted(&[&cols[0], &cols[1], &cols[2]])
            .unwrap();
        assert_eq!(trusted, slow);
    }

    #[test]
    fn tally_codes_validates() {
        let axes = vec![
            Axis::from_strs("y", &["0", "1"]).unwrap(),
            Axis::from_strs("g", &["a", "b"]).unwrap(),
        ];
        let mut t = ContingencyTable::zeros(axes).unwrap();
        // Wrong column count.
        assert!(t.tally_codes(&[&[0, 1][..]]).is_err());
        assert!(t.tally_codes_trusted(&[&[0, 1][..]]).is_err());
        // Mismatched lengths.
        assert!(t.tally_codes(&[&[0, 1][..], &[0][..]]).is_err());
        assert!(t.tally_codes_trusted(&[&[0, 1][..], &[0][..]]).is_err());
        // Out-of-range code caught by the validated path before any cell
        // is touched.
        assert!(t.tally_codes(&[&[0, 2][..], &[0, 1][..]]).is_err());
        assert_eq!(t.total(), 0.0);
        // Single-axis table takes the non-paired init path.
        let mut one =
            ContingencyTable::zeros(vec![Axis::from_strs("y", &["0", "1", "2"]).unwrap()]).unwrap();
        one.tally_codes(&[&[2, 2, 0][..]]).unwrap();
        assert_eq!(one.get(&[2]), 2.0);
        // Empty batch is a no-op.
        one.tally_codes(&[&[][..]]).unwrap();
        assert_eq!(one.total(), 3.0);
    }

    #[test]
    fn merge_from_adds_cellwise_and_validates_axes() {
        let mut a = table_2x3();
        let b = table_2x3();
        a.merge_from(&b).unwrap();
        assert!(approx_eq(a.total(), 42.0, 1e-14, 0.0));
        assert_eq!(a.get(&[1, 2]), 12.0);
        let other = ContingencyTable::zeros(vec![
            Axis::from_strs("outcome", &["no", "yes"]).unwrap(),
            Axis::from_strs("group", &["a", "b"]).unwrap(),
        ])
        .unwrap();
        assert!(a.merge_from(&other).is_err());
    }

    #[test]
    fn subtract_from_inverts_merge_and_guards_negativity() {
        let mut t = table_2x3();
        let other = table_2x3();
        let mut merged = t.clone();
        merged.merge_from(&other).unwrap();
        merged.subtract_from(&other).unwrap();
        assert_eq!(merged, t, "merge then subtract must be the identity");
        // Subtracting more than a cell holds is refused, leaving the table
        // untouched.
        let mut bigger = table_2x3();
        bigger.add(&[0, 0], 5.0);
        let before = t.clone();
        assert!(matches!(
            t.subtract_from(&bigger),
            Err(ProbError::InvalidParameter { .. })
        ));
        assert_eq!(t, before);
        // Axis mismatch is refused.
        let other = ContingencyTable::zeros(vec![
            Axis::from_strs("outcome", &["no", "yes"]).unwrap(),
            Axis::from_strs("group", &["a", "b"]).unwrap(),
        ])
        .unwrap();
        assert!(t.subtract_from(&other).is_err());
        // The data twin agrees with the table form and validates shape.
        let mut a = table_2x3();
        let cells: Vec<f64> = table_2x3().data().to_vec();
        let mut b = a.clone();
        b.merge_from(&table_2x3()).unwrap();
        b.subtract_data(&cells).unwrap();
        assert_eq!(b, a);
        assert!(a.subtract_data(&[1.0]).is_err());
        let too_big = vec![100.0; 6];
        let before = a.clone();
        assert!(a.subtract_data(&too_big).is_err());
        assert_eq!(a, before);
        // clear() zeroes cells, keeps axes.
        a.clear();
        assert_eq!(a.total(), 0.0);
        assert_eq!(a.axes(), before.axes());
    }

    #[test]
    fn from_partials_folds_shards() {
        use crate::partial::PartialCounts;
        let axes = || {
            vec![
                Axis::from_strs("y", &["0", "1"]).unwrap(),
                Axis::from_strs("g", &["a", "b"]).unwrap(),
            ]
        };
        let mut s1 = PartialCounts::zeros(axes()).unwrap();
        let mut s2 = PartialCounts::zeros(axes()).unwrap();
        s1.record(&[0, 0]);
        s1.record(&[1, 1]);
        s2.record(&[1, 1]);
        let t = ContingencyTable::from_partials(vec![s1, s2]).unwrap();
        assert_eq!(t.get(&[1, 1]), 2.0);
        assert_eq!(t.total(), 3.0);
        assert!(matches!(
            ContingencyTable::from_partials(std::iter::empty()),
            Err(ProbError::EmptyTable(_))
        ));
    }

    #[test]
    fn smoothing_adds_alpha_everywhere() {
        let t = table_2x3();
        let s = t.smooth_additive(0.5).unwrap();
        assert!(approx_eq(s.total(), 21.0 + 0.5 * 6.0, 1e-12, 0.0));
        assert!(t.smooth_additive(-1.0).is_err());
    }

    #[test]
    fn three_dimensional_marginalization() {
        // Build P(y, g, r) and check P(y, g) against hand computation.
        let axes = vec![
            Axis::from_strs("y", &["0", "1"]).unwrap(),
            Axis::from_strs("g", &["a", "b"]).unwrap(),
            Axis::from_strs("r", &["x", "y", "z"]).unwrap(),
        ];
        let data: Vec<f64> = (1..=12).map(|v| v as f64).collect();
        let t = ContingencyTable::from_data(axes, data).unwrap();
        let m = t.marginalize(&["y", "g"]).unwrap();
        // y=0,g=a: cells 1,2,3 → 6; y=1,g=b: cells 10,11,12 → 33.
        assert!(approx_eq(m.get(&[0, 0]), 6.0, 1e-14, 0.0));
        assert!(approx_eq(m.get(&[1, 1]), 33.0, 1e-14, 0.0));
    }
}
