//! Estimators for categorical outcome probabilities.
//!
//! The paper's empirical differential fairness (Eq. 6) plugs in the MLE
//! `N_{y,s} / N_s`; its smoothed variant (Eq. 7) uses the posterior
//! predictive of a symmetric Dirichlet prior,
//! `(N_{y,s} + α) / (N_s + |Y|α)`. Both are provided here, over raw count
//! slices, so `df-core` can apply them per protected group.

use crate::error::{ProbError, Result};
use crate::numerics::{exactly_zero, stable_sum};

/// Maximum-likelihood estimate of a categorical distribution from counts.
///
/// Returns `None` when the counts are all zero (the group is unobserved, so
/// the conditional distribution is undefined — Definition 3.1 excludes such
/// groups via its `P(s|θ) > 0` side condition).
pub fn categorical_mle(counts: &[f64]) -> Option<Vec<f64>> {
    let total = stable_sum(counts);
    if total <= 0.0 {
        return None;
    }
    Some(counts.iter().map(|&c| c / total).collect())
}

/// Posterior-predictive estimate under a symmetric Dirichlet(α) prior:
/// `(N_k + α) / (N + K α)` — Eq. 7 of the paper.
///
/// With `alpha = 0` this degenerates to the MLE (and inherits its `None`
/// behaviour on empty counts); with `alpha > 0` it is defined even for
/// unobserved groups, where it returns the uniform distribution.
pub fn dirichlet_posterior_predictive(counts: &[f64], alpha: f64) -> Result<Option<Vec<f64>>> {
    if !(alpha.is_finite() && alpha >= 0.0) {
        return Err(ProbError::InvalidParameter {
            name: "alpha",
            reason: format!("must be finite and non-negative, got {alpha}"),
        });
    }
    if counts.is_empty() {
        return Err(ProbError::InvalidParameter {
            name: "counts",
            reason: "must be non-empty".into(),
        });
    }
    if exactly_zero(alpha) {
        return Ok(categorical_mle(counts));
    }
    let k = counts.len() as f64;
    let total = stable_sum(counts);
    Ok(Some(
        counts
            .iter()
            .map(|&c| (c + alpha) / (total + k * alpha))
            .collect(),
    ))
}

/// Dirichlet posterior parameters for counts under a symmetric prior:
/// `Dir(N_1 + α, …, N_K + α)`. Used to draw Θ posterior samples.
pub fn dirichlet_posterior_alpha(counts: &[f64], alpha: f64) -> Result<Vec<f64>> {
    if !(alpha.is_finite() && alpha > 0.0) {
        return Err(ProbError::InvalidParameter {
            name: "alpha",
            reason: format!("posterior sampling needs alpha > 0, got {alpha}"),
        });
    }
    Ok(counts.iter().map(|&c| c + alpha).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numerics::approx_eq;

    #[test]
    fn mle_normalizes_counts() {
        let p = categorical_mle(&[3.0, 1.0]).unwrap();
        assert!(approx_eq(p[0], 0.75, 1e-14, 0.0));
        assert!(approx_eq(p[1], 0.25, 1e-14, 0.0));
    }

    #[test]
    fn mle_undefined_for_empty_group() {
        assert!(categorical_mle(&[0.0, 0.0]).is_none());
    }

    #[test]
    fn posterior_predictive_matches_eq7() {
        // Eq. 7 with N_{y,s}=81, N_s=87, |Y|=2, alpha=1:
        // (81+1)/(87+2) and (6+1)/(87+2).
        let p = dirichlet_posterior_predictive(&[81.0, 6.0], 1.0)
            .unwrap()
            .unwrap();
        assert!(approx_eq(p[0], 82.0 / 89.0, 1e-14, 0.0));
        assert!(approx_eq(p[1], 7.0 / 89.0, 1e-14, 0.0));
    }

    #[test]
    fn posterior_predictive_zero_alpha_is_mle() {
        let a = dirichlet_posterior_predictive(&[5.0, 15.0], 0.0)
            .unwrap()
            .unwrap();
        let b = categorical_mle(&[5.0, 15.0]).unwrap();
        assert_eq!(a, b);
        assert!(dirichlet_posterior_predictive(&[0.0, 0.0], 0.0)
            .unwrap()
            .is_none());
    }

    #[test]
    fn posterior_predictive_uniform_on_empty_group() {
        let p = dirichlet_posterior_predictive(&[0.0, 0.0, 0.0], 2.0)
            .unwrap()
            .unwrap();
        for pi in p {
            assert!(approx_eq(pi, 1.0 / 3.0, 1e-14, 0.0));
        }
    }

    #[test]
    fn posterior_predictive_sums_to_one() {
        let p = dirichlet_posterior_predictive(&[7.0, 2.0, 11.0], 0.5)
            .unwrap()
            .unwrap();
        assert!(approx_eq(p.iter().sum::<f64>(), 1.0, 1e-14, 0.0));
    }

    #[test]
    fn rejects_invalid_alpha() {
        assert!(dirichlet_posterior_predictive(&[1.0], -1.0).is_err());
        assert!(dirichlet_posterior_predictive(&[1.0], f64::NAN).is_err());
        assert!(dirichlet_posterior_predictive(&[], 1.0).is_err());
        assert!(dirichlet_posterior_alpha(&[1.0], 0.0).is_err());
    }

    #[test]
    fn posterior_alpha_shifts_counts() {
        let a = dirichlet_posterior_alpha(&[2.0, 0.0], 0.5).unwrap();
        assert_eq!(a, vec![2.5, 0.5]);
    }
}
