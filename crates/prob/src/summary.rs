//! Streaming summary statistics and quantiles.

use crate::error::{ProbError, Result};

/// Streaming mean/variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Copy, Default)]
pub struct RunningMoments {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningMoments {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (needs ≥ 2 observations, else 0).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observed value.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observed value.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator (parallel reduction; Chan et al.).
    pub fn merge(&mut self, other: &RunningMoments) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for RunningMoments {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut acc = RunningMoments::new();
        for x in iter {
            acc.push(x);
        }
        acc
    }
}

/// Empirical quantile with linear interpolation (type-7, the R default).
///
/// `q` must lie in `[0, 1]`; the input need not be sorted (a sorted copy is
/// made).
pub fn quantile(xs: &[f64], q: f64) -> Result<f64> {
    if xs.is_empty() {
        return Err(ProbError::InvalidParameter {
            name: "xs",
            reason: "quantile of an empty slice".into(),
        });
    }
    if !(0.0..=1.0).contains(&q) || q.is_nan() {
        return Err(ProbError::InvalidParameter {
            name: "q",
            reason: format!("must lie in [0, 1], got {q}"),
        });
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let h = (sorted.len() - 1) as f64 * q;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    Ok(sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo]))
}

/// Equal-tailed interval `[quantile(lo), quantile(hi)]` — used to report
/// credible intervals over posterior ε samples.
pub fn credible_interval(xs: &[f64], mass: f64) -> Result<(f64, f64)> {
    if !(0.0..=1.0).contains(&mass) || mass.is_nan() {
        return Err(ProbError::InvalidParameter {
            name: "mass",
            reason: format!("must lie in [0, 1], got {mass}"),
        });
    }
    let tail = (1.0 - mass) / 2.0;
    Ok((quantile(xs, tail)?, quantile(xs, 1.0 - tail)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numerics::approx_eq;

    #[test]
    fn moments_match_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let acc: RunningMoments = xs.iter().copied().collect();
        assert_eq!(acc.count(), 8);
        assert!(approx_eq(acc.mean(), 5.0, 1e-14, 0.0));
        // Unbiased variance of this classic example is 32/7.
        assert!(approx_eq(acc.variance(), 32.0 / 7.0, 1e-12, 0.0));
        assert_eq!(acc.min(), 2.0);
        assert_eq!(acc.max(), 9.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let all: RunningMoments = xs.iter().copied().collect();
        let mut left: RunningMoments = xs[..37].iter().copied().collect();
        let right: RunningMoments = xs[37..].iter().copied().collect();
        left.merge(&right);
        assert_eq!(left.count(), all.count());
        assert!(approx_eq(left.mean(), all.mean(), 1e-12, 1e-12));
        assert!(approx_eq(left.variance(), all.variance(), 1e-12, 1e-12));
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: RunningMoments = [1.0, 2.0, 3.0].iter().copied().collect();
        let before = a;
        a.merge(&RunningMoments::new());
        assert!(approx_eq(a.mean(), before.mean(), 0.0, 0.0));
        let mut empty = RunningMoments::new();
        empty.merge(&before);
        assert!(approx_eq(empty.mean(), before.mean(), 0.0, 0.0));
    }

    #[test]
    fn quantile_median_and_extremes() {
        let xs = [3.0, 1.0, 2.0];
        assert!(approx_eq(quantile(&xs, 0.5).unwrap(), 2.0, 1e-14, 0.0));
        assert_eq!(quantile(&xs, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&xs, 1.0).unwrap(), 3.0);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [0.0, 10.0];
        assert!(approx_eq(quantile(&xs, 0.25).unwrap(), 2.5, 1e-14, 0.0));
    }

    #[test]
    fn quantile_errors() {
        assert!(quantile(&[], 0.5).is_err());
        assert!(quantile(&[1.0], -0.1).is_err());
        assert!(quantile(&[1.0], 1.1).is_err());
    }

    #[test]
    fn credible_interval_covers_mass() {
        let xs: Vec<f64> = (0..1001).map(|i| i as f64).collect();
        let (lo, hi) = credible_interval(&xs, 0.9).unwrap();
        assert!(approx_eq(lo, 50.0, 1e-12, 0.0));
        assert!(approx_eq(hi, 950.0, 1e-12, 0.0));
    }
}
