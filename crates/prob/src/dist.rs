//! Probability distributions used across the workspace.
//!
//! Each distribution validates its parameters at construction and exposes
//! densities through the [`Continuous`] / [`Discrete`] traits and sampling
//! through [`Sampler`]. All samplers take an explicit [`Pcg32`] so every
//! stochastic component of the workspace stays reproducible.
//!
//! - [`Normal`]: Gaussian with polar (Marsaglia) sampling.
//! - [`Gamma`]: shape/scale with Marsaglia–Tsang sampling.
//! - [`Beta`]: via two Gamma draws.
//! - [`Binomial`]: exact pmf, inversion sampling.
//! - [`Categorical`]: normalized weights with Walker alias-method sampling.
//! - [`Dirichlet`]: normalized independent Gamma draws.

use crate::error::{ProbError, Result};
use crate::numerics::{exactly_one, exactly_zero};
use crate::rng::Pcg32;
use crate::special::{
    beta_inc, gamma_p, ln_beta, ln_gamma, std_normal_cdf, std_normal_pdf, std_normal_quantile,
};

/// Continuous distributions: density and cumulative distribution function.
pub trait Continuous {
    /// Probability density at `x`.
    fn pdf(&self, x: f64) -> f64;
    /// Cumulative probability `P(X ≤ x)`.
    fn cdf(&self, x: f64) -> f64;
}

/// Discrete distributions over non-negative integers.
pub trait Discrete {
    /// Probability mass at `k`.
    fn pmf(&self, k: usize) -> f64;
}

/// Distributions that can be sampled.
pub trait Sampler {
    /// The sample type.
    type Output;

    /// Draws one sample.
    fn sample(&self, rng: &mut Pcg32) -> Self::Output;

    /// Draws `n` samples.
    fn sample_n(&self, rng: &mut Pcg32, n: usize) -> Vec<Self::Output> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

fn require(cond: bool, name: &'static str, reason: &'static str) -> Result<()> {
    if cond {
        Ok(())
    } else {
        Err(ProbError::InvalidParameter {
            name,
            reason: reason.to_string(),
        })
    }
}

// ---------------------------------------------------------------------------
// Normal.
// ---------------------------------------------------------------------------

/// Gaussian distribution `N(mean, sd²)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Normal {
    mean: f64,
    sd: f64,
}

impl Normal {
    /// Creates a Gaussian; `sd` must be positive and finite.
    pub fn new(mean: f64, sd: f64) -> Result<Self> {
        require(mean.is_finite(), "mean", "must be finite")?;
        require(sd.is_finite() && sd > 0.0, "sd", "must be positive")?;
        Ok(Self { mean, sd })
    }

    /// The standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        Self { mean: 0.0, sd: 1.0 }
    }

    /// The mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The standard deviation.
    pub fn sd(&self) -> f64 {
        self.sd
    }

    /// The standard deviation (alias used by score-threshold tooling).
    pub fn std_dev(&self) -> f64 {
        self.sd
    }

    /// The quantile function (inverse CDF); `p` must lie in `(0, 1)`.
    pub fn quantile(&self, p: f64) -> Result<f64> {
        Ok(self.mean + self.sd * std_normal_quantile(p)?)
    }
}

impl Continuous for Normal {
    fn pdf(&self, x: f64) -> f64 {
        std_normal_pdf((x - self.mean) / self.sd) / self.sd
    }

    fn cdf(&self, x: f64) -> f64 {
        std_normal_cdf((x - self.mean) / self.sd)
    }
}

impl Sampler for Normal {
    type Output = f64;

    /// Polar (Marsaglia) method; one of the pair is discarded to keep the
    /// sampler stateless.
    fn sample(&self, rng: &mut Pcg32) -> f64 {
        loop {
            let u = 2.0 * rng.next_f64() - 1.0;
            let v = 2.0 * rng.next_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                return self.mean + self.sd * u * factor;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Gamma.
// ---------------------------------------------------------------------------

/// Gamma distribution with shape `k` and scale `θ`.
#[derive(Debug, Clone, PartialEq)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Creates a Gamma; both parameters must be positive and finite.
    pub fn new(shape: f64, scale: f64) -> Result<Self> {
        require(
            shape.is_finite() && shape > 0.0,
            "shape",
            "must be positive",
        )?;
        require(
            scale.is_finite() && scale > 0.0,
            "scale",
            "must be positive",
        )?;
        Ok(Self { shape, scale })
    }

    /// The mean `kθ`.
    pub fn mean(&self) -> f64 {
        self.shape * self.scale
    }
}

impl Continuous for Gamma {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        if exactly_zero(x) {
            // Density diverges for shape < 1 and is 1/θ at shape = 1; report
            // the right-limit convention used elsewhere in the crate.
            return if self.shape < 1.0 {
                f64::INFINITY
            } else if exactly_one(self.shape) {
                1.0 / self.scale
            } else {
                0.0
            };
        }
        let z = x / self.scale;
        ((self.shape - 1.0) * z.ln() - z - ln_gamma(self.shape)).exp() / self.scale
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            gamma_p(self.shape, x / self.scale).unwrap_or(1.0)
        }
    }
}

impl Sampler for Gamma {
    type Output = f64;

    /// Marsaglia–Tsang squeeze method, with the shape-boost for `k < 1`.
    fn sample(&self, rng: &mut Pcg32) -> f64 {
        let shape = self.shape;
        if shape < 1.0 {
            // Boost: draw Gamma(shape + 1) and scale by U^{1/shape}.
            let boosted = Gamma {
                shape: shape + 1.0,
                scale: self.scale,
            }
            .sample(rng);
            let u: f64 = rng.next_f64().max(f64::MIN_POSITIVE);
            return boosted * u.powf(1.0 / shape);
        }
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        let normal = Normal::standard();
        loop {
            let x = normal.sample(rng);
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u = rng.next_f64();
            if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
                return d * v * self.scale;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Beta.
// ---------------------------------------------------------------------------

/// Beta distribution on `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Beta {
    a: f64,
    b: f64,
}

impl Beta {
    /// Creates a Beta; both shape parameters must be positive and finite.
    pub fn new(a: f64, b: f64) -> Result<Self> {
        require(a.is_finite() && a > 0.0, "a", "must be positive")?;
        require(b.is_finite() && b > 0.0, "b", "must be positive")?;
        Ok(Self { a, b })
    }

    /// The mean `a / (a + b)`.
    pub fn mean(&self) -> f64 {
        self.a / (self.a + self.b)
    }
}

impl Continuous for Beta {
    fn pdf(&self, x: f64) -> f64 {
        if !(0.0..=1.0).contains(&x) {
            return 0.0;
        }
        if (exactly_zero(x) && self.a < 1.0) || (exactly_one(x) && self.b < 1.0) {
            return f64::INFINITY;
        }
        if (exactly_zero(x) && self.a > 1.0) || (exactly_one(x) && self.b > 1.0) {
            return 0.0;
        }
        ((self.a - 1.0) * x.ln() + (self.b - 1.0) * (1.0 - x).ln() - ln_beta(self.a, self.b)).exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else if x >= 1.0 {
            1.0
        } else {
            beta_inc(self.a, self.b, x).unwrap_or(1.0)
        }
    }
}

impl Sampler for Beta {
    type Output = f64;

    fn sample(&self, rng: &mut Pcg32) -> f64 {
        let x = Gamma {
            shape: self.a,
            scale: 1.0,
        }
        .sample(rng);
        let y = Gamma {
            shape: self.b,
            scale: 1.0,
        }
        .sample(rng);
        x / (x + y)
    }
}

// ---------------------------------------------------------------------------
// Binomial.
// ---------------------------------------------------------------------------

/// Binomial distribution `Bin(n, p)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Binomial {
    n: u64,
    p: f64,
}

impl Binomial {
    /// Creates a Binomial; `p` must lie in `[0, 1]`.
    pub fn new(n: u64, p: f64) -> Result<Self> {
        require(
            p.is_finite() && (0.0..=1.0).contains(&p),
            "p",
            "must be in [0, 1]",
        )?;
        Ok(Self { n, p })
    }

    /// The mean `np`.
    pub fn mean(&self) -> f64 {
        self.n as f64 * self.p
    }
}

impl Discrete for Binomial {
    fn pmf(&self, k: usize) -> f64 {
        let n = self.n as f64;
        let k64 = k as u64;
        if k64 > self.n {
            return 0.0;
        }
        if exactly_zero(self.p) {
            return if k == 0 { 1.0 } else { 0.0 };
        }
        if exactly_one(self.p) {
            return if k64 == self.n { 1.0 } else { 0.0 };
        }
        let kf = k as f64;
        let ln_choose = ln_gamma(n + 1.0) - ln_gamma(kf + 1.0) - ln_gamma(n - kf + 1.0);
        (ln_choose + kf * self.p.ln() + (n - kf) * (1.0 - self.p).ln()).exp()
    }
}

impl Sampler for Binomial {
    type Output = u64;

    /// Bernoulli-sum sampling — exact and fast enough for the moderate `n`
    /// used in this workspace.
    fn sample(&self, rng: &mut Pcg32) -> u64 {
        (0..self.n).filter(|_| rng.next_f64() < self.p).count() as u64
    }
}

// ---------------------------------------------------------------------------
// Categorical.
// ---------------------------------------------------------------------------

/// Categorical distribution over `0..k`, normalized from non-negative
/// weights, with Walker alias-method sampling (O(1) per draw).
#[derive(Debug, Clone, PartialEq)]
pub struct Categorical {
    probs: Vec<f64>,
    /// Alias table: per cell, the acceptance threshold and the alias index.
    prob_table: Vec<f64>,
    alias: Vec<usize>,
}

impl Categorical {
    /// Creates a categorical from non-negative weights (at least one must be
    /// positive); weights are normalized internally.
    pub fn new(weights: &[f64]) -> Result<Self> {
        require(!weights.is_empty(), "weights", "must be nonempty")?;
        require(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights",
            "must be finite and non-negative",
        )?;
        let total: f64 = weights.iter().sum();
        require(total > 0.0, "weights", "must have positive total")?;
        let k = weights.len();
        let probs: Vec<f64> = weights.iter().map(|w| w / total).collect();

        // Walker/Vose alias construction.
        let mut prob_table = vec![0.0f64; k];
        let mut alias = vec![0usize; k];
        let scaled: Vec<f64> = probs.iter().map(|p| p * k as f64).collect();
        let mut small: Vec<usize> = (0..k).filter(|&i| scaled[i] < 1.0).collect();
        let mut large: Vec<usize> = (0..k).filter(|&i| scaled[i] >= 1.0).collect();
        let mut scaled = scaled;
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            large.pop();
            prob_table[s] = scaled[s];
            alias[s] = l;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        for &i in small.iter().chain(large.iter()) {
            prob_table[i] = 1.0;
            alias[i] = i;
        }
        Ok(Self {
            probs,
            prob_table,
            alias,
        })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// True when there are no categories (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// The normalized probability vector.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }
}

impl Discrete for Categorical {
    fn pmf(&self, k: usize) -> f64 {
        self.probs.get(k).copied().unwrap_or(0.0)
    }
}

impl Sampler for Categorical {
    type Output = usize;

    fn sample(&self, rng: &mut Pcg32) -> usize {
        let k = self.probs.len();
        let cell = rng.next_below(k as u32) as usize;
        if rng.next_f64() < self.prob_table[cell] {
            cell
        } else {
            self.alias[cell]
        }
    }
}

// ---------------------------------------------------------------------------
// Dirichlet.
// ---------------------------------------------------------------------------

/// Dirichlet distribution over the probability simplex.
#[derive(Debug, Clone, PartialEq)]
pub struct Dirichlet {
    alpha: Vec<f64>,
}

impl Dirichlet {
    /// Creates a Dirichlet from concentration parameters (all positive, at
    /// least two of them).
    pub fn new(alpha: Vec<f64>) -> Result<Self> {
        require(alpha.len() >= 2, "alpha", "needs at least 2 components")?;
        require(
            alpha.iter().all(|a| a.is_finite() && *a > 0.0),
            "alpha",
            "must be positive",
        )?;
        Ok(Self { alpha })
    }

    /// Symmetric Dirichlet with `k` components at concentration `alpha`.
    pub fn symmetric(k: usize, alpha: f64) -> Result<Self> {
        Self::new(vec![alpha; k.max(1)])
    }

    /// The concentration parameters.
    pub fn alpha(&self) -> &[f64] {
        &self.alpha
    }

    /// The mean vector `αᵢ / Σα`.
    pub fn mean(&self) -> Vec<f64> {
        let total: f64 = self.alpha.iter().sum();
        self.alpha.iter().map(|a| a / total).collect()
    }
}

impl Sampler for Dirichlet {
    type Output = Vec<f64>;

    /// Normalized independent Gamma(αᵢ, 1) draws.
    fn sample(&self, rng: &mut Pcg32) -> Vec<f64> {
        let mut draws: Vec<f64> = self
            .alpha
            .iter()
            .map(|&a| {
                Gamma {
                    shape: a,
                    scale: 1.0,
                }
                .sample(rng)
            })
            .collect();
        let total: f64 = draws.iter().sum();
        if total <= 0.0 {
            // All-underflow corner (tiny α): fall back to the mean.
            return self.mean();
        }
        draws.iter_mut().for_each(|d| *d /= total);
        draws
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numerics::approx_eq;

    #[test]
    fn constructors_validate() {
        assert!(Normal::new(0.0, 0.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Gamma::new(0.0, 1.0).is_err());
        assert!(Beta::new(1.0, -1.0).is_err());
        assert!(Binomial::new(10, 1.5).is_err());
        assert!(Categorical::new(&[]).is_err());
        assert!(Categorical::new(&[0.0, 0.0]).is_err());
        assert!(Dirichlet::new(vec![1.0]).is_err());
        assert!(Dirichlet::new(vec![1.0, 0.0]).is_err());
    }

    #[test]
    fn normal_moments_from_samples() {
        let d = Normal::new(3.0, 2.0).unwrap();
        let mut rng = Pcg32::new(1);
        let xs = d.sample_n(&mut rng, 50_000);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!(approx_eq(mean, 3.0, 0.0, 0.05), "{mean}");
        assert!(approx_eq(var, 4.0, 0.05, 0.0), "{var}");
    }

    #[test]
    fn categorical_alias_matches_weights() {
        let d = Categorical::new(&[1.0, 2.0, 7.0]).unwrap();
        let mut rng = Pcg32::new(2);
        let mut counts = [0usize; 3];
        let n = 100_000;
        for _ in 0..n {
            counts[d.sample(&mut rng)] += 1;
        }
        for (k, &c) in counts.iter().enumerate() {
            let frac = c as f64 / n as f64;
            assert!(approx_eq(frac, d.pmf(k), 0.05, 0.005), "k={k}: {frac}");
        }
    }

    #[test]
    fn dirichlet_samples_live_on_the_simplex() {
        let d = Dirichlet::symmetric(4, 0.7).unwrap();
        let mut rng = Pcg32::new(3);
        for _ in 0..200 {
            let x = d.sample(&mut rng);
            assert_eq!(x.len(), 4);
            assert!(x.iter().all(|&v| v >= 0.0));
            assert!(approx_eq(x.iter().sum::<f64>(), 1.0, 1e-9, 1e-9));
        }
    }

    #[test]
    fn gamma_small_shape_boost_works() {
        let d = Gamma::new(0.4, 1.0).unwrap();
        let mut rng = Pcg32::new(4);
        let xs = d.sample_n(&mut rng, 30_000);
        assert!(xs.iter().all(|&x| x >= 0.0));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!(approx_eq(mean, 0.4, 0.1, 0.0), "{mean}");
    }

    #[test]
    fn binomial_mean_tracks_np() {
        let d = Binomial::new(40, 0.25).unwrap();
        let mut rng = Pcg32::new(5);
        let xs = d.sample_n(&mut rng, 20_000);
        let mean = xs.iter().sum::<u64>() as f64 / xs.len() as f64;
        assert!(approx_eq(mean, 10.0, 0.02, 0.0), "{mean}");
    }
}
