//! Deterministic, seedable random-number generators.
//!
//! Every stochastic component of the workspace takes an explicit generator so
//! experiments are reproducible bit-for-bit. The default generator is a
//! from-scratch PCG32 (O'Neill 2014, `XSH RR 64/32`), seeded through
//! SplitMix64 so that small consecutive seeds produce decorrelated streams.
//! Both types implement [`rand::RngCore`], so they interoperate with the
//! wider `rand` ecosystem (e.g. `proptest` strategies).

use rand::RngCore;

/// SplitMix64 — a tiny, high-quality 64-bit mixer (Steele et al. 2014).
///
/// Used both as a seeding function for [`Pcg32`] and as a standalone
/// generator in tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    #[inline]
    pub fn next_u64_raw(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl RngCore for SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64_raw() >> 32) as u32
    }
    fn next_u64(&mut self) -> u64 {
        self.next_u64_raw()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        fill_bytes_via_u64(self, dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// PCG32 (`XSH RR 64/32`): 64-bit LCG state, 32-bit permuted output.
///
/// Passes TestU01 SmallCrush/Crush; period 2^64 per stream with 2^63
/// selectable streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6_364_136_223_846_793_005;

impl Pcg32 {
    /// Creates a generator from a seed, using the default stream.
    pub fn new(seed: u64) -> Self {
        Self::with_stream(seed, 0xDA3E_39CB_94B9_5BDB)
    }

    /// Creates a generator on an explicit stream; distinct streams are
    /// statistically independent.
    pub fn with_stream(seed: u64, stream: u64) -> Self {
        // Expand the seed through SplitMix64 so that seeds 0, 1, 2, ... give
        // unrelated initial states.
        let mut mix = SplitMix64::new(seed);
        let mut rng = Self {
            state: 0,
            inc: (stream << 1) | 1,
        };
        rng.state = rng.state.wrapping_mul(PCG_MULT).wrapping_add(rng.inc);
        rng.state = rng.state.wrapping_add(mix.next_u64_raw());
        rng.state = rng.state.wrapping_mul(PCG_MULT).wrapping_add(rng.inc);
        rng
    }

    /// Next 32-bit output.
    #[inline]
    pub fn next_u32_raw(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Uniform `f64` in `[0, 1)` with 53 random bits.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        let hi = (self.next_u32_raw() as u64) << 32;
        let bits = hi | self.next_u32_raw() as u64;
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` without modulo bias
    /// (Lemire's rejection method).
    pub fn next_below(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "next_below bound must be positive");
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u32_raw();
            let m = (r as u64) * (bound as u64);
            if (m as u32) >= threshold {
                return (m >> 32) as u32;
            }
        }
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i as u32 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Spawns an independent child generator; useful for giving each parallel
    /// task its own stream while keeping the parent deterministic.
    pub fn fork(&mut self) -> Pcg32 {
        let seed = ((self.next_u32_raw() as u64) << 32) | self.next_u32_raw() as u64;
        let stream = ((self.next_u32_raw() as u64) << 32) | self.next_u32_raw() as u64;
        Pcg32::with_stream(seed, stream)
    }
}

impl RngCore for Pcg32 {
    fn next_u32(&mut self) -> u32 {
        self.next_u32_raw()
    }
    fn next_u64(&mut self) -> u64 {
        ((self.next_u32_raw() as u64) << 32) | self.next_u32_raw() as u64
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        fill_bytes_via_u64(self, dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

fn fill_bytes_via_u64<R: RngCore>(rng: &mut R, dest: &mut [u8]) {
    let mut chunks = dest.chunks_exact_mut(8);
    for chunk in &mut chunks {
        chunk.copy_from_slice(&rng.next_u64().to_le_bytes());
    }
    let rem = chunks.into_remainder();
    if !rem.is_empty() {
        let bytes = rng.next_u64().to_le_bytes();
        rem.copy_from_slice(&bytes[..rem.len()]);
    }
}

/// The workspace's default generator type.
pub type DfRng = Pcg32;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcg32_is_deterministic() {
        let mut a = Pcg32::new(42);
        let mut b = Pcg32::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u32_raw(), b.next_u32_raw());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Pcg32::new(1);
        let mut b = Pcg32::new(2);
        let same = (0..64)
            .filter(|_| a.next_u32_raw() == b.next_u32_raw())
            .count();
        assert!(same < 4, "streams from adjacent seeds should be unrelated");
    }

    #[test]
    fn different_streams_differ() {
        let mut a = Pcg32::with_stream(7, 1);
        let mut b = Pcg32::with_stream(7, 2);
        let same = (0..64)
            .filter(|_| a.next_u32_raw() == b.next_u32_raw())
            .count();
        assert!(same < 4);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = Pcg32::new(123);
        let n = 100_000;
        let mut sum = 0.0;
        let mut buckets = [0usize; 10];
        for _ in 0..n {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
            buckets[(x * 10.0) as usize] += 1;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
        for (i, &b) in buckets.iter().enumerate() {
            let frac = b as f64 / n as f64;
            assert!((frac - 0.1).abs() < 0.01, "bucket {i}: {frac}");
        }
    }

    #[test]
    fn next_below_is_unbiased_and_bounded() {
        let mut rng = Pcg32::new(9);
        let bound = 7u32;
        let n = 70_000;
        let mut counts = [0usize; 7];
        for _ in 0..n {
            let v = rng.next_below(bound);
            assert!(v < bound);
            counts[v as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let frac = c as f64 / n as f64;
            assert!((frac - 1.0 / 7.0).abs() < 0.01, "value {i}: {frac}");
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        Pcg32::new(0).next_below(0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Pcg32::new(5);
        let mut xs: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            xs,
            (0..100).collect::<Vec<_>>(),
            "shuffle left input unchanged"
        );
    }

    #[test]
    fn shuffle_uniformity_smoke() {
        // Position of element 0 after shuffling [0,1,2] should be ~uniform.
        let mut rng = Pcg32::new(77);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            let mut xs = [0, 1, 2];
            rng.shuffle(&mut xs);
            let pos = xs.iter().position(|&x| x == 0).unwrap();
            counts[pos] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / 30_000.0;
            assert!((frac - 1.0 / 3.0).abs() < 0.02);
        }
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut parent = Pcg32::new(11);
        let mut child = parent.fork();
        let a: Vec<u32> = (0..32).map(|_| parent.next_u32_raw()).collect();
        let b: Vec<u32> = (0..32).map(|_| child.next_u32_raw()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn splitmix_known_vector() {
        // Reference values from the public-domain splitmix64.c with seed 0.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64_raw(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64_raw(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(sm.next_u64_raw(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn rngcore_fill_bytes_covers_remainder() {
        let mut rng = Pcg32::new(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
