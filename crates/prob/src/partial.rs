//! Mergeable partial counts — the monoid behind sharded tallying.
//!
//! The ε kernel (Eq. 6/7, Definition 3.1 of the paper) only ever consumes
//! the joint counts `N[y, s₁, …, s_p]`, and counts are additive: tallying a
//! dataset is a sum over records, so any partition of the records into
//! shards can be tallied independently and the per-shard tables summed
//! cell-wise at the end. [`PartialCounts`] makes that algebra explicit:
//!
//! - [`PartialCounts::zeros`] is the identity element,
//! - [`PartialCounts::merge`] is the associative, commutative operation
//!   (cell-wise addition over identical axes),
//! - [`ContingencyTable::from_partials`] folds any number of shards back
//!   into a single table.
//!
//! Because every cell value is a non-negative count (exactly representable
//! in `f64` up to 2⁵³ for integer tallies), merging in *any* order produces
//! bit-identical tables — which is what lets the streaming audit engine in
//! df-core fan records out to worker threads and still certify the very
//! same ε as the single-threaded batch path.
//!
//! The [`Tally`] trait is the bridge to record sources: a chunk of records
//! (a slice of a data frame, a batch of parsed CSV rows, …) knows how to
//! tally itself into a shard.

use crate::contingency::{Axis, ContingencyTable};
use crate::error::Result;

/// A shard of joint counts: one worker's partial tally over a fixed set of
/// axes, mergeable with any other shard over the same axes.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialCounts {
    table: ContingencyTable,
}

impl PartialCounts {
    /// The monoid identity: a zero-filled shard over the given axes.
    pub fn zeros(axes: Vec<Axis>) -> Result<Self> {
        Ok(Self {
            table: ContingencyTable::zeros(axes)?,
        })
    }

    /// The shard's axes, in storage order.
    pub fn axes(&self) -> &[Axis] {
        self.table.axes()
    }

    /// Number of axes.
    pub fn ndim(&self) -> usize {
        self.table.ndim()
    }

    /// Total mass tallied into this shard so far.
    pub fn total(&self) -> f64 {
        self.table.total()
    }

    /// Adds one record at a multi-index.
    #[inline]
    pub fn record(&mut self, idx: &[usize]) {
        self.table.increment(idx);
    }

    /// Adds `weight` at a multi-index (weighted records).
    #[inline]
    pub fn add(&mut self, idx: &[usize], weight: f64) {
        self.table.add(idx, weight);
    }

    /// Looks up label indices by name and tallies one record there.
    pub fn record_by_labels(&mut self, labels: &[&str]) -> Result<()> {
        self.table.increment_by_labels(labels)
    }

    /// Bulk-tallies a column-major batch of coded records (one code slice
    /// per axis) — the vectorized hot path; see
    /// [`ContingencyTable::tally_codes`].
    pub fn record_codes(&mut self, columns: &[&[u32]]) -> Result<()> {
        self.table.tally_codes(columns)
    }

    /// [`PartialCounts::record_codes`] without the per-code range scan, for
    /// sources whose codes are in-range by construction; see
    /// [`ContingencyTable::tally_codes_trusted`] for the contract.
    pub fn record_codes_trusted(&mut self, columns: &[&[u32]]) -> Result<()> {
        self.table.tally_codes_trusted(columns)
    }

    /// Merges another shard into this one (cell-wise addition). The two
    /// shards must share identical axes; errors otherwise.
    ///
    /// This operation is commutative and associative, and
    /// [`PartialCounts::zeros`] is its identity — together they form the
    /// commutative monoid that makes shard-count and merge-order
    /// irrelevant to the final table.
    pub fn merge(&mut self, other: &PartialCounts) -> Result<()> {
        self.table.merge_from(&other.table)
    }

    /// Subtracts another shard from this one — the exact inverse of
    /// [`PartialCounts::merge`] on integer tallies, turning the merge
    /// monoid into a cancellative one.
    ///
    /// The shards must share identical axes, and every cell of `other`
    /// must be at most the matching cell of `self`; a subtraction that
    /// would drive any cell negative errors *before* modifying anything
    /// (counts can only be un-tallied if they were tallied in). This is
    /// the eviction operator behind df-core's sliding-window monitor: a
    /// window is a sum of bucket shards, and expiring a bucket is exactly
    /// `window.subtract(&bucket)`.
    pub fn subtract(&mut self, other: &PartialCounts) -> Result<()> {
        self.table.subtract_from(&other.table)
    }

    /// Resets the shard to the monoid identity (all cells zero), keeping
    /// its axes — reusing one scratch shard beats re-allocating axes for
    /// every incoming batch on streaming hot paths.
    pub fn clear(&mut self) {
        self.table.clear();
    }

    /// Consumes the shard, yielding the accumulated table.
    pub fn into_table(self) -> ContingencyTable {
        self.table
    }

    /// Borrows the accumulated table.
    pub fn table(&self) -> &ContingencyTable {
        &self.table
    }
}

/// A batch of records that can tally itself into a shard.
///
/// Implementations live next to their record representation (e.g. df-data's
/// frame and CSV chunks); the streaming engine in df-core only needs this
/// trait plus `Send` to fan chunks out across worker threads.
pub trait Tally {
    /// Tallies every record of this chunk into `shard`. The shard's axes
    /// define the expected arity/vocabulary; implementations must error
    /// (not panic) on mismatch.
    fn tally_into(&self, shard: &mut PartialCounts) -> Result<()>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ProbError;

    fn axes() -> Vec<Axis> {
        vec![
            Axis::from_strs("y", &["no", "yes"]).unwrap(),
            Axis::from_strs("g", &["a", "b"]).unwrap(),
        ]
    }

    #[test]
    fn zeros_is_the_identity() {
        let mut a = PartialCounts::zeros(axes()).unwrap();
        a.record(&[0, 1]);
        a.add(&[1, 0], 2.5);
        let before = a.clone();
        let zero = PartialCounts::zeros(axes()).unwrap();
        a.merge(&zero).unwrap();
        assert_eq!(a, before);
        let mut z = PartialCounts::zeros(axes()).unwrap();
        z.merge(&before).unwrap();
        assert_eq!(z, before);
    }

    #[test]
    fn merge_is_commutative_and_associative() {
        let mut a = PartialCounts::zeros(axes()).unwrap();
        let mut b = PartialCounts::zeros(axes()).unwrap();
        let mut c = PartialCounts::zeros(axes()).unwrap();
        a.record(&[0, 0]);
        a.record(&[1, 1]);
        b.record(&[1, 0]);
        b.record(&[1, 1]);
        c.record(&[0, 1]);

        let mut ab = a.clone();
        ab.merge(&b).unwrap();
        let mut ba = b.clone();
        ba.merge(&a).unwrap();
        assert_eq!(ab, ba);

        let mut ab_c = ab.clone();
        ab_c.merge(&c).unwrap();
        let mut bc = b.clone();
        bc.merge(&c).unwrap();
        let mut a_bc = a.clone();
        a_bc.merge(&bc).unwrap();
        assert_eq!(ab_c, a_bc);
        assert_eq!(ab_c.total(), 5.0);
    }

    #[test]
    fn merge_rejects_mismatched_axes() {
        let mut a = PartialCounts::zeros(axes()).unwrap();
        let other = PartialCounts::zeros(vec![
            Axis::from_strs("y", &["no", "yes"]).unwrap(),
            Axis::from_strs("g", &["a", "b", "c"]).unwrap(),
        ])
        .unwrap();
        assert!(matches!(
            a.merge(&other),
            Err(ProbError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn subtract_inverts_merge_exactly() {
        let mut window = PartialCounts::zeros(axes()).unwrap();
        window.record(&[0, 0]);
        window.record(&[1, 1]);
        let reference = window.clone();
        let mut bucket = PartialCounts::zeros(axes()).unwrap();
        bucket.record(&[0, 1]);
        bucket.record(&[1, 1]);
        window.merge(&bucket).unwrap();
        window.subtract(&bucket).unwrap();
        assert_eq!(window, reference);
        // Evicting a bucket that was never merged in is refused (cell
        // would go negative) and leaves the window untouched.
        let mut alien = PartialCounts::zeros(axes()).unwrap();
        alien.record(&[0, 1]);
        assert!(matches!(
            window.subtract(&alien),
            Err(ProbError::InvalidParameter { .. })
        ));
        assert_eq!(window, reference);
    }

    #[test]
    fn record_by_labels_round_trips() {
        let mut p = PartialCounts::zeros(axes()).unwrap();
        p.record_by_labels(&["yes", "b"]).unwrap();
        p.record_by_labels(&["yes", "b"]).unwrap();
        assert!(p.record_by_labels(&["yes", "zzz"]).is_err());
        let t = p.into_table();
        assert_eq!(t.get(&[1, 1]), 2.0);
        assert_eq!(t.total(), 2.0);
    }
}
