//! Content negotiation: `?format=` query override first, then the
//! `Accept` header, defaulting to JSON.

use crate::http::{query_param, Request};
use df_core::report::ResponseFormat;

/// Why negotiation failed, with the status it maps to.
#[derive(Debug, PartialEq, Eq)]
pub enum NegotiateError {
    /// An explicit `?format=` value this server does not render — `400`.
    UnknownFormat(String),
    /// An `Accept` header naming only types this server cannot produce —
    /// `406`.
    NotAcceptable(String),
}

/// Resolves the response format for a request. Precedence:
///
/// 1. `?format=json|csv|markdown|text` (aliases `md`, `txt`, `plain`) —
///    an unknown value is a client error, not a fallback;
/// 2. the `Accept` header, honouring client order, with `*/*` and
///    `text/*` / `application/*` wildcards;
/// 3. JSON, when neither expresses a preference.
pub fn response_format(
    req: &Request,
    params: &[(String, String)],
) -> Result<ResponseFormat, NegotiateError> {
    if let Some(name) = query_param(params, "format") {
        return ResponseFormat::from_name(name)
            .ok_or_else(|| NegotiateError::UnknownFormat(name.to_string()));
    }
    let Some(accept) = req.header("accept") else {
        return Ok(ResponseFormat::Json);
    };
    let mut any_named = false;
    for item in accept.split(',') {
        let mime = item.split(';').next().unwrap_or("").trim();
        if mime.is_empty() {
            continue;
        }
        any_named = true;
        if mime == "*/*" {
            return Ok(ResponseFormat::Json);
        }
        if let Some(fmt) = ResponseFormat::from_mime(mime) {
            return Ok(fmt);
        }
        // Wildcard subtypes pick the first format of that top-level type.
        match mime {
            "application/*" => return Ok(ResponseFormat::Json),
            "text/*" => return Ok(ResponseFormat::Csv),
            _ => {}
        }
    }
    if any_named {
        Err(NegotiateError::NotAcceptable(accept.to_string()))
    } else {
        Ok(ResponseFormat::Json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::parse_query;

    fn req(accept: Option<&str>) -> Request {
        Request {
            method: "GET".into(),
            path: "/v1/audit".into(),
            query: String::new(),
            headers: accept
                .map(|a| vec![("accept".to_string(), a.to_string())])
                .unwrap_or_default(),
            body: Vec::new(),
            keep_alive: true,
        }
    }

    #[test]
    fn format_param_wins_over_accept() {
        let params = parse_query("format=csv");
        let r = req(Some("application/json"));
        assert_eq!(response_format(&r, &params), Ok(ResponseFormat::Csv));
    }

    #[test]
    fn unknown_format_param_is_an_error_not_a_fallback() {
        let params = parse_query("format=yaml");
        assert!(matches!(
            response_format(&req(None), &params),
            Err(NegotiateError::UnknownFormat(_))
        ));
    }

    #[test]
    fn accept_header_honours_client_order_and_wildcards() {
        let none: Vec<(String, String)> = Vec::new();
        assert_eq!(
            response_format(&req(Some("text/markdown, application/json")), &none),
            Ok(ResponseFormat::Markdown)
        );
        assert_eq!(
            response_format(&req(Some("text/csv;q=0.9")), &none),
            Ok(ResponseFormat::Csv)
        );
        assert_eq!(
            response_format(&req(Some("*/*")), &none),
            Ok(ResponseFormat::Json)
        );
        assert_eq!(response_format(&req(None), &none), Ok(ResponseFormat::Json));
        assert!(matches!(
            response_format(&req(Some("image/png")), &none),
            Err(NegotiateError::NotAcceptable(_))
        ));
    }
}
