//! Server telemetry: one [`df_obs::Registry`] wired across all three
//! layers — the HTTP edge (per-endpoint latency, status classes, body
//! bytes, cache hits), the fleet ingest (per-shard rows, queue depth,
//! staleness, cut latency), and the shard monitors (push latency,
//! evictions, alerts) — plus the request span trace ring behind
//! `GET /v1/trace` and the optional structured access-log hook.
//!
//! Hot-path discipline: every per-request counter and histogram handle
//! is resolved **once at construction** into plain arrays indexed by
//! [`Endpoint`] and status class, so recording a request is a handful of
//! relaxed atomic ops — the registry's interning lock is only ever taken
//! at startup and at scrape time. The fleet/monitor series are not even
//! copies: the registry holds the *same* `Arc`-backed cells the shard
//! workers bump, so `/v1/metrics` reads live values with zero plumbing.
//!
//! Clock discipline: the server edge owns a [`RealClock`] (df-obs's one
//! audited wall-clock seam) for request spans and uptime. Data
//! timestamps never come from it — they remain caller-supplied, exactly
//! as `df-core` requires.

use df_core::fleet::FleetTelemetry;
use df_core::{DfError, Result};
use df_obs::{Clock, Counter, Histogram, ObsError, RealClock, Registry, Span, TraceRing, Tracer};
use std::sync::Arc;

/// The routable endpoints, as telemetry label values. `Other` absorbs
/// 404s and requests that failed before routing (parse errors, oversized
/// bodies), so *every* response — error paths included — lands in a
/// status-class counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Endpoint {
    /// `GET /v1/healthz`
    Healthz,
    /// `GET /v1/schema`
    Schema,
    /// `GET /v1/audit`
    Audit,
    /// `GET /v1/monitor`
    Monitor,
    /// `GET /v1/metrics`
    Metrics,
    /// `GET /v1/trace`
    Trace,
    /// `POST /v1/ingest/records`
    IngestRecords,
    /// `POST /v1/ingest/snapshot`
    IngestSnapshot,
    /// Everything else: unknown routes and pre-route failures.
    Other,
}

impl Endpoint {
    const ALL: [Endpoint; 9] = [
        Endpoint::Healthz,
        Endpoint::Schema,
        Endpoint::Audit,
        Endpoint::Monitor,
        Endpoint::Metrics,
        Endpoint::Trace,
        Endpoint::IngestRecords,
        Endpoint::IngestSnapshot,
        Endpoint::Other,
    ];

    /// Classifies a request path (method-independent: a 405 on
    /// `/v1/audit` is still audit-endpoint traffic).
    pub(crate) fn of(path: &str) -> Endpoint {
        match path {
            "/v1/healthz" => Endpoint::Healthz,
            "/v1/schema" => Endpoint::Schema,
            "/v1/audit" => Endpoint::Audit,
            "/v1/monitor" => Endpoint::Monitor,
            "/v1/metrics" => Endpoint::Metrics,
            "/v1/trace" => Endpoint::Trace,
            "/v1/ingest/records" => Endpoint::IngestRecords,
            "/v1/ingest/snapshot" => Endpoint::IngestSnapshot,
            _ => Endpoint::Other,
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            Endpoint::Healthz => "healthz",
            Endpoint::Schema => "schema",
            Endpoint::Audit => "audit",
            Endpoint::Monitor => "monitor",
            Endpoint::Metrics => "metrics",
            Endpoint::Trace => "trace",
            Endpoint::IngestRecords => "ingest_records",
            Endpoint::IngestSnapshot => "ingest_snapshot",
            Endpoint::Other => "other",
        }
    }
}

/// HTTP status classes, as telemetry label values.
const STATUS_CLASSES: [&str; 5] = ["1xx", "2xx", "3xx", "4xx", "5xx"];

fn status_class(status: u16) -> usize {
    (usize::from(status) / 100).clamp(1, 5) - 1
}

/// What the optional access-log hook receives, once per response —
/// routed or not, success or error.
#[derive(Debug)]
pub struct AccessRecord<'a> {
    /// Request method as sent.
    pub method: &'a str,
    /// Percent-decoded request path.
    pub path: &'a str,
    /// Raw query string (possibly empty).
    pub query: &'a str,
    /// Response status code.
    pub status: u16,
    /// Request handling time in seconds (0.0 for pre-route failures,
    /// which were never timed).
    pub seconds: f64,
    /// Request body size in bytes.
    pub request_bytes: u64,
    /// Response body size in bytes.
    pub response_bytes: u64,
}

impl AccessRecord<'_> {
    /// One-line structured rendering (`key=value`, space-separated) —
    /// what a hook that just wants a log line prints.
    pub fn to_line(&self) -> String {
        format!(
            "method={} path={} query={:?} status={} seconds={:.6} in={} out={}",
            self.method,
            self.path,
            self.query,
            self.status,
            self.seconds,
            self.request_bytes,
            self.response_bytes,
        )
    }
}

/// The access-log hook type: called synchronously on the connection
/// worker, so keep it cheap (hand off to a channel for real sinks).
pub(crate) type AccessLogFn = Arc<dyn Fn(&AccessRecord<'_>) + Send + Sync>;

fn obs_err(e: ObsError) -> DfError {
    DfError::Invalid(format!("telemetry registry: {e}"))
}

/// The server's wired telemetry; one per [`crate::Server`], owned by the
/// state and shared (by reference) with every connection worker.
pub(crate) struct ServerObs {
    registry: Registry,
    tracer: Tracer,
    /// Request-latency histogram per endpoint (same cells the registry
    /// renders).
    latency: Vec<Histogram>,
    /// Request counter per endpoint × status class.
    requests: Vec<[Counter; 5]>,
    request_bytes: Counter,
    response_bytes: Counter,
    snapshot_cache: CacheCells,
    render_cache: CacheCells,
    access_log: Option<AccessLogFn>,
}

/// The hit/miss counter pair for one warm-path cache.
struct CacheCells {
    hit: Counter,
    miss: Counter,
}

impl CacheCells {
    fn new(registry: &Registry, cache: &str) -> Result<Self> {
        let cell = |result| {
            registry
                .counter(
                    "df_cache_requests_total",
                    &[("cache", cache), ("result", result)],
                )
                .map_err(obs_err)
        };
        Ok(Self {
            hit: cell("hit")?,
            miss: cell("miss")?,
        })
    }

    fn bump(&self, hit: bool) {
        if hit {
            self.hit.inc();
        } else {
            self.miss.inc();
        }
    }
}

impl ServerObs {
    /// Builds the registry and resolves every hot-path handle. The
    /// fleet/monitor series are registered by *handle* — the registry
    /// serves the very cells the ingest workers bump.
    pub(crate) fn new(
        fleet: &Arc<FleetTelemetry>,
        latency_bounds: Option<&[f64]>,
        trace_capacity: usize,
        access_log: Option<AccessLogFn>,
    ) -> Result<Self> {
        let registry = Registry::new();
        let clock: Arc<dyn Clock> = Arc::new(RealClock::new());
        let ring = (trace_capacity > 0).then(|| TraceRing::new(trace_capacity));
        let tracer = Tracer::new(Arc::clone(&clock), ring);

        let default_bounds = Histogram::default_latency().bounds().to_vec();
        let bounds = latency_bounds.unwrap_or(&default_bounds);

        for (name, help) in [
            (
                "df_requests_total",
                "HTTP requests served, by endpoint and status class.",
            ),
            (
                "df_request_seconds",
                "Request handling latency by endpoint, in seconds.",
            ),
            ("df_request_body_bytes_total", "Request body bytes read."),
            (
                "df_response_body_bytes_total",
                "Response body bytes written.",
            ),
            (
                "df_cache_requests_total",
                "Warm-path cache lookups, by cache and result.",
            ),
            ("df_ingest_rows_total", "Records ingested, per shard."),
            (
                "df_ingest_chunks_total",
                "Ingest chunks processed, per shard.",
            ),
            (
                "df_ingest_queue_depth",
                "Messages enqueued but not yet processed, per shard.",
            ),
            (
                "df_shard_last_seen_seconds",
                "Newest data timestamp each shard has processed (data time; NaN until traffic).",
            ),
            (
                "df_fleet_max_lag_seconds",
                "Worst shard staleness vs the fleet-wide newest data timestamp.",
            ),
            (
                "df_snapshot_cut_seconds",
                "Consistent-cut round duration, in seconds.",
            ),
            ("df_snapshots_total", "Consistent cuts completed."),
            (
                "df_monitor_push_seconds",
                "Monitor push_at duration, in seconds (fleet-wide).",
            ),
            (
                "df_monitor_alerts_total",
                "Fairness alerts fired across all shard monitors.",
            ),
            (
                "df_monitor_alarms_total",
                "Change-point alarms raised across all shard monitors.",
            ),
            (
                "df_monitor_evictions_total",
                "Window buckets evicted across all shard monitors.",
            ),
            (
                "df_uptime_seconds",
                "Seconds since the server telemetry started.",
            ),
            (
                "df_trace_spans_dropped_total",
                "Spans the trace ring refused or evicted unrecorded.",
            ),
        ] {
            registry.describe(name, help).map_err(obs_err)?;
        }

        // --- HTTP edge: pre-resolved per-endpoint handles. ---
        let mut latency = Vec::with_capacity(Endpoint::ALL.len());
        let mut requests = Vec::with_capacity(Endpoint::ALL.len());
        for endpoint in Endpoint::ALL {
            latency.push(
                registry
                    .histogram(
                        "df_request_seconds",
                        &[("endpoint", endpoint.as_str())],
                        bounds,
                    )
                    .map_err(obs_err)?,
            );
            let mut classes = Vec::with_capacity(STATUS_CLASSES.len());
            for class in STATUS_CLASSES {
                classes.push(
                    registry
                        .counter(
                            "df_requests_total",
                            &[("endpoint", endpoint.as_str()), ("status", class)],
                        )
                        .map_err(obs_err)?,
                );
            }
            let classes: [Counter; 5] = classes
                .try_into()
                .map_err(|_| DfError::Invalid("status class arity".into()))?;
            requests.push(classes);
        }
        let request_bytes = registry
            .counter("df_request_body_bytes_total", &[])
            .map_err(obs_err)?;
        let response_bytes = registry
            .counter("df_response_body_bytes_total", &[])
            .map_err(obs_err)?;
        let snapshot_cache = CacheCells::new(&registry, "snapshot")?;
        let render_cache = CacheCells::new(&registry, "render")?;

        // --- Fleet ingest: register the live shard handles. ---
        for (i, shard) in fleet.shards().iter().enumerate() {
            let label = i.to_string();
            let labels: &[(&str, &str)] = &[("shard", label.as_str())];
            registry
                .register_counter("df_ingest_rows_total", labels, &shard.rows)
                .map_err(obs_err)?;
            registry
                .register_counter("df_ingest_chunks_total", labels, &shard.chunks)
                .map_err(obs_err)?;
            registry
                .register_gauge("df_shard_last_seen_seconds", labels, &shard.last_seen)
                .map_err(obs_err)?;
            let depth_of = Arc::clone(fleet);
            registry
                .gauge_fn("df_ingest_queue_depth", labels, move || {
                    depth_of.shard(i).queue_depth() as f64
                })
                .map_err(obs_err)?;
        }
        let lag_of = Arc::clone(fleet);
        registry
            .gauge_fn("df_fleet_max_lag_seconds", &[], move || {
                lag_of.max_lag_seconds()
            })
            .map_err(obs_err)?;
        registry
            .register_histogram("df_snapshot_cut_seconds", &[], &fleet.snapshot_cut_seconds)
            .map_err(obs_err)?;
        registry
            .register_counter("df_snapshots_total", &[], &fleet.snapshots)
            .map_err(obs_err)?;

        // --- Shard monitors: the shared MonitorTelemetry bundle. ---
        registry
            .register_histogram("df_monitor_push_seconds", &[], &fleet.monitor.push_seconds)
            .map_err(obs_err)?;
        registry
            .register_counter("df_monitor_alerts_total", &[], &fleet.monitor.alerts_fired)
            .map_err(obs_err)?;
        registry
            .register_counter("df_monitor_alarms_total", &[], &fleet.monitor.alarms_fired)
            .map_err(obs_err)?;
        registry
            .register_counter(
                "df_monitor_evictions_total",
                &[],
                &fleet.monitor.evicted_buckets,
            )
            .map_err(obs_err)?;

        // --- Process-level derived gauges. ---
        let uptime_clock = Arc::clone(&clock);
        registry
            .gauge_fn("df_uptime_seconds", &[], move || {
                uptime_clock.monotonic_nanos() as f64 * 1e-9
            })
            .map_err(obs_err)?;
        if let Some(ring) = tracer.ring() {
            let ring = ring.clone();
            registry
                .gauge_fn("df_trace_spans_dropped_total", &[], move || {
                    ring.dropped() as f64
                })
                .map_err(obs_err)?;
        }

        Ok(Self {
            registry,
            tracer,
            latency,
            requests,
            request_bytes,
            response_bytes,
            snapshot_cache,
            render_cache,
            access_log,
        })
    }

    /// The registry behind `GET /v1/metrics`.
    pub(crate) fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The span ring behind `GET /v1/trace` (None: tracing disabled).
    pub(crate) fn trace_ring(&self) -> Option<&TraceRing> {
        self.tracer.ring()
    }

    /// Seconds since construction, from the server's monotonic clock.
    pub(crate) fn uptime_seconds(&self) -> f64 {
        self.tracer.clock().monotonic_nanos() as f64 * 1e-9
    }

    /// Opens a request span: times into the endpoint's latency histogram
    /// and, when tracing is on, lands in the ring with its fields.
    pub(crate) fn span(&self, endpoint: Endpoint) -> Span<'_> {
        // df-lint: allow(no-panic-path) -- latency has one slot per Endpoint::ALL variant by construction; the discriminant cannot exceed it
        let hist = &self.latency[endpoint as usize];
        self.tracer.span(endpoint.as_str(), hist)
    }

    /// Accounts one finished response: status-class counter + body bytes.
    /// Called for every response, error paths included.
    pub(crate) fn record(
        &self,
        endpoint: Endpoint,
        status: u16,
        request_bytes: u64,
        response_bytes: u64,
    ) {
        if let Some(cell) = self
            .requests
            .get(endpoint as usize)
            .and_then(|classes| classes.get(status_class(status)))
        {
            cell.inc();
        }
        self.request_bytes.add(request_bytes);
        self.response_bytes.add(response_bytes);
    }

    /// Accounts one merged-snapshot cache lookup.
    pub(crate) fn snapshot_cache(&self, hit: bool) {
        self.snapshot_cache.bump(hit);
    }

    /// Accounts one rendered-response cache lookup.
    pub(crate) fn render_cache(&self, hit: bool) {
        self.render_cache.bump(hit);
    }

    /// Invokes the access-log hook, if configured.
    pub(crate) fn access(&self, record: &AccessRecord<'_>) {
        if let Some(hook) = &self.access_log {
            hook(record);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_classify_and_status_classes_clamp() {
        assert_eq!(Endpoint::of("/v1/audit"), Endpoint::Audit);
        assert_eq!(Endpoint::of("/v1/metrics"), Endpoint::Metrics);
        assert_eq!(Endpoint::of("/nope"), Endpoint::Other);
        assert_eq!(status_class(200), 1);
        assert_eq!(status_class(404), 3);
        assert_eq!(status_class(503), 4);
        // Out-of-range codes clamp instead of panicking.
        assert_eq!(status_class(99), 0);
        assert_eq!(status_class(700), 4);
    }

    #[test]
    fn records_land_in_the_registry() {
        let fleet = Arc::new(FleetTelemetry::new(2));
        let obs = ServerObs::new(&fleet, None, 8, None).unwrap();
        let span = obs.span(Endpoint::Audit);
        let seconds = span.finish();
        assert!(seconds >= 0.0);
        obs.record(Endpoint::Audit, 200, 10, 250);
        obs.record(Endpoint::Other, 404, 0, 40);
        obs.snapshot_cache(false);
        obs.render_cache(true);
        let text = obs.registry().render_text();
        assert!(text.contains("df_requests_total{endpoint=\"audit\",status=\"2xx\"} 1"));
        assert!(text.contains("df_requests_total{endpoint=\"other\",status=\"4xx\"} 1"));
        assert!(text.contains("df_request_body_bytes_total 10"));
        assert!(text.contains("df_response_body_bytes_total 290"));
        assert!(text.contains("df_cache_requests_total{cache=\"render\",result=\"hit\"} 1"));
        assert!(text.contains("df_fleet_max_lag_seconds 0"));
        assert!(text.contains("df_uptime_seconds"));
        // The span landed in both the histogram and the ring.
        assert!(text.contains("df_request_seconds_count{endpoint=\"audit\"} 1"));
        assert_eq!(obs.trace_ring().map(|r| r.recent().len()), Some(1));
    }

    #[test]
    fn access_hook_sees_every_field() {
        let seen = Arc::new(std::sync::Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let fleet = Arc::new(FleetTelemetry::new(1));
        let obs = ServerObs::new(
            &fleet,
            None,
            0,
            Some(Arc::new(move |r: &AccessRecord<'_>| {
                sink.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .push(r.to_line());
            })),
        )
        .unwrap();
        // Capacity 0 disables the ring entirely.
        assert!(obs.trace_ring().is_none());
        obs.access(&AccessRecord {
            method: "GET",
            path: "/v1/audit",
            query: "format=csv",
            status: 200,
            seconds: 0.0125,
            request_bytes: 0,
            response_bytes: 99,
        });
        let lines = seen
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("path=/v1/audit"));
        assert!(lines[0].contains("status=200"));
        assert!(lines[0].contains("out=99"));
    }
}
