//! The long-lived server state: one [`FleetIngest`] owning the live
//! counts, a schema catalog the router validates against, a wire-snapshot
//! store for remote replicas, and the version-keyed caches behind the
//! warm read path.
//!
//! ## Consistency and the warm path
//!
//! Every successful ingest bumps a version counter. Read endpoints
//! (`/v1/audit`, `/v1/monitor`) resolve their merged fleet snapshot
//! through a version-tagged cache: while no ingest has landed since the
//! last resolution, reads reuse the merged snapshot (and the rendered
//! response bytes) without touching the fleet at all — that is what makes
//! tens of thousands of audit requests per second cheap between ingest
//! bursts. The first read after an ingest pays one consistent-cut round
//! plus one ε recomputation.
//!
//! ## Why bad input cannot poison a shard
//!
//! [`df_core::fleet::FleetIngest`] deliberately validates chunks on the
//! worker and poisons the shard on the first error (sticky, like the
//! streaming engine). A public HTTP endpoint cannot afford an input that
//! bricks a shard, so the handlers validate *everything* before anything
//! is enqueued: row arity and labels against the schema catalog, and
//! timestamps against a conservative lower bound (`max_seen − T + b`)
//! that provably can never land behind any shard's window horizon.

use crate::http::Response;
use crate::obs::{AccessLogFn, ServerObs};
use df_core::builder::{Audit, EpsilonEstimator, SubsetPolicy};
use df_core::fleet::{merge_many, FleetIngest, FleetTelemetry, SnapshotDecoder};
use df_core::metric::Metric;
use df_core::monitor::{AlertRule, ChangepointSpec, MonitorBuilder, MonitorSnapshot};
use df_core::{DfError, Result};
use df_data::chunks::LabelChunk;
use df_prob::contingency::Axis;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Locks a mutex, recovering the data if a previous holder panicked.
///
/// Every mutex in this module guards state with no invariant that spans
/// the lock (caches are validated by version tag, `max_seen` is a single
/// monotone value, the decoder re-validates every frame), so a poisoned
/// lock is safe to adopt — and turning one request thread's panic into a
/// permanent 500-for-everyone by unwrapping the poison would be the real
/// availability bug on an untrusted-input path.
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// Upper bound on distinct cached rendered responses between ingests.
const RESPONSE_CACHE_CAP: usize = 256;

/// Everything [`crate::ServerBuilder`] resolved; owned by the state.
pub(crate) struct StateConfig {
    pub outcome: String,
    pub axes: Vec<Axis>,
    pub estimator: Box<dyn EpsilonEstimator>,
    pub metric: Box<dyn Metric>,
    pub window_seconds: f64,
    pub bucket_seconds: f64,
    pub decay: Option<f64>,
    pub subsets: SubsetPolicy,
    pub alerts: Vec<AlertRule>,
    pub changepoints: Vec<ChangepointSpec>,
    pub shards: usize,
    pub snapshot_timeout: Duration,
    pub latency_bounds: Option<Vec<f64>>,
    pub trace_capacity: usize,
    pub access_log: Option<AccessLogFn>,
}

/// The shared, long-lived server state; one instance per [`crate::Server`].
pub struct ServerState {
    outcome: String,
    axes: Vec<Axis>,
    vocab: Vec<HashSet<String>>,
    estimator: Box<dyn EpsilonEstimator>,
    metric: Box<dyn Metric>,
    window_seconds: f64,
    bucket_seconds: f64,
    decay: Option<f64>,
    snapshot_timeout: Duration,
    fleet: FleetIngest<LabelChunk>,
    /// The zero snapshot of an identically configured monitor; the
    /// compatibility yardstick for posted wire snapshots.
    reference: MonitorSnapshot,
    decoder: Mutex<SnapshotDecoder>,
    /// Latest wire snapshot per remote replica (BTreeMap: deterministic
    /// merge order).
    remote: Mutex<BTreeMap<String, MonitorSnapshot>>,
    version: AtomicU64,
    next_shard: AtomicUsize,
    max_seen: Mutex<Option<f64>>,
    snap_cache: Mutex<Option<(u64, MonitorSnapshot)>>,
    resp_cache: Mutex<(u64, HashMap<String, Response>)>,
    obs: ServerObs,
}

impl ServerState {
    pub(crate) fn new(cfg: StateConfig) -> Result<Self> {
        let builder = || -> MonitorBuilder {
            let mut b = Audit::monitor(&cfg.outcome, cfg.axes.clone())
                .boxed_estimator(cfg.estimator.clone_box())
                .boxed_metric(cfg.metric.clone())
                .window_seconds(cfg.window_seconds)
                .bucket_seconds(cfg.bucket_seconds)
                .subsets(cfg.subsets);
            if let Some(lambda) = cfg.decay {
                b = b.decay(lambda);
            }
            for rule in &cfg.alerts {
                b = b.alert(*rule);
            }
            for spec in &cfg.changepoints {
                b = b.changepoint(*spec);
            }
            b
        };
        let reference = builder().build()?.snapshot()?;
        let fleet = builder().fleet::<LabelChunk>(cfg.shards)?;
        let obs = ServerObs::new(
            fleet.telemetry(),
            cfg.latency_bounds.as_deref(),
            cfg.trace_capacity,
            cfg.access_log,
        )?;
        let vocab = cfg
            .axes
            .iter()
            .map(|a| a.labels().iter().cloned().collect())
            .collect();
        Ok(Self {
            outcome: cfg.outcome,
            axes: cfg.axes,
            vocab,
            estimator: cfg.estimator,
            metric: cfg.metric,
            window_seconds: cfg.window_seconds,
            bucket_seconds: cfg.bucket_seconds,
            decay: cfg.decay,
            snapshot_timeout: cfg.snapshot_timeout,
            fleet,
            reference,
            decoder: Mutex::new(SnapshotDecoder::new()),
            remote: Mutex::new(BTreeMap::new()),
            version: AtomicU64::new(1),
            next_shard: AtomicUsize::new(0),
            max_seen: Mutex::new(None),
            snap_cache: Mutex::new(None),
            resp_cache: Mutex::new((0, HashMap::new())),
            obs,
        })
    }

    /// The server's wired telemetry (registry, spans, counters).
    pub(crate) fn obs(&self) -> &ServerObs {
        &self.obs
    }

    /// The fleet's live telemetry (per-shard traffic, staleness, cuts).
    pub(crate) fn fleet_telemetry(&self) -> &Arc<FleetTelemetry> {
        self.fleet.telemetry()
    }

    /// The outcome axis name.
    pub fn outcome(&self) -> &str {
        &self.outcome
    }

    /// The schema axes (outcome included), in record order.
    pub fn axes(&self) -> &[Axis] {
        &self.axes
    }

    /// Number of ingest shards.
    pub fn shards(&self) -> usize {
        self.fleet.shards()
    }

    /// Display name of the configured ε estimator.
    pub fn estimator_name(&self) -> String {
        self.estimator.name()
    }

    /// The configured ε estimator (for per-query snapshot re-derivation).
    pub(crate) fn estimator(&self) -> &dyn EpsilonEstimator {
        &*self.estimator
    }

    /// Canonical tag of the configured fairness metric.
    pub fn metric_tag(&self) -> String {
        self.metric.tag()
    }

    /// `(window_seconds, bucket_seconds, decay)` as configured.
    pub fn window_config(&self) -> (f64, f64, Option<f64>) {
        (self.window_seconds, self.bucket_seconds, self.decay)
    }

    /// Default bounded wait for consistent-cut rounds.
    pub fn snapshot_timeout(&self) -> Duration {
        self.snapshot_timeout
    }

    /// The current ingest version (bumped by every accepted ingest).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::SeqCst)
    }

    fn bump_version(&self) {
        self.version.fetch_add(1, Ordering::SeqCst);
    }

    /// Wall clock as UNIX seconds, the default record timestamp.
    pub fn now_unix(&self) -> f64 {
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs_f64())
            .unwrap_or(0.0)
    }

    /// Validates rows + timestamp against the catalog and enqueues them.
    /// Returns `(rows accepted, shard used)`. Nothing reaches the fleet
    /// unless every row is valid — an atomic accept/reject per request,
    /// and the reason shard workers can never be poisoned over HTTP.
    pub fn ingest_rows(
        &self,
        rows: Vec<Vec<String>>,
        at: f64,
        shard: Option<usize>,
    ) -> Result<(usize, usize)> {
        if rows.is_empty() {
            return Err(DfError::Invalid("no records in request body".into()));
        }
        for (i, row) in rows.iter().enumerate() {
            if row.len() != self.axes.len() {
                return Err(DfError::Invalid(format!(
                    "row {i} has {} fields; the schema has {} axes ({})",
                    row.len(),
                    self.axes.len(),
                    self.axes
                        .iter()
                        .map(Axis::name)
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
            for (label, (axis, vocab)) in row.iter().zip(self.axes.iter().zip(&self.vocab)) {
                if !vocab.contains(label) {
                    return Err(DfError::Invalid(format!(
                        "row {i}: `{label}` is not a label of axis `{}`",
                        axis.name()
                    )));
                }
            }
        }
        self.check_timestamp(at)?;
        let shard = match shard {
            Some(s) if s < self.shards() => s,
            Some(s) => {
                return Err(DfError::Invalid(format!(
                    "no shard {s}: this server has {} shards",
                    self.shards()
                )))
            }
            None => self.next_shard.fetch_add(1, Ordering::Relaxed) % self.shards(),
        };
        let accepted = rows.len();
        self.fleet
            .producer(shard)?
            .send(LabelChunk::new(rows), at)?;
        self.bump_version();
        Ok((accepted, shard))
    }

    /// Refuses timestamps the window could reject: non-finite, or older
    /// than `max_seen − T + b`. Every shard clock is at most `max_seen`,
    /// and a timestamp at least `now − T + b` always lands in an
    /// in-window bucket, so anything passing this check is provably safe
    /// on whichever shard it reaches.
    fn check_timestamp(&self, at: f64) -> Result<()> {
        if !at.is_finite() {
            return Err(DfError::Invalid(format!(
                "record timestamp must be finite, got {at}"
            )));
        }
        let mut max_seen = lock_recover(&self.max_seen);
        if let Some(max) = *max_seen {
            let floor = max - self.window_seconds + self.bucket_seconds;
            if at < floor {
                return Err(DfError::Invalid(format!(
                    "timestamp {at} is too old: the window has advanced to {max} \
                     and only accepts arrivals from {floor}"
                )));
            }
        }
        if max_seen.is_none_or(|m| at > m) {
            *max_seen = Some(at);
        }
        Ok(())
    }

    /// Decodes one binary `DFLT` frame, checks it is merge-compatible
    /// with this server's configuration (schema, outcome, window, decay,
    /// subsets, detectors), and stores it as `replica`'s latest state
    /// (last write wins). Returns the decoded snapshot's record count.
    pub fn ingest_snapshot(&self, bytes: &[u8], replica: &str) -> Result<(u64, u64)> {
        let snap = lock_recover(&self.decoder).decode(bytes)?;
        self.reference.mergeable_with(&snap)?;
        if snap.window.axes != self.reference.window.axes {
            return Err(DfError::Invalid(
                "snapshot schema does not match this server's catalog \
                 (different axes or label sets)"
                    .into(),
            ));
        }
        let totals = (snap.records_seen, snap.window_rows);
        lock_recover(&self.remote).insert(replica.to_string(), snap);
        self.bump_version();
        Ok(totals)
    }

    /// The fleet-wide merged snapshot: a consistent cut of the local
    /// fleet folded with the latest snapshot of every remote replica.
    fn merged_snapshot(&self, timeout: Duration) -> Result<MonitorSnapshot> {
        let local = self.fleet.try_snapshot_timeout(timeout)?;
        let remote = lock_recover(&self.remote);
        if remote.is_empty() {
            return Ok(local);
        }
        let mut all = Vec::with_capacity(1 + remote.len());
        all.push(local);
        all.extend(remote.values().cloned());
        drop(remote);
        merge_many(&all, &*self.estimator)
    }

    /// [`Self::merged_snapshot`] behind the version-tagged cache: the
    /// warm path clones the cached merge instead of re-cutting the fleet.
    pub fn merged_cached(&self, timeout: Duration) -> Result<(u64, MonitorSnapshot)> {
        let version = self.version();
        if let Some((v, snap)) = &*lock_recover(&self.snap_cache) {
            if *v == version {
                self.obs.snapshot_cache(true);
                return Ok((version, snap.clone()));
            }
        }
        self.obs.snapshot_cache(false);
        let snap = self.merged_snapshot(timeout)?;
        *lock_recover(&self.snap_cache) = Some((version, snap.clone()));
        Ok((version, snap))
    }

    /// A cached rendered response, valid only at the given version.
    pub fn cached_response(&self, version: u64, key: &str) -> Option<Response> {
        let cache = lock_recover(&self.resp_cache);
        let hit = (cache.0 == version)
            .then(|| cache.1.get(key).cloned())
            .flatten();
        self.obs.render_cache(hit.is_some());
        hit
    }

    /// Stores a rendered response under the given version, resetting the
    /// cache when the version moved and capping its size.
    pub fn store_response(&self, version: u64, key: &str, resp: &Response) {
        let mut cache = lock_recover(&self.resp_cache);
        if cache.0 != version {
            cache.0 = version;
            cache.1.clear();
        }
        if cache.1.len() < RESPONSE_CACHE_CAP {
            cache.1.insert(key.to_string(), resp.clone());
        }
    }
}
