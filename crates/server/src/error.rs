//! Mapping from [`DfError`] (and HTTP-layer failures) to typed HTTP
//! responses with JSON bodies.
//!
//! Every error body has the same shape:
//! `{"error": {"status": 400, "kind": "corrupt_counts", "message": "…"}}`
//! so clients can switch on `kind` without parsing prose.

use crate::http::Response;
use df_core::DfError;
use serde_json::Value;

/// Builds the canonical JSON error body.
pub fn error_body(status: u16, kind: &str, message: &str) -> Vec<u8> {
    let body = Value::Obj(vec![(
        "error".to_string(),
        Value::Obj(vec![
            ("status".to_string(), Value::Int(i64::from(status))),
            ("kind".to_string(), Value::Str(kind.to_string())),
            ("message".to_string(), Value::Str(message.to_string())),
        ]),
    )]);
    serde_json::to_string(&body)
        .unwrap_or_else(|_| "{\"error\":{}}".to_string())
        .into_bytes()
}

/// An error response with the canonical JSON body.
pub fn error_response(status: u16, kind: &str, message: &str) -> Response {
    Response::new(
        status,
        "application/json",
        error_body(status, kind, message),
    )
}

/// The `(status, kind)` a [`DfError`] maps to: domain validation errors
/// are client errors (`400`), a bounded-wait expiry is `503` (the fleet
/// is alive but didn't answer in time — retrying is safe and correct).
pub fn classify(err: &DfError) -> (u16, &'static str) {
    match err {
        DfError::CorruptCounts { .. } => (400, "corrupt_counts"),
        DfError::UnknownAttribute(_) => (400, "unknown_attribute"),
        DfError::NotEnoughCategories { .. } => (400, "not_enough_categories"),
        DfError::Prob(_) => (400, "probability"),
        DfError::Invalid(_) => (400, "invalid"),
        DfError::Timeout { .. } => (503, "timeout"),
    }
}

/// Renders a [`DfError`] as its typed HTTP response.
pub fn df_error_response(err: &DfError) -> Response {
    let (status, kind) = classify(err);
    let resp = error_response(status, kind, &err.to_string());
    if status == 503 {
        resp.with_header("Retry-After", "1")
    } else {
        resp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corrupt_counts_maps_to_400_with_typed_kind() {
        let err = DfError::CorruptCounts {
            cell: 2,
            value: -1.0,
        };
        let resp = df_error_response(&err);
        assert_eq!(resp.status, 400);
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains("\"kind\":\"corrupt_counts\""));
        assert!(body.contains("\"status\":400"));
    }

    #[test]
    fn timeout_maps_to_503_with_retry_after() {
        let err = DfError::Timeout {
            what: "fleet snapshot",
            waited_ms: 100,
        };
        let resp = df_error_response(&err);
        assert_eq!(resp.status, 503);
        assert!(resp.extra_headers.iter().any(|(k, _)| k == "Retry-After"));
    }

    #[test]
    fn error_bodies_escape_messages() {
        let body = String::from_utf8(error_body(400, "invalid", "bad \"label\"\n")).unwrap();
        assert!(body.contains("bad \\\"label\\\"\\n"));
    }
}
