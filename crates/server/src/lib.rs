//! # df-server
//!
//! An ε-differential-fairness **audit query service**: a hand-rolled,
//! dependency-free HTTP/1.1 server owning a long-lived
//! [`df_core::fleet::FleetIngest`] plus a schema catalog, turning the
//! intersectional counts cube of Foulds et al. (ICDE 2020) into a
//! queryable OLAP-style endpoint. One counts store answers many audit
//! questions per request — estimator, subset-lattice slice, window, and
//! wire format are all chosen per query.
//!
//! ## Endpoints
//!
//! | Route | Method | Purpose |
//! |---|---|---|
//! | `/v1/ingest/records` | POST | JSON/CSV record chunks with timestamps |
//! | `/v1/ingest/snapshot` | POST | binary `DFLT` frames from remote replicas |
//! | `/v1/audit` | GET | batch audit over the merged counts (`estimator=`, `subsets=`, `attrs=`, `window=`, `positive=`) |
//! | `/v1/monitor` | GET | windowed ε, trend, alerts, change-point alarms |
//! | `/v1/schema` | GET | catalog + vocabularies |
//! | `/v1/healthz` | GET | liveness, ingest version, per-shard queue depths, uptime |
//! | `/v1/metrics` | GET | telemetry scrape (Prometheus text, `?format=json` for JSON) |
//! | `/v1/trace` | GET | recent/slowest request spans from the trace ring |
//!
//! Responses negotiate JSON/CSV/markdown/text via `Accept` or
//! `?format=`; errors map [`df_core::DfError`] to typed statuses with
//! JSON bodies (`corrupt_counts` → 400, `timeout` → 503, …).
//!
//! ## Quick start
//!
//! ```
//! use df_prob::contingency::Axis;
//! use df_server::{client::Http1Client, Server};
//!
//! let server = Server::builder(
//!     "outcome",
//!     vec![
//!         Axis::from_strs("outcome", &["deny", "approve"]).unwrap(),
//!         Axis::from_strs("gender", &["F", "M"]).unwrap(),
//!     ],
//! )
//! .window_seconds(3600.0)
//! .bind("127.0.0.1:0")
//! .unwrap();
//!
//! let mut client = Http1Client::connect(server.local_addr()).unwrap();
//! let body = br#"{"rows": [["approve","F"],["deny","M"]], "at": 10.0}"#;
//! let resp = client
//!     .request("POST", "/v1/ingest/records", &[], body)
//!     .unwrap();
//! assert_eq!(resp.status, 200);
//! let audit = client.get("/v1/audit?estimator=smoothed").unwrap();
//! assert_eq!(audit.status, 200);
//! assert!(audit.text().contains("\"epsilon\""));
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
mod error;
pub mod http;
mod negotiate;
mod obs;
mod state;

mod handlers;

pub use negotiate::NegotiateError;
pub use obs::AccessRecord;
pub use state::ServerState;

use df_core::builder::{EpsilonEstimator, Smoothed, SubsetPolicy};
use df_core::metric::{EpsilonDf, Metric};
use df_core::monitor::{AlertRule, ChangepointSpec};
use df_core::{DfError, Result};
use df_prob::contingency::Axis;
use http::{read_request, write_response, NextRequest, POLL_INTERVAL};
use obs::Endpoint;
use state::StateConfig;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Configuration + construction for [`Server`]. Obtained from
/// [`Server::builder`]; `bind` starts listening.
pub struct ServerBuilder {
    outcome: String,
    axes: Vec<Axis>,
    estimator: Box<dyn EpsilonEstimator>,
    metric: Box<dyn Metric>,
    window_seconds: f64,
    bucket_seconds: Option<f64>,
    decay: Option<f64>,
    subsets: SubsetPolicy,
    alerts: Vec<AlertRule>,
    changepoints: Vec<ChangepointSpec>,
    shards: usize,
    workers: usize,
    max_body_bytes: usize,
    keep_alive: Duration,
    snapshot_timeout: Duration,
    latency_buckets: Option<Vec<f64>>,
    trace_spans: usize,
    access_log: Option<obs::AccessLogFn>,
}

impl ServerBuilder {
    /// The ε estimator used for monitor snapshots and fleet merging
    /// (default: `Smoothed { alpha: 1.0 }`, Eq. 7 of the paper). The
    /// audit endpoint picks its own estimators per query.
    pub fn estimator(mut self, estimator: impl EpsilonEstimator + 'static) -> Self {
        self.estimator = Box::new(estimator);
        self
    }

    /// The fairness metric every monitor statistic, fleet snapshot, and
    /// default audit is computed under (default: ε-differential
    /// fairness). Queries can re-derive another metric per request via
    /// `?metric=`; remote replicas posting snapshots must match this
    /// metric's tag.
    pub fn metric(mut self, metric: impl Metric + 'static) -> Self {
        self.metric = Box::new(metric);
        self
    }

    /// Wall-clock window span in seconds (default 3600).
    pub fn window_seconds(mut self, seconds: f64) -> Self {
        self.window_seconds = seconds;
        self
    }

    /// Bucket granularity in seconds (default: `window / 60`, at least
    /// 1 ms). Finer buckets tighten the ingest staleness bound — the
    /// server refuses record timestamps older than
    /// `max_seen − window + bucket`.
    pub fn bucket_seconds(mut self, seconds: f64) -> Self {
        self.bucket_seconds = Some(seconds);
        self
    }

    /// Enables the exponentially-decayed horizon (`window=decayed`
    /// audits and the monitor trend signal).
    pub fn decay(mut self, lambda: f64) -> Self {
        self.decay = Some(lambda);
        self
    }

    /// Subset lattice policy for monitor snapshots (default
    /// [`SubsetPolicy::None`]: `/v1/monitor` reports the full
    /// intersection only; `/v1/audit` computes its own lattice per
    /// query). Remote replicas posting snapshots must match.
    pub fn subsets(mut self, policy: SubsetPolicy) -> Self {
        self.subsets = policy;
        self
    }

    /// Attaches an alert rule to every shard monitor.
    pub fn alert(mut self, rule: AlertRule) -> Self {
        self.alerts.push(rule);
        self
    }

    /// Attaches a change-point detector to every shard monitor.
    pub fn changepoint(mut self, spec: impl Into<ChangepointSpec>) -> Self {
        self.changepoints.push(spec.into());
        self
    }

    /// Number of ingest shards (default 4).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Number of connection worker threads (default 4).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Cap on request bodies; a larger declared `Content-Length` answers
    /// `413` (default 1 MiB).
    pub fn max_body_bytes(mut self, bytes: usize) -> Self {
        self.max_body_bytes = bytes;
        self
    }

    /// Idle keep-alive before a connection is closed (default 5 s).
    pub fn keep_alive(mut self, idle: Duration) -> Self {
        self.keep_alive = idle;
        self
    }

    /// Default bounded wait for the fleet consistent-cut round behind
    /// `/v1/audit` and `/v1/monitor`; exceeding it answers `503`
    /// (default 5 s, per-request override via `?timeout_ms=`).
    pub fn snapshot_timeout(mut self, timeout: Duration) -> Self {
        self.snapshot_timeout = timeout;
        self
    }

    /// Upper bucket boundaries, in seconds, for the per-endpoint
    /// request-latency histograms served by `/v1/metrics` (default: the
    /// df-obs log-scale ladder from 1 µs up). Must be strictly
    /// increasing, finite, and non-empty — `bind` fails otherwise.
    pub fn latency_buckets(mut self, bounds: Vec<f64>) -> Self {
        self.latency_buckets = Some(bounds);
        self
    }

    /// Capacity of the request-span trace ring behind `/v1/trace`
    /// (default 256; `0` disables tracing entirely — spans still feed
    /// the latency histograms, but nothing is retained).
    pub fn trace_spans(mut self, capacity: usize) -> Self {
        self.trace_spans = capacity;
        self
    }

    /// Installs a structured access-log hook, called synchronously once
    /// per response — routed or not, success or error (off by default).
    /// Keep it cheap; hand off to a channel for real sinks.
    /// [`AccessRecord::to_line`] renders the conventional one-liner.
    pub fn access_log(mut self, hook: impl Fn(&AccessRecord<'_>) + Send + Sync + 'static) -> Self {
        self.access_log = Some(Arc::new(hook));
        self
    }

    /// Binds the listener, spawns the accept loop and worker pool, and
    /// returns the running server.
    pub fn bind(self, addr: &str) -> Result<Server> {
        if self.workers == 0 {
            return Err(DfError::Invalid(
                "the server needs at least one worker".into(),
            ));
        }
        let bucket = self
            .bucket_seconds
            .unwrap_or_else(|| (self.window_seconds / 60.0).max(0.001));
        let state = ServerState::new(StateConfig {
            outcome: self.outcome,
            axes: self.axes,
            estimator: self.estimator,
            metric: self.metric,
            window_seconds: self.window_seconds,
            bucket_seconds: bucket,
            decay: self.decay,
            subsets: self.subsets,
            alerts: self.alerts,
            changepoints: self.changepoints,
            shards: self.shards,
            snapshot_timeout: self.snapshot_timeout,
            latency_bounds: self.latency_buckets,
            trace_capacity: self.trace_spans,
            access_log: self.access_log,
        })?;
        let listener = TcpListener::bind(addr)
            .map_err(|e| DfError::Invalid(format!("cannot bind {addr}: {e}")))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| DfError::Invalid(format!("no local address: {e}")))?;
        let shared = Arc::new(Shared {
            state,
            shutdown: AtomicBool::new(false),
            max_body_bytes: self.max_body_bytes,
            keep_alive: self.keep_alive,
        });

        let (conn_tx, conn_rx) = channel::<TcpStream>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        let mut workers = Vec::with_capacity(self.workers);
        for _ in 0..self.workers {
            let rx = Arc::clone(&conn_rx);
            let shared = Arc::clone(&shared);
            workers.push(std::thread::spawn(move || worker_loop(&rx, &shared)));
        }
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &conn_tx, &shared))
        };
        Ok(Server {
            addr: local_addr,
            shared,
            accept: Some(accept),
            workers,
        })
    }
}

/// What the accept loop and workers share.
struct Shared {
    state: ServerState,
    shutdown: AtomicBool,
    max_body_bytes: usize,
    keep_alive: Duration,
}

/// A running audit server; dropping it (or calling [`Server::shutdown`])
/// stops the accept loop, drains the workers, and joins every thread.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Starts configuring a server for the given schema. `axes` is the
    /// full record schema — the outcome axis (named by `outcome`) plus
    /// every protected attribute, in the order ingest rows list their
    /// labels.
    pub fn builder(outcome: &str, axes: Vec<Axis>) -> ServerBuilder {
        ServerBuilder {
            outcome: outcome.to_string(),
            axes,
            estimator: Box::new(Smoothed { alpha: 1.0 }),
            metric: Box::new(EpsilonDf),
            window_seconds: 3600.0,
            bucket_seconds: None,
            decay: None,
            subsets: SubsetPolicy::None,
            alerts: Vec::new(),
            changepoints: Vec::new(),
            shards: 4,
            workers: 4,
            max_body_bytes: 1 << 20,
            keep_alive: Duration::from_secs(5),
            snapshot_timeout: Duration::from_secs(5),
            latency_buckets: None,
            trace_spans: 256,
            access_log: None,
        }
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state, for in-process inspection in tests.
    pub fn state(&self) -> &ServerState {
        &self.shared.state
    }

    /// Graceful shutdown: stops accepting, lets in-flight requests
    /// finish, and joins every thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the accept loop out of its blocking accept().
        // df-lint: allow(must-use-results) -- best-effort wakeup; the accept loop also polls the shutdown flag
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            // df-lint: allow(must-use-results) -- a panicked accept loop is already shut down; nothing to report to Drop
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            // df-lint: allow(must-use-results) -- worker panics were already answered with a 500 or a closed socket
            let _ = worker.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, conn_tx: &Sender<TcpStream>, shared: &Shared) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match stream {
            Ok(stream) => {
                if conn_tx.send(stream).is_err() {
                    break;
                }
            }
            Err(_) => continue,
        }
    }
    // conn_tx drops here; idle workers see the disconnect and exit.
}

fn worker_loop(conn_rx: &Mutex<Receiver<TcpStream>>, shared: &Shared) {
    loop {
        let stream = {
            // Poison here means a sibling worker panicked between recv
            // and handle; the queue itself is still valid.
            let rx = conn_rx
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            rx.recv()
        };
        match stream {
            Ok(stream) => handle_connection(stream, shared),
            Err(_) => return, // accept loop gone
        }
    }
}

fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    // df-lint: allow(must-use-results) -- socket tuning is advisory; the read loop enforces its own deadline
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    // df-lint: allow(must-use-results) -- socket tuning is advisory; latency, not correctness
    let _ = stream.set_nodelay(true);
    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        match read_request(
            &mut stream,
            shared.max_body_bytes,
            &shared.shutdown,
            shared.keep_alive,
        ) {
            Ok(NextRequest::Ready(req)) => {
                let keep = req.keep_alive && !shared.shutdown.load(Ordering::Relaxed);
                let obs = shared.state.obs();
                let endpoint = Endpoint::of(&req.path);
                let mut span = obs.span(endpoint);
                span.field("method", req.method.clone());
                span.field("path", req.path.clone());
                let resp = handlers::route(&shared.state, &req);
                span.field("status", resp.status.to_string());
                let seconds = span.finish();
                obs.record(
                    endpoint,
                    resp.status,
                    req.body.len() as u64,
                    resp.body.len() as u64,
                );
                obs.access(&AccessRecord {
                    method: &req.method,
                    path: &req.path,
                    query: &req.query,
                    status: resp.status,
                    seconds,
                    request_bytes: req.body.len() as u64,
                    response_bytes: resp.body.len() as u64,
                });
                if write_response(&mut stream, &resp, keep).is_err() || !keep {
                    return;
                }
            }
            Ok(NextRequest::Close) => return,
            Err(e) => {
                let resp = match e {
                    http::HttpError::BadRequest(msg) => {
                        error::error_response(400, "bad_request", &msg)
                    }
                    http::HttpError::BodyTooLarge { limit } => error::error_response(
                        413,
                        "body_too_large",
                        &format!("request body exceeds the {limit}-byte cap"),
                    ),
                    http::HttpError::HeadersTooLarge => error::error_response(
                        431,
                        "headers_too_large",
                        &format!("request head exceeds {} bytes", http::MAX_HEAD_BYTES),
                    ),
                    http::HttpError::NotImplemented(msg) => {
                        error::error_response(501, "not_implemented", &msg)
                    }
                };
                // Pre-route failures still count: a flood of 4xx parse
                // errors must show up in the status-class counters.
                let obs = shared.state.obs();
                obs.record(Endpoint::Other, resp.status, 0, resp.body.len() as u64);
                obs.access(&AccessRecord {
                    method: "-",
                    path: "-",
                    query: "",
                    status: resp.status,
                    seconds: 0.0,
                    request_bytes: 0,
                    response_bytes: resp.body.len() as u64,
                });
                // df-lint: allow(must-use-results) -- the connection closes either way; the error response is best effort
                let _ = write_response(&mut stream, &resp, false);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use client::Http1Client;

    fn axes() -> Vec<Axis> {
        vec![
            Axis::from_strs("y", &["no", "yes"]).unwrap(),
            Axis::from_strs("g", &["a", "b"]).unwrap(),
        ]
    }

    #[test]
    fn serves_health_schema_and_audit_over_tcp() {
        let server = Server::builder("y", axes())
            .window_seconds(100.0)
            .bucket_seconds(1.0)
            .shards(2)
            .workers(2)
            .bind("127.0.0.1:0")
            .unwrap();
        let mut c = Http1Client::connect(server.local_addr()).unwrap();

        let health = c.get("/v1/healthz").unwrap();
        assert_eq!(health.status, 200);
        assert!(health.text().contains("\"status\":\"ok\""));

        let schema = c.get("/v1/schema").unwrap();
        assert_eq!(schema.status, 200);
        assert!(schema.text().contains("\"outcome\":\"y\""));
        assert!(schema.text().contains("\"labels\":[\"no\",\"yes\"]"));

        let posted = c
            .request(
                "POST",
                "/v1/ingest/records?at=5",
                &[("Content-Type", "application/json")],
                br#"[["no","a"],["yes","b"],["yes","a"],["no","b"]]"#,
            )
            .unwrap();
        assert_eq!(posted.status, 200, "{}", posted.text());
        assert!(posted.text().contains("\"accepted\":4"));

        let audit = c.get("/v1/audit").unwrap();
        assert_eq!(audit.status, 200);
        assert!(audit.text().contains("\"n_records\":4"));

        let monitor = c.get("/v1/monitor?format=text").unwrap();
        assert_eq!(monitor.status, 200);
        assert!(monitor.text().contains("records_seen: 4"));

        server.shutdown();
    }

    #[test]
    fn rejects_bad_rows_without_poisoning_the_fleet() {
        let server = Server::builder("y", axes())
            .window_seconds(100.0)
            .bucket_seconds(1.0)
            .workers(1)
            .bind("127.0.0.1:0")
            .unwrap();
        let mut c = Http1Client::connect(server.local_addr()).unwrap();

        // Unknown label → 400, nothing ingested.
        let bad = c
            .request(
                "POST",
                "/v1/ingest/records?at=5",
                &[],
                br#"[["maybe","a"]]"#,
            )
            .unwrap();
        assert_eq!(bad.status, 400);
        assert!(bad.text().contains("not a label"));

        // Wrong arity → 400.
        let bad = c
            .request("POST", "/v1/ingest/records?at=5", &[], br#"[["no"]]"#)
            .unwrap();
        assert_eq!(bad.status, 400);

        // The fleet still works.
        let ok = c
            .request("POST", "/v1/ingest/records?at=6", &[], br#"[["no","a"]]"#)
            .unwrap();
        assert_eq!(ok.status, 200);
        let audit = c.get("/v1/audit").unwrap();
        assert_eq!(audit.status, 200);
        assert!(audit.text().contains("\"n_records\":1"));
        server.shutdown();
    }

    #[test]
    fn csv_ingest_and_format_negotiation() {
        let server = Server::builder("y", axes())
            .window_seconds(100.0)
            .bucket_seconds(1.0)
            .workers(1)
            .bind("127.0.0.1:0")
            .unwrap();
        let mut c = Http1Client::connect(server.local_addr()).unwrap();
        let posted = c
            .request(
                "POST",
                "/v1/ingest/records?at=1",
                &[("Content-Type", "text/csv")],
                b"no,a\nyes,b\n",
            )
            .unwrap();
        assert_eq!(posted.status, 200, "{}", posted.text());

        let csv = c.get("/v1/audit?format=csv").unwrap();
        assert_eq!(csv.status, 200);
        assert_eq!(csv.header("content-type"), Some("text/csv"));
        assert!(csv.text().starts_with("protected attributes,"));

        let md = c
            .request("GET", "/v1/audit", &[("Accept", "text/markdown")], &[])
            .unwrap();
        assert_eq!(md.status, 200);
        assert!(md.text().contains("| protected attributes |"));

        let nope = c
            .request("GET", "/v1/audit", &[("Accept", "image/png")], &[])
            .unwrap();
        assert_eq!(nope.status, 406);
        server.shutdown();
    }
}
