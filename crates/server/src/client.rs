//! A minimal blocking HTTP/1.1 client, just enough to drive the server
//! from integration tests, benches, and examples over a keep-alive
//! connection — not a general-purpose HTTP client.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// One parsed response.
#[derive(Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Headers with lowercased names.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First header value by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text.
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A keep-alive connection to one server.
pub struct Http1Client {
    reader: BufReader<TcpStream>,
}

impl Http1Client {
    /// Connects to the server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            reader: BufReader::new(stream),
        })
    }

    /// Sends one request and reads the response. The connection stays
    /// open for the next call (the server honours keep-alive).
    pub fn request(
        &mut self,
        method: &str,
        target: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> std::io::Result<ClientResponse> {
        let mut head = format!("{method} {target} HTTP/1.1\r\nHost: localhost\r\n");
        for (name, value) in headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        if !body.is_empty() || method == "POST" || method == "PUT" {
            head.push_str(&format!("Content-Length: {}\r\n", body.len()));
        }
        head.push_str("\r\n");
        let stream = self.reader.get_mut();
        stream.write_all(head.as_bytes())?;
        stream.write_all(body)?;
        stream.flush()?;
        self.read_response()
    }

    /// Convenience for bodyless GETs.
    pub fn get(&mut self, target: &str) -> std::io::Result<ClientResponse> {
        self.request("GET", target, &[], &[])
    }

    fn read_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        Ok(line.trim_end_matches(['\r', '\n']).to_string())
    }

    fn read_response(&mut self) -> std::io::Result<ClientResponse> {
        let status_line = self.read_line()?;
        let status = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("bad status line: `{status_line}`"),
                )
            })?;
        let mut headers = Vec::new();
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
            }
        }
        // Interim 100 Continue responses carry no body; read the real one.
        if status == 100 {
            return self.read_response();
        }
        let length = headers
            .iter()
            .find(|(k, _)| k == "content-length")
            .and_then(|(_, v)| v.parse::<usize>().ok())
            .unwrap_or(0);
        let mut body = vec![0u8; length];
        self.reader.read_exact(&mut body)?;
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }
}
