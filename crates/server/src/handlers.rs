//! The router and endpoint handlers.
//!
//! The pipeline mirrors the OLAP-server shape: handler → core query over
//! the merged counts → format-negotiated rendering, with the heavy
//! lifting delegated to `df_core` (`Audit::of_counts`, `AuditReport` /
//! `MonitorSnapshot` renderers) so the handlers stay a thin mapping from
//! query strings to builder calls.

use crate::error::{df_error_response, error_response};
use crate::http::{parse_query, query_param, Request, Response};
use crate::negotiate::{response_format, NegotiateError};
use crate::state::ServerState;
use df_core::builder::{Audit, Baselines, Empirical, PosteriorSup, Smoothed, SubsetPolicy};
use df_core::metric::metric_from_tag;
use df_core::report::ResponseFormat;
use df_core::JointCounts;
use df_core::{DfError, Result};
use serde_json::Value;
use std::io::Cursor;
use std::time::Duration;

/// Dispatches one request to its handler.
pub fn route(state: &ServerState, req: &Request) -> Response {
    let params = parse_query(&req.query);
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/v1/healthz") => healthz(state),
        ("GET", "/v1/schema") => schema(state),
        ("GET", "/v1/audit") => audit(state, req, &params),
        ("GET", "/v1/monitor") => monitor(state, req, &params),
        ("GET", "/v1/metrics") => metrics(state, &params),
        ("GET", "/v1/trace") => trace(state, &params),
        ("POST", "/v1/ingest/records") => ingest_records(state, req, &params),
        ("POST", "/v1/ingest/snapshot") => ingest_snapshot(state, req, &params),
        (
            _,
            "/v1/healthz" | "/v1/schema" | "/v1/audit" | "/v1/monitor" | "/v1/metrics"
            | "/v1/trace",
        ) => not_allowed("GET"),
        (_, "/v1/ingest/records" | "/v1/ingest/snapshot") => not_allowed("POST"),
        _ => error_response(
            404,
            "not_found",
            &format!("no route for {} {}", req.method, req.path),
        ),
    }
}

fn not_allowed(allow: &str) -> Response {
    error_response(405, "method_not_allowed", &format!("allowed: {allow}"))
        .with_header("Allow", allow)
}

fn json_response(value: &Value) -> Response {
    let body = serde_json::to_string(value)
        .unwrap_or_default()
        .into_bytes();
    Response::new(200, "application/json", body)
}

fn healthz(state: &ServerState) -> Response {
    let fleet = state.fleet_telemetry();
    let depths = fleet
        .shards()
        .iter()
        .map(|s| int(s.queue_depth()))
        .collect();
    json_response(&Value::Obj(vec![
        ("status".to_string(), Value::Str("ok".to_string())),
        ("version".to_string(), int(state.version())),
        ("shards".to_string(), int(state.shards() as u64)),
        (
            "build".to_string(),
            Value::Str(env!("CARGO_PKG_VERSION").to_string()),
        ),
        (
            "uptime_seconds".to_string(),
            Value::Float(state.obs().uptime_seconds()),
        ),
        ("queue_depths".to_string(), Value::Arr(depths)),
        (
            "max_lag_seconds".to_string(),
            Value::Float(fleet.max_lag_seconds()),
        ),
    ]))
}

/// `GET /v1/metrics`: the registry scrape. Prometheus text by default,
/// `?format=json` for the structured rendering. Deliberately outside the
/// version-keyed response caches: a scrape must always see live values.
fn metrics(state: &ServerState, params: &[(String, String)]) -> Response {
    match query_param(params, "format") {
        None | Some("text") | Some("prometheus") => Response::new(
            200,
            "text/plain; version=0.0.4",
            state.obs().registry().render_text().into_bytes(),
        ),
        Some("json") => Response::new(
            200,
            "application/json",
            state.obs().registry().render_json().into_bytes(),
        ),
        Some(other) => error_response(
            400,
            "unknown_format",
            &format!("`{other}` is not a metrics format (text, prometheus, json)"),
        ),
    }
}

/// `GET /v1/trace`: recent (default) or slowest (`?order=slowest`)
/// request spans from the ring, newest last, at most `?n=` (default 20).
fn trace(state: &ServerState, params: &[(String, String)]) -> Response {
    let Some(ring) = state.obs().trace_ring() else {
        return json_response(&Value::Obj(vec![
            ("enabled".to_string(), Value::Bool(false)),
            ("spans".to_string(), Value::Arr(Vec::new())),
        ]));
    };
    let n = match query_param(params, "n").map(parse_usize) {
        None => 20,
        Some(Ok(n)) => n,
        Some(Err(resp)) => return *resp,
    };
    let spans = match query_param(params, "order") {
        None | Some("recent") => {
            let mut recent = ring.recent();
            if recent.len() > n {
                recent.drain(..recent.len() - n);
            }
            recent
        }
        Some("slowest") => ring.slowest(n),
        Some(other) => {
            return error_response(
                400,
                "unknown_order",
                &format!("`{other}` is not a span order (recent, slowest)"),
            )
        }
    };
    let spans = spans
        .into_iter()
        .map(|s| {
            Value::Obj(vec![
                ("name".to_string(), Value::Str(s.name)),
                (
                    "start_seconds".to_string(),
                    Value::Float(s.start_nanos as f64 * 1e-9),
                ),
                (
                    "duration_seconds".to_string(),
                    Value::Float(s.duration_nanos as f64 * 1e-9),
                ),
                (
                    "fields".to_string(),
                    Value::Obj(
                        s.fields
                            .into_iter()
                            .map(|(k, v)| (k, Value::Str(v)))
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    json_response(&Value::Obj(vec![
        ("enabled".to_string(), Value::Bool(true)),
        ("capacity".to_string(), int(ring.capacity() as u64)),
        ("dropped".to_string(), int(ring.dropped())),
        ("spans".to_string(), Value::Arr(spans)),
    ]))
}

fn parse_usize(raw: &str) -> std::result::Result<usize, Box<Response>> {
    raw.parse().map_err(|_| {
        Box::new(error_response(
            400,
            "bad_parameter",
            &format!("`{raw}` is not a non-negative integer"),
        ))
    })
}

fn int(v: u64) -> Value {
    Value::Int(i64::try_from(v).unwrap_or(i64::MAX))
}

fn schema(state: &ServerState) -> Response {
    let axes = state
        .axes()
        .iter()
        .map(|a| {
            Value::Obj(vec![
                ("name".to_string(), Value::Str(a.name().to_string())),
                (
                    "labels".to_string(),
                    Value::Arr(a.labels().iter().cloned().map(Value::Str).collect()),
                ),
            ])
        })
        .collect();
    let (window, bucket, decay) = state.window_config();
    json_response(&Value::Obj(vec![
        (
            "outcome".to_string(),
            Value::Str(state.outcome().to_string()),
        ),
        ("axes".to_string(), Value::Arr(axes)),
        ("estimator".to_string(), Value::Str(state.estimator_name())),
        ("metric".to_string(), Value::Str(state.metric_tag())),
        ("window_seconds".to_string(), Value::Float(window)),
        ("bucket_seconds".to_string(), Value::Float(bucket)),
        ("decay".to_string(), decay.map_or(Value::Null, Value::Float)),
        ("shards".to_string(), int(state.shards() as u64)),
        ("version".to_string(), int(state.version())),
        (
            "formats".to_string(),
            Value::Arr(
                ResponseFormat::ALL
                    .iter()
                    .map(|f| Value::Str(f.name().to_string()))
                    .collect(),
            ),
        ),
    ]))
}

/// Resolves the negotiated format or the error response to send instead.
fn negotiated(
    req: &Request,
    params: &[(String, String)],
) -> std::result::Result<ResponseFormat, Response> {
    response_format(req, params).map_err(|e| match e {
        NegotiateError::UnknownFormat(name) => error_response(
            400,
            "unknown_format",
            &format!("`{name}` is not a response format (json, csv, markdown, text)"),
        ),
        NegotiateError::NotAcceptable(accept) => error_response(
            406,
            "not_acceptable",
            &format!("cannot satisfy Accept: {accept}; offered: application/json, text/csv, text/markdown, text/plain"),
        ),
    })
}

fn parse_f64(params: &[(String, String)], name: &str, default: f64) -> Result<f64> {
    match query_param(params, name) {
        None => Ok(default),
        Some(raw) => raw
            .parse::<f64>()
            .map_err(|_| DfError::Invalid(format!("`{raw}` is not a number for `{name}`"))),
    }
}

fn parse_u64(params: &[(String, String)], name: &str, default: u64) -> Result<u64> {
    match query_param(params, name) {
        None => Ok(default),
        Some(raw) => raw
            .parse::<u64>()
            .map_err(|_| DfError::Invalid(format!("`{raw}` is not an integer for `{name}`"))),
    }
}

fn snapshot_timeout(state: &ServerState, params: &[(String, String)]) -> Result<Duration> {
    let default = state.snapshot_timeout().as_millis() as u64;
    Ok(Duration::from_millis(parse_u64(
        params,
        "timeout_ms",
        default,
    )?))
}

/// `GET /v1/audit`: a full batch audit over the merged fleet counts,
/// parameterized by query string. With no parameters, byte-identical to
/// `Audit::of_counts(window counts).run()` — the default estimators and
/// subset policy of the builder itself.
fn audit(state: &ServerState, req: &Request, params: &[(String, String)]) -> Response {
    let format = match negotiated(req, params) {
        Ok(f) => f,
        Err(resp) => return resp,
    };
    match audit_inner(state, req, params, format) {
        Ok(resp) => resp,
        Err(e) => df_error_response(&e),
    }
}

fn audit_inner(
    state: &ServerState,
    req: &Request,
    params: &[(String, String)],
    format: ResponseFormat,
) -> Result<Response> {
    let timeout = snapshot_timeout(state, params)?;
    let (version, snap) = state.merged_cached(timeout)?;
    let key = format!("{}?{}#{}", req.path, req.query, format.name());
    if let Some(resp) = state.cached_response(version, &key) {
        return Ok(resp);
    }

    let table = match query_param(params, "window").unwrap_or("sliding") {
        "sliding" => snap.window.to_table()?,
        "decayed" => snap
            .decayed
            .as_ref()
            .ok_or_else(|| {
                DfError::Invalid("window=decayed needs a server configured with decay".into())
            })?
            .to_table()?,
        other => {
            return Err(DfError::Invalid(format!(
                "`{other}` is not a window (sliding, decayed)"
            )))
        }
    };
    let mut counts = JointCounts::from_table(table, state.outcome())?;
    if let Some(attrs) = query_param(params, "attrs") {
        let names: Vec<&str> = attrs
            .split(',')
            .map(str::trim)
            .filter(|a| !a.is_empty())
            .collect();
        if names.is_empty() {
            return Err(DfError::Invalid("attrs= names no attributes".into()));
        }
        counts = counts.marginal_to(&names)?;
    }

    let mut audit = Audit::of_counts(counts)?;
    let alpha = parse_f64(params, "alpha", 1.0)?;
    let samples = parse_u64(params, "samples", 200)? as usize;
    let seed = parse_u64(params, "seed", 0)?;
    for (_, value) in params.iter().filter(|(k, _)| k == "estimator") {
        audit = match value.as_str() {
            "empirical" => audit.estimator(Empirical),
            "smoothed" => audit.estimator(Smoothed { alpha }),
            "posterior" | "posterior-sup" | "posterior_sup" => audit.estimator(PosteriorSup {
                alpha,
                samples,
                seed,
            }),
            other => {
                return Err(DfError::Invalid(format!(
                    "`{other}` is not an estimator (empirical, smoothed, posterior)"
                )))
            }
        };
    }
    if let Some(tag) = query_param(params, "metric") {
        audit = audit.boxed_metric(metric_from_tag(tag)?);
    }
    if let Some(policy) = query_param(params, "subsets") {
        audit = audit.subsets(parse_subsets(policy)?);
    }
    if let Some(label) = query_param(params, "positive") {
        audit = audit.baselines(Baselines::all().positive(label));
    }
    let report = audit.run()?;
    let resp = Response::new(200, format.mime(), report.render(format)?.into_bytes());
    state.store_response(version, &key, &resp);
    Ok(resp)
}

fn parse_subsets(policy: &str) -> Result<SubsetPolicy> {
    match policy {
        "all" => Ok(SubsetPolicy::All),
        "none" => Ok(SubsetPolicy::None),
        other => match other.strip_prefix("upto:").and_then(|k| k.parse().ok()) {
            Some(size) => Ok(SubsetPolicy::UpTo { size }),
            None => Err(DfError::Invalid(format!(
                "`{other}` is not a subset policy (all, none, upto:K)"
            ))),
        },
    }
}

/// `GET /v1/monitor`: the merged [`df_core::monitor::MonitorSnapshot`] —
/// windowed ε, trend, alerts, change-point alarms — in the negotiated
/// format.
fn monitor(state: &ServerState, req: &Request, params: &[(String, String)]) -> Response {
    let format = match negotiated(req, params) {
        Ok(f) => f,
        Err(resp) => return resp,
    };
    let inner = || -> Result<Response> {
        let timeout = snapshot_timeout(state, params)?;
        let (version, snap) = state.merged_cached(timeout)?;
        let key = format!("{}?{}#{}", req.path, req.query, format.name());
        if let Some(resp) = state.cached_response(version, &key) {
            return Ok(resp);
        }
        // `?metric=` re-derives every statistic of the merged snapshot
        // under another fairness metric; the stored counts are
        // metric-agnostic, so this is a pure recompute.
        let rendered = match query_param(params, "metric") {
            Some(tag) => snap.with_metric(tag, state.estimator())?.render(format)?,
            None => snap.render(format)?,
        };
        let resp = Response::new(200, format.mime(), rendered.into_bytes());
        state.store_response(version, &key, &resp);
        Ok(resp)
    };
    inner().unwrap_or_else(|e| df_error_response(&e))
}

/// `POST /v1/ingest/records`: a batch of labelled records, as a JSON
/// array of label rows (or `{"rows": […], "at": t}`) or a `text/csv`
/// body. Timestamp precedence: `?at=` query, then the JSON `at` field,
/// then the server wall clock. `?shard=` pins a shard; otherwise rows
/// round-robin.
fn ingest_records(state: &ServerState, req: &Request, params: &[(String, String)]) -> Response {
    match ingest_records_inner(state, req, params) {
        Ok(resp) => resp,
        Err(e) => df_error_response(&e),
    }
}

fn ingest_records_inner(
    state: &ServerState,
    req: &Request,
    params: &[(String, String)],
) -> Result<Response> {
    let content_type = req
        .header("content-type")
        .map(|c| {
            c.split(';')
                .next()
                .unwrap_or("")
                .trim()
                .to_ascii_lowercase()
        })
        .unwrap_or_else(|| "application/json".to_string());
    let (rows, body_at) = match content_type.as_str() {
        "application/json" | "text/json" | "" => parse_json_rows(&req.body)?,
        "text/csv" | "application/csv" => (parse_csv_rows(&req.body)?, None),
        other => {
            return Ok(error_response(
                415,
                "unsupported_media_type",
                &format!("`{other}` is not an ingest body type (application/json, text/csv)"),
            ))
        }
    };
    let at = match query_param(params, "at") {
        Some(raw) => raw
            .parse::<f64>()
            .map_err(|_| DfError::Invalid(format!("`{raw}` is not a timestamp for `at`")))?,
        None => body_at.unwrap_or_else(|| state.now_unix()),
    };
    let shard =
        match query_param(params, "shard") {
            Some(raw) => Some(raw.parse::<usize>().map_err(|_| {
                DfError::Invalid(format!("`{raw}` is not a shard index for `shard`"))
            })?),
            None => None,
        };
    let (accepted, shard) = state.ingest_rows(rows, at, shard)?;
    Ok(json_response(&Value::Obj(vec![
        ("accepted".to_string(), int(accepted as u64)),
        ("shard".to_string(), int(shard as u64)),
        ("at".to_string(), Value::Float(at)),
        ("version".to_string(), int(state.version())),
    ])))
}

/// Decodes a JSON ingest body into label rows plus the optional body
/// timestamp.
fn parse_json_rows(body: &[u8]) -> Result<(Vec<Vec<String>>, Option<f64>)> {
    let text = std::str::from_utf8(body)
        .map_err(|_| DfError::Invalid("JSON body is not valid UTF-8".into()))?;
    let value =
        serde_json::parse(text).map_err(|e| DfError::Invalid(format!("bad JSON body: {e}")))?;
    let (rows_value, at) = match &value {
        Value::Arr(_) => (&value, None),
        Value::Obj(_) => {
            let at = match value.field("at") {
                Value::Null => None,
                Value::Float(f) => Some(*f),
                Value::Int(i) => Some(*i as f64),
                other => {
                    return Err(DfError::Invalid(format!(
                        "`at` must be a number, found {}",
                        other.kind()
                    )))
                }
            };
            (value.field("rows"), at)
        }
        other => {
            return Err(DfError::Invalid(format!(
                "ingest body must be an array of label rows or an object \
                 with `rows`, found {}",
                other.kind()
            )))
        }
    };
    let outer = rows_value
        .as_arr("rows")
        .map_err(|e| DfError::Invalid(e.to_string()))?;
    let mut rows = Vec::with_capacity(outer.len());
    for (i, row) in outer.iter().enumerate() {
        let cells = row
            .as_arr("row")
            .map_err(|_| DfError::Invalid(format!("row {i} is not an array of labels")))?;
        let mut labels = Vec::with_capacity(cells.len());
        for cell in cells {
            match cell {
                Value::Str(s) => labels.push(s.clone()),
                other => {
                    return Err(DfError::Invalid(format!(
                        "row {i} holds a {} where a label string was expected",
                        other.kind()
                    )))
                }
            }
        }
        rows.push(labels);
    }
    Ok((rows, at))
}

/// Decodes a CSV ingest body (no header row) into label rows.
fn parse_csv_rows(body: &[u8]) -> Result<Vec<Vec<String>>> {
    let chunks = df_data::chunks::CsvChunks::new(
        Cursor::new(body),
        df_data::csv::CsvOptions::default(),
        1 << 20,
    )
    .map_err(|e| DfError::Invalid(e.to_string()))?;
    let mut rows = Vec::new();
    for chunk in chunks {
        let chunk = chunk.map_err(|e| DfError::Invalid(format!("bad CSV body: {e}")))?;
        rows.extend(chunk.rows().iter().cloned());
    }
    Ok(rows)
}

/// `POST /v1/ingest/snapshot`: one binary `DFLT` frame from a remote
/// replica (`?replica=` names it; last write wins). The frame is decoded
/// and schema-checked at the door; a corrupt frame is a `400` with the
/// typed `corrupt_counts` error.
fn ingest_snapshot(state: &ServerState, req: &Request, params: &[(String, String)]) -> Response {
    let replica = query_param(params, "replica").unwrap_or("default");
    match state.ingest_snapshot(&req.body, replica) {
        Ok((records_seen, window_rows)) => json_response(&Value::Obj(vec![
            ("replica".to_string(), Value::Str(replica.to_string())),
            ("records_seen".to_string(), int(records_seen)),
            ("window_rows".to_string(), int(window_rows)),
            ("version".to_string(), int(state.version())),
        ])),
        Err(e) => df_error_response(&e),
    }
}
