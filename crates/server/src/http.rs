//! A minimal, dependency-free HTTP/1.1 request parser and response writer.
//!
//! Scope: exactly what a counts-serving audit endpoint needs — request
//! line, headers, `Content-Length` bodies, keep-alive, and
//! `Expect: 100-continue`. No chunked transfer encoding (501), no TLS.
//! Limits are explicit: a header-block cap and a configurable body cap,
//! each mapping to its own typed error so the connection handler can
//! answer with the right status before closing.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Cap on the request line plus headers, pre-body. Oversized header
/// blocks answer `431`.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Granularity of the read poll loop: how often a blocked worker rechecks
/// the shutdown flag and the idle deadline.
pub const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method token as sent (`GET`, `POST`, …).
    pub method: String,
    /// Percent-decoded path component, query stripped.
    pub path: String,
    /// Raw query string without the leading `?` (possibly empty).
    pub query: String,
    /// Headers with lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Whether the connection may serve another request afterwards.
    pub keep_alive: bool,
}

impl Request {
    /// First header value by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read. Each variant carries enough to write
/// a correct error response (where the peer is still listening).
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request line, header, or body framing — `400`.
    BadRequest(String),
    /// Declared body larger than the configured cap — `413`.
    BodyTooLarge {
        /// The configured cap the declaration exceeded.
        limit: usize,
    },
    /// Request line + headers exceeded [`MAX_HEAD_BYTES`] — `431`.
    HeadersTooLarge,
    /// A feature this parser deliberately lacks — `501`.
    NotImplemented(String),
}

/// Outcome of waiting for the next request on a keep-alive connection.
pub enum NextRequest {
    /// A complete request.
    Ready(Box<Request>),
    /// Close quietly: clean EOF, idle expiry, or server shutdown.
    Close,
}

/// Reads one request off the stream. The stream must have a read timeout
/// of [`POLL_INTERVAL`] set; between polls the loop honours `shutdown`
/// and gives up after `idle` with no complete request. A declared body
/// over `max_body` is refused *before* it is read.
pub fn read_request(
    stream: &mut TcpStream,
    max_body: usize,
    shutdown: &AtomicBool,
    idle: Duration,
) -> Result<NextRequest, HttpError> {
    let start = Instant::now();
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::HeadersTooLarge);
        }
        if shutdown.load(Ordering::Relaxed) || start.elapsed() > idle {
            return Ok(NextRequest::Close);
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(NextRequest::Close), // EOF (possibly mid-head)
            Ok(n) => match chunk.get(..n) {
                Some(read) => buf.extend_from_slice(read),
                None => return Ok(NextRequest::Close),
            },
            Err(e) if would_block(&e) => continue,
            Err(_) => return Ok(NextRequest::Close),
        }
    };

    let head = buf
        .get(..head_end)
        .ok_or_else(|| HttpError::BadRequest("request head out of bounds".into()))?;
    let head = std::str::from_utf8(head)
        .map_err(|_| HttpError::BadRequest("request head is not valid UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(HttpError::BadRequest(format!(
                "malformed request line: `{request_line}`"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!(
            "unsupported protocol version `{version}`"
        )));
    }
    let http10 = version == "HTTP/1.0";

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadRequest(format!(
                "malformed header line: `{line}`"
            )));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let header = |name: &str| {
        headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    };

    if header("transfer-encoding").is_some() {
        return Err(HttpError::NotImplemented(
            "chunked transfer encoding is not supported; send Content-Length".into(),
        ));
    }
    let content_length = match header("content-length") {
        None => 0usize,
        Some(raw) => raw.trim().parse::<usize>().map_err(|_| {
            HttpError::BadRequest(format!("bad Content-Length: `{raw}` is not a length"))
        })?,
    };
    if content_length > max_body {
        return Err(HttpError::BodyTooLarge { limit: max_body });
    }
    if header("expect").is_some_and(|e| e.eq_ignore_ascii_case("100-continue")) {
        // df-lint: allow(must-use-results) -- interim 100 Continue is best effort; the real response still goes out
        let _ = stream.write_all(b"HTTP/1.1 100 Continue\r\n\r\n");
    }

    let keep_alive = match header("connection").map(str::to_ascii_lowercase) {
        Some(c) if c == "close" => false,
        Some(c) if c == "keep-alive" => true,
        _ => !http10,
    };
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let method = method.to_string();
    let path = percent_decode(path);
    let query = query.to_string();

    // Body: whatever followed the head in the buffer, then the remainder
    // off the socket.
    let mut body = buf.split_off(head_end);
    body.drain(..4); // the CRLFCRLF itself
    while body.len() < content_length {
        if shutdown.load(Ordering::Relaxed) || start.elapsed() > idle {
            return Err(HttpError::BadRequest(
                "timed out reading request body".into(),
            ));
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                return Err(HttpError::BadRequest(format!(
                    "body truncated: Content-Length {content_length}, got {}",
                    body.len()
                )))
            }
            Ok(n) => match chunk.get(..n) {
                Some(read) => body.extend_from_slice(read),
                None => {
                    return Err(HttpError::BadRequest(
                        "read reported more bytes than the buffer holds".into(),
                    ))
                }
            },
            Err(e) if would_block(&e) => continue,
            Err(e) => return Err(HttpError::BadRequest(format!("read error: {e}"))),
        }
    }
    body.truncate(content_length);

    Ok(NextRequest::Ready(Box::new(Request {
        method,
        path,
        query,
        headers,
        body,
        keep_alive,
    })))
}

fn would_block(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// One response ready to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: String,
    /// Response body.
    pub body: Vec<u8>,
    /// Extra headers (e.g. `Allow` on 405).
    pub extra_headers: Vec<(String, String)>,
}

impl Response {
    /// A response with a body and content type.
    pub fn new(status: u16, content_type: impl Into<String>, body: Vec<u8>) -> Self {
        Self {
            status,
            content_type: content_type.into(),
            body,
            extra_headers: Vec::new(),
        }
    }

    /// Attaches an extra header.
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.extra_headers.push((name.into(), value.into()));
        self
    }
}

/// The reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        406 => "Not Acceptable",
        413 => "Payload Too Large",
        415 => "Unsupported Media Type",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serializes the response, always with an explicit `Content-Length` and
/// a `Connection` header reflecting `keep_alive`.
pub fn write_response(
    stream: &mut TcpStream,
    resp: &Response,
    keep_alive: bool,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in &resp.extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&resp.body)?;
    stream.flush()
}

/// Decodes `%XX` escapes and `+` (as space) in a path or query component.
/// Invalid escapes pass through verbatim rather than erroring — the router
/// compares decoded strings, so a junk escape simply fails to match.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let hex = |b: u8| (b as char).to_digit(16);
    let mut i = 0;
    while let Some(&b) = bytes.get(i) {
        match b {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => match (
                bytes.get(i + 1).copied().and_then(hex),
                bytes.get(i + 2).copied().and_then(hex),
            ) {
                (Some(hi), Some(lo)) => {
                    out.push((hi * 16 + lo) as u8);
                    i += 3;
                }
                _ => {
                    out.push(b'%');
                    i += 1;
                }
            },
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Parses a query string into decoded `(name, value)` pairs, preserving
/// duplicates and order.
pub fn parse_query(query: &str) -> Vec<(String, String)> {
    query
        .split('&')
        .filter(|p| !p.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(pair), String::new()),
        })
        .collect()
}

/// First value for a query parameter.
pub fn query_param<'a>(params: &'a [(String, String)], name: &str) -> Option<&'a str> {
    params
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%2Cb+c"), "a,b c");
        assert_eq!(percent_decode("plain"), "plain");
        // Invalid escapes pass through instead of erroring.
        assert_eq!(percent_decode("50%"), "50%");
        assert_eq!(percent_decode("%zz"), "%zz");
    }

    #[test]
    fn query_parsing_keeps_duplicates_in_order() {
        let q = parse_query("estimator=empirical&estimator=smoothed&alpha=1.5&flag");
        assert_eq!(q.len(), 4);
        assert_eq!(query_param(&q, "estimator"), Some("empirical"));
        assert_eq!(query_param(&q, "alpha"), Some("1.5"));
        assert_eq!(query_param(&q, "flag"), Some(""));
        assert_eq!(query_param(&q, "absent"), None);
    }

    #[test]
    fn head_end_detection() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nbody"), Some(14));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n"), None);
    }
}
