//! CSV round-trip correctness sweep: for arbitrary records — fields
//! containing delimiters, quotes, CR, LF, CRLF, leading/trailing spaces,
//! and empty strings — `write_records` → parse must reproduce the records
//! exactly, through both the batch reader and the streaming chunk reader,
//! which must also agree with each other record for record.
//!
//! Case budget: `PROPTEST_CASES` (default 64) — see CI.

use df_data::chunks::CsvChunks;
use df_data::csv::{read_records, write_records, CsvOptions};
use proptest::prelude::*;

/// Field characters chosen to hit every parser edge: delimiters, quotes,
/// bare CR, bare LF (CRLF arises from adjacency), spaces, and plain text.
const PALETTE: &[char] = &[
    ',', ';', '"', '\n', '\r', ' ', 'a', 'B', '7', '-', '.', '|', '#',
];

fn field(bytes: &[u32]) -> String {
    bytes
        .iter()
        .map(|&b| PALETTE[b as usize % PALETTE.len()])
        .collect()
}

fn exact_opts(delimiter: char) -> CsvOptions {
    CsvOptions {
        delimiter,
        trim: false,
        skip_empty_lines: false,
        comment_char: None,
    }
}

fn stream_all(bytes: &[u8], opts: &CsvOptions, chunk_rows: usize) -> Vec<Vec<String>> {
    let chunks = CsvChunks::new(bytes, opts.clone(), chunk_rows).unwrap();
    let mut rows = Vec::new();
    for chunk in chunks {
        rows.extend(chunk.unwrap().rows().to_vec());
    }
    rows
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(64),
    })]

    /// write → read is the identity on arbitrary records, for multiple
    /// delimiters, via the batch reader AND the streaming reader.
    #[test]
    fn arbitrary_records_roundtrip_exactly(
        raw in proptest::collection::vec(
            proptest::collection::vec(
                proptest::collection::vec(any::<u32>(), 0..10),
                1..5,
            ),
            1..10,
        ),
        delim_pick in any::<u32>(),
        chunk_rows in 1usize..8,
    ) {
        let delimiter = [',', ';', '\t'][delim_pick as usize % 3];
        let records: Vec<Vec<String>> = raw
            .iter()
            .map(|rec| rec.iter().map(|f| field(f)).collect())
            .collect();

        let mut bytes = Vec::new();
        write_records(&mut bytes, &records, delimiter).unwrap();
        let opts = exact_opts(delimiter);

        let batch = read_records(bytes.as_slice(), &opts).unwrap();
        prop_assert_eq!(&batch, &records);

        let streamed = stream_all(&bytes, &opts, chunk_rows);
        prop_assert_eq!(&streamed, &records);
    }

    /// CRLF-terminated input parses identically in batch and streaming
    /// mode, and quoted fields keep their interior CR/LF bytes verbatim.
    #[test]
    fn crlf_terminated_input_is_read_consistently(
        raw in proptest::collection::vec(
            proptest::collection::vec(
                proptest::collection::vec(any::<u32>(), 0..8),
                1..4,
            ),
            1..8,
        ),
        chunk_rows in 1usize..6,
        trim in any::<bool>(),
    ) {
        let records: Vec<Vec<String>> = raw
            .iter()
            .map(|rec| rec.iter().map(|f| field(f)).collect())
            .collect();
        // Re-terminate every physical record with CRLF: the writer emits
        // LF, so swap the unquoted terminators (quoted newlines were
        // escaped into quotes and are untouched by this transform
        // because the writer always quotes fields containing LF).
        let mut lf = Vec::new();
        write_records(&mut lf, &records, ',').unwrap();
        let mut crlf = Vec::new();
        let mut in_quotes = false;
        for &b in &lf {
            if b == b'"' {
                in_quotes = !in_quotes;
            }
            if b == b'\n' && !in_quotes {
                crlf.push(b'\r');
            }
            crlf.push(b);
        }

        let opts = CsvOptions {
            trim,
            skip_empty_lines: false,
            comment_char: None,
            ..CsvOptions::default()
        };
        let batch = read_records(crlf.as_slice(), &opts).unwrap();
        let streamed = stream_all(&crlf, &opts, chunk_rows);
        prop_assert_eq!(&batch, &streamed);

        // Without trimming, the CRLF terminators must vanish and the
        // field content must match the LF parse exactly.
        if !trim {
            let via_lf = read_records(lf.as_slice(), &opts).unwrap();
            prop_assert_eq!(&batch, &via_lf);
        }
    }

    /// Fields that need quoting (delimiter/quote/newline content) are the
    /// writer's responsibility: a parse-back sweep over quote-heavy
    /// single-field records.
    #[test]
    fn quote_heavy_fields_survive(
        pieces in proptest::collection::vec(any::<u32>(), 0..24),
    ) {
        // Interleave hostile substrings with palette chars.
        let hostile = ["\"\"", "\r\n", "\"x\"", ",\"", "\n\"", "\r"];
        let mut f = String::new();
        for (i, &b) in pieces.iter().enumerate() {
            if i % 3 == 0 {
                f.push_str(hostile[b as usize % hostile.len()]);
            } else {
                f.push(PALETTE[b as usize % PALETTE.len()]);
            }
        }
        let records = vec![vec![f.clone(), "tail".to_string()]];
        let mut bytes = Vec::new();
        write_records(&mut bytes, &records, ',').unwrap();
        let back = read_records(bytes.as_slice(), &exact_opts(',')).unwrap();
        prop_assert_eq!(back, records);
    }
}
