//! Property-based tests of the data-frame and CSV substrate.

use df_data::csv::{read_str, write_records, CsvOptions};
use df_data::frame::{Column, DataFrame};
use df_prob::rng::Pcg32;
use proptest::prelude::*;

fn frame_strategy() -> impl Strategy<Value = DataFrame> {
    (2usize..60).prop_flat_map(|n| {
        (
            proptest::collection::vec(0u32..4, n),
            proptest::collection::vec(-100.0f64..100.0, n),
        )
            .prop_map(|(cats, nums)| {
                let labels: Vec<String> = cats.iter().map(|&c| format!("c{c}")).collect();
                DataFrame::new(vec![
                    Column::categorical("cat", &labels),
                    Column::numeric("num", nums),
                ])
                .unwrap()
            })
    })
}

proptest! {
    #[test]
    fn contingency_total_equals_row_count(frame in frame_strategy()) {
        let t = frame.contingency(&["cat"]).unwrap();
        prop_assert!((t.total() - frame.n_rows() as f64).abs() < 1e-12);
    }

    #[test]
    fn filter_then_take_composes(frame in frame_strategy()) {
        let mask: Vec<bool> = (0..frame.n_rows()).map(|i| i % 2 == 0).collect();
        let filtered = frame.filter(&mask).unwrap();
        prop_assert_eq!(filtered.n_rows(), mask.iter().filter(|&&b| b).count());
        // Values are preserved in order.
        let orig = frame.column("num").unwrap().as_numeric().unwrap();
        let kept = filtered.column("num").unwrap().as_numeric().unwrap();
        let expect: Vec<f64> = orig
            .iter()
            .zip(&mask)
            .filter_map(|(&v, &keep)| keep.then_some(v))
            .collect();
        prop_assert_eq!(kept, &expect[..]);
    }

    #[test]
    fn split_train_test_partitions(frame in frame_strategy(), seed in any::<u64>()) {
        let mut rng = Pcg32::new(seed);
        let (train, test) = frame.split_train_test(0.7, &mut rng).unwrap();
        prop_assert_eq!(train.n_rows() + test.n_rows(), frame.n_rows());
        // Multiset of numeric values preserved.
        let mut all: Vec<f64> = train.column("num").unwrap().as_numeric().unwrap().to_vec();
        all.extend(test.column("num").unwrap().as_numeric().unwrap());
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut orig = frame.column("num").unwrap().as_numeric().unwrap().to_vec();
        orig.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(all, orig);
    }

    #[test]
    fn group_indices_are_in_range_and_consistent(frame in frame_strategy()) {
        let (indices, labels) = frame.group_indices(&["cat"]).unwrap();
        prop_assert_eq!(indices.len(), frame.n_rows());
        for &g in &indices {
            prop_assert!(g < labels.len());
        }
        // Tallying indices reproduces the contingency marginal.
        let t = frame.contingency(&["cat"]).unwrap();
        let mut tallies = vec![0.0; labels.len()];
        for &g in &indices {
            tallies[g] += 1.0;
        }
        for (k, &count) in tallies.iter().enumerate() {
            prop_assert!((t.get(&[k]) - count).abs() < 1e-12);
        }
    }

    #[test]
    fn csv_roundtrip_preserves_fields(
        records in proptest::collection::vec(
            proptest::collection::vec("[a-zA-Z0-9 ,\"]{0,12}", 1..5),
            1..20,
        )
    ) {
        // Rows must have uniform arity for a meaningful table, but the CSV
        // layer itself is arity-agnostic — test raw record fidelity.
        let mut buf = Vec::new();
        write_records(&mut buf, &records, ',').unwrap();
        let text = String::from_utf8(buf).unwrap();
        let opts = CsvOptions {
            trim: false,
            skip_empty_lines: false,
            ..CsvOptions::default()
        };
        let parsed = read_str(&text, &opts).unwrap();
        prop_assert_eq!(parsed, records);
    }
}
