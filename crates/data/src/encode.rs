//! Feature encoding: one-hot expansion and standardization into dense
//! matrices for the learners.

use crate::error::{DataError, Result};
use crate::frame::DataFrame;

/// A dense row-major feature matrix with named columns.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureMatrix {
    /// Feature names, one per column.
    pub names: Vec<String>,
    /// Row-major data, `n_rows × names.len()`.
    pub data: Vec<f64>,
    /// Number of rows.
    pub n_rows: usize,
}

impl FeatureMatrix {
    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.names.len()
    }

    /// A row slice.
    pub fn row(&self, i: usize) -> &[f64] {
        let w = self.names.len();
        &self.data[i * w..(i + 1) * w]
    }
}

/// Per-column encoding strategy fitted on a training frame.
#[derive(Debug, Clone, PartialEq)]
enum ColumnEncoder {
    /// One indicator per vocabulary entry except the first (reference)
    /// category, avoiding the dummy-variable trap.
    OneHot { column: String, vocab: Vec<String> },
    /// (x - mean) / std, with std floored at 1e-12.
    Standardize { column: String, mean: f64, std: f64 },
}

/// Encoder mapping a [`DataFrame`] to a [`FeatureMatrix`].
///
/// Fit on training data; applying to a frame with unseen categorical values
/// maps them to the all-zeros (reference) encoding, the standard convention
/// for held-out data.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameEncoder {
    encoders: Vec<ColumnEncoder>,
    feature_names: Vec<String>,
}

impl FrameEncoder {
    /// Fits an encoder over the named columns of `frame`: categorical
    /// columns become dropped-first one-hot blocks, numeric columns are
    /// standardized.
    pub fn fit(frame: &DataFrame, columns: &[&str]) -> Result<FrameEncoder> {
        if columns.is_empty() {
            return Err(DataError::Invalid("no feature columns selected".into()));
        }
        let mut encoders = Vec::with_capacity(columns.len());
        let mut feature_names = Vec::new();
        for &name in columns {
            let col = frame.column(name)?;
            if col.is_categorical() {
                let (_, vocab) = col.as_categorical()?;
                for v in &vocab[1..] {
                    feature_names.push(format!("{name}={v}"));
                }
                encoders.push(ColumnEncoder::OneHot {
                    column: name.to_string(),
                    vocab: vocab.to_vec(),
                });
            } else {
                let xs = col.as_numeric()?;
                let n = xs.len().max(1) as f64;
                let mean = xs.iter().sum::<f64>() / n;
                let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
                feature_names.push(name.to_string());
                encoders.push(ColumnEncoder::Standardize {
                    column: name.to_string(),
                    mean,
                    std: var.sqrt().max(1e-12),
                });
            }
        }
        Ok(FrameEncoder {
            encoders,
            feature_names,
        })
    }

    /// Names of the produced features, in column order.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Encodes a frame (which must contain all fitted columns).
    pub fn transform(&self, frame: &DataFrame) -> Result<FeatureMatrix> {
        let n_rows = frame.n_rows();
        let width = self.feature_names.len();
        let mut data = vec![0.0; n_rows * width];
        let mut offset = 0usize;
        for enc in &self.encoders {
            match enc {
                ColumnEncoder::OneHot { column, vocab } => {
                    let (codes, frame_vocab) = frame.column(column)?.as_categorical()?;
                    // Map the frame's codes into the *fitted* vocabulary.
                    let remap: Vec<Option<usize>> = frame_vocab
                        .iter()
                        .map(|v| vocab.iter().position(|u| u == v))
                        .collect();
                    let block = vocab.len() - 1;
                    for (row, &code) in codes.iter().enumerate() {
                        if let Some(fit_ix) = remap[code as usize] {
                            if fit_ix > 0 {
                                data[row * width + offset + fit_ix - 1] = 1.0;
                            }
                        }
                        // Unseen values: all-zero block (reference category).
                    }
                    offset += block;
                }
                ColumnEncoder::Standardize { column, mean, std } => {
                    let xs = frame.column(column)?.as_numeric()?;
                    for (row, &x) in xs.iter().enumerate() {
                        data[row * width + offset] = (x - mean) / std;
                    }
                    offset += 1;
                }
            }
        }
        debug_assert_eq!(offset, width);
        Ok(FeatureMatrix {
            names: self.feature_names.clone(),
            data,
            n_rows,
        })
    }
}

/// Extracts a binary label vector from a categorical column, mapping
/// `positive_label` to 1.0 and everything else to 0.0. Errors if the
/// positive label never occurs in the column's vocabulary.
pub fn binary_labels(frame: &DataFrame, column: &str, positive_label: &str) -> Result<Vec<f64>> {
    let (codes, vocab) = frame.column(column)?.as_categorical()?;
    let pos = vocab
        .iter()
        .position(|v| v == positive_label)
        .ok_or_else(|| {
            DataError::Invalid(format!(
                "label `{positive_label}` not found in column `{column}`"
            ))
        })?;
    Ok(codes
        .iter()
        .map(|&c| if c as usize == pos { 1.0 } else { 0.0 })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Column;

    fn frame() -> DataFrame {
        DataFrame::new(vec![
            Column::categorical("color", &["red", "blue", "red", "green"]),
            Column::numeric("x", vec![2.0, 4.0, 6.0, 8.0]),
            Column::categorical("y", &["no", "yes", "yes", "no"]),
        ])
        .unwrap()
    }

    #[test]
    fn one_hot_drops_first_category() {
        let f = frame();
        let enc = FrameEncoder::fit(&f, &["color"]).unwrap();
        assert_eq!(enc.feature_names(), &["color=blue", "color=green"]);
        let m = enc.transform(&f).unwrap();
        assert_eq!(m.n_features(), 2);
        assert_eq!(m.row(0), &[0.0, 0.0]); // red = reference
        assert_eq!(m.row(1), &[1.0, 0.0]); // blue
        assert_eq!(m.row(3), &[0.0, 1.0]); // green
    }

    #[test]
    fn standardization_zero_mean_unit_variance() {
        let f = frame();
        let enc = FrameEncoder::fit(&f, &["x"]).unwrap();
        let m = enc.transform(&f).unwrap();
        let col: Vec<f64> = (0..4).map(|i| m.row(i)[0]).collect();
        let mean: f64 = col.iter().sum::<f64>() / 4.0;
        let var: f64 = col.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / 4.0;
        assert!(mean.abs() < 1e-12);
        assert!((var - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mixed_columns_concatenate_in_order() {
        let f = frame();
        let enc = FrameEncoder::fit(&f, &["x", "color"]).unwrap();
        assert_eq!(enc.feature_names()[0], "x");
        assert_eq!(enc.feature_names().len(), 3);
        let m = enc.transform(&f).unwrap();
        assert_eq!(m.n_features(), 3);
    }

    #[test]
    fn unseen_category_maps_to_reference() {
        let train = frame();
        let enc = FrameEncoder::fit(&train, &["color"]).unwrap();
        let test = DataFrame::new(vec![Column::categorical("color", &["purple", "blue"])]).unwrap();
        let m = enc.transform(&test).unwrap();
        assert_eq!(m.row(0), &[0.0, 0.0]);
        assert_eq!(m.row(1), &[1.0, 0.0]);
    }

    #[test]
    fn constant_numeric_column_does_not_divide_by_zero() {
        let f = DataFrame::new(vec![Column::numeric("k", vec![5.0, 5.0, 5.0])]).unwrap();
        let enc = FrameEncoder::fit(&f, &["k"]).unwrap();
        let m = enc.transform(&f).unwrap();
        assert!(m.data.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn binary_labels_extraction() {
        let f = frame();
        let ys = binary_labels(&f, "y", "yes").unwrap();
        assert_eq!(ys, vec![0.0, 1.0, 1.0, 0.0]);
        assert!(binary_labels(&f, "y", "maybe").is_err());
        assert!(binary_labels(&f, "x", "yes").is_err());
    }

    #[test]
    fn fit_requires_columns() {
        assert!(FrameEncoder::fit(&frame(), &[]).is_err());
        assert!(FrameEncoder::fit(&frame(), &["missing"]).is_err());
    }
}
