//! A small columnar data frame.
//!
//! Columns are either categorical (interned `u32` codes plus a vocabulary)
//! or numeric (`f64`). The frame supports the operations the experiments
//! need — selection, masking, deterministic splits, group-by tallies into
//! contingency tables — without trying to be a general dataframe library.

use crate::error::{DataError, Result};
use df_prob::contingency::{Axis, ContingencyTable};
use df_prob::rng::Pcg32;
use std::collections::HashMap;

/// A hashed string interner that assigns dense `u32` codes in
/// first-occurrence order.
///
/// This is the single interning primitive of the data layer: categorical
/// column construction and the replay-log schema writer both go through
/// it, so vocabularies are always ordered by first appearance — the
/// property the axis/code contract of the streaming engine relies on.
/// Lookups are O(1) amortized, replacing the old O(n·|vocab|) linear scan
/// that made high-cardinality columns quadratic to intern.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    map: HashMap<String, u32>,
    vocab: Vec<String>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns one value, returning its code. A value seen before gets its
    /// existing code; a new value gets the next dense code.
    pub fn intern(&mut self, value: &str) -> u32 {
        if let Some(&code) = self.map.get(value) {
            return code;
        }
        let code = self.vocab.len() as u32;
        self.map.insert(value.to_string(), code);
        self.vocab.push(value.to_string());
        code
    }

    /// Number of distinct values interned so far.
    pub fn len(&self) -> usize {
        self.vocab.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.vocab.is_empty()
    }

    /// The vocabulary in first-occurrence order; `intern`'s return values
    /// index into it.
    pub fn vocab(&self) -> &[String] {
        &self.vocab
    }

    /// Consumes the interner, yielding the vocabulary in first-occurrence
    /// order.
    pub fn into_vocab(self) -> Vec<String> {
        self.vocab
    }
}

/// Storage for one column.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// Categorical values as codes into `vocab`.
    Categorical {
        /// Per-row codes.
        codes: Vec<u32>,
        /// Ordered distinct values; `codes[i]` indexes here.
        vocab: Vec<String>,
    },
    /// Numeric values.
    Numeric(Vec<f64>),
}

/// A named column.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    name: String,
    data: ColumnData,
}

impl Column {
    /// Creates a categorical column by interning string values (hashed
    /// lookup, codes in first-occurrence order — see [`Interner`]).
    pub fn categorical<S: AsRef<str>>(name: impl Into<String>, values: &[S]) -> Column {
        let mut interner = Interner::new();
        let mut codes = Vec::with_capacity(values.len());
        for v in values {
            codes.push(interner.intern(v.as_ref()));
        }
        Column {
            name: name.into(),
            data: ColumnData::Categorical {
                codes,
                vocab: interner.into_vocab(),
            },
        }
    }

    /// Creates a categorical column from codes and an explicit vocabulary
    /// (codes must index into the vocab).
    pub fn categorical_from_codes(
        name: impl Into<String>,
        codes: Vec<u32>,
        vocab: Vec<String>,
    ) -> Result<Column> {
        if let Some(&bad) = codes.iter().find(|&&c| c as usize >= vocab.len()) {
            return Err(DataError::Invalid(format!(
                "code {bad} out of range for vocab of {} entries",
                vocab.len()
            )));
        }
        Ok(Column {
            name: name.into(),
            data: ColumnData::Categorical { codes, vocab },
        })
    }

    /// Creates a numeric column.
    pub fn numeric(name: impl Into<String>, values: Vec<f64>) -> Column {
        Column {
            name: name.into(),
            data: ColumnData::Numeric(values),
        }
    }

    /// Column name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match &self.data {
            ColumnData::Categorical { codes, .. } => codes.len(),
            ColumnData::Numeric(v) => v.len(),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The underlying storage.
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// True for categorical columns.
    pub fn is_categorical(&self) -> bool {
        matches!(self.data, ColumnData::Categorical { .. })
    }

    /// Categorical accessors, or an error for numeric columns.
    pub fn as_categorical(&self) -> Result<(&[u32], &[String])> {
        match &self.data {
            ColumnData::Categorical { codes, vocab } => Ok((codes, vocab)),
            ColumnData::Numeric(_) => Err(DataError::WrongColumnType {
                column: self.name.clone(),
                expected: "categorical",
            }),
        }
    }

    /// Numeric accessor, or an error for categorical columns.
    pub fn as_numeric(&self) -> Result<&[f64]> {
        match &self.data {
            ColumnData::Numeric(v) => Ok(v),
            ColumnData::Categorical { .. } => Err(DataError::WrongColumnType {
                column: self.name.clone(),
                expected: "numeric",
            }),
        }
    }

    /// String value of a row (numeric values are formatted).
    pub fn value_str(&self, row: usize) -> String {
        match &self.data {
            ColumnData::Categorical { codes, vocab } => vocab[codes[row] as usize].clone(),
            ColumnData::Numeric(v) => format!("{}", v[row]),
        }
    }

    fn take(&self, indices: &[usize]) -> Column {
        let data = match &self.data {
            ColumnData::Categorical { codes, vocab } => ColumnData::Categorical {
                codes: indices.iter().map(|&i| codes[i]).collect(),
                vocab: vocab.clone(),
            },
            ColumnData::Numeric(v) => ColumnData::Numeric(indices.iter().map(|&i| v[i]).collect()),
        };
        Column {
            name: self.name.clone(),
            data,
        }
    }
}

/// A columnar data frame: equal-length named columns.
#[derive(Debug, Clone, PartialEq)]
pub struct DataFrame {
    columns: Vec<Column>,
    n_rows: usize,
}

impl DataFrame {
    /// Creates a frame; all columns must have the same length and unique
    /// names, and at least one column is required.
    pub fn new(columns: Vec<Column>) -> Result<DataFrame> {
        let n_rows = match columns.first() {
            Some(c) => c.len(),
            None => {
                return Err(DataError::Invalid(
                    "a frame needs at least one column".into(),
                ))
            }
        };
        for (i, c) in columns.iter().enumerate() {
            if c.len() != n_rows {
                return Err(DataError::Invalid(format!(
                    "column `{}` has {} rows, expected {n_rows}",
                    c.name(),
                    c.len()
                )));
            }
            if columns[..i].iter().any(|d| d.name() == c.name()) {
                return Err(DataError::Invalid(format!(
                    "duplicate column name `{}`",
                    c.name()
                )));
            }
        }
        Ok(DataFrame { columns, n_rows })
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// Column names in order.
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(Column::name).collect()
    }

    /// Looks up a column by name.
    pub fn column(&self, name: &str) -> Result<&Column> {
        self.columns
            .iter()
            .find(|c| c.name() == name)
            .ok_or_else(|| DataError::UnknownColumn(name.to_string()))
    }

    /// All columns.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Adds a column (same length, fresh name required).
    pub fn add_column(&mut self, column: Column) -> Result<()> {
        if column.len() != self.n_rows {
            return Err(DataError::Invalid(format!(
                "column `{}` has {} rows, expected {}",
                column.name(),
                column.len(),
                self.n_rows
            )));
        }
        if self.columns.iter().any(|c| c.name() == column.name()) {
            return Err(DataError::Invalid(format!(
                "duplicate column name `{}`",
                column.name()
            )));
        }
        self.columns.push(column);
        Ok(())
    }

    /// Projects onto the named columns, in the given order.
    pub fn select(&self, names: &[&str]) -> Result<DataFrame> {
        let columns: Vec<Column> = names
            .iter()
            .map(|n| self.column(n).cloned())
            .collect::<Result<_>>()?;
        DataFrame::new(columns)
    }

    /// Keeps rows at the given indices (duplicates and reordering allowed).
    pub fn take(&self, indices: &[usize]) -> Result<DataFrame> {
        if let Some(&bad) = indices.iter().find(|&&i| i >= self.n_rows) {
            return Err(DataError::Invalid(format!(
                "row index {bad} out of range ({} rows)",
                self.n_rows
            )));
        }
        DataFrame::new(self.columns.iter().map(|c| c.take(indices)).collect())
    }

    /// Keeps rows where `mask` is true (`mask.len()` must equal `n_rows`).
    pub fn filter(&self, mask: &[bool]) -> Result<DataFrame> {
        if mask.len() != self.n_rows {
            return Err(DataError::Invalid(format!(
                "mask has {} entries, expected {}",
                mask.len(),
                self.n_rows
            )));
        }
        let indices: Vec<usize> = mask
            .iter()
            .enumerate()
            .filter_map(|(i, &keep)| keep.then_some(i))
            .collect();
        self.take(&indices)
    }

    /// Deterministic head/tail split: first `n_head` rows and the rest.
    pub fn split_at(&self, n_head: usize) -> Result<(DataFrame, DataFrame)> {
        if n_head > self.n_rows {
            return Err(DataError::Invalid(format!(
                "cannot split {} rows at {n_head}",
                self.n_rows
            )));
        }
        let head: Vec<usize> = (0..n_head).collect();
        let tail: Vec<usize> = (n_head..self.n_rows).collect();
        Ok((self.take(&head)?, self.take(&tail)?))
    }

    /// Shuffled split into train/test with the given train fraction,
    /// deterministic under the supplied generator.
    pub fn split_train_test(
        &self,
        train_fraction: f64,
        rng: &mut Pcg32,
    ) -> Result<(DataFrame, DataFrame)> {
        if !(0.0..=1.0).contains(&train_fraction) {
            return Err(DataError::Invalid(format!(
                "train_fraction must lie in [0,1], got {train_fraction}"
            )));
        }
        let mut indices: Vec<usize> = (0..self.n_rows).collect();
        rng.shuffle(&mut indices);
        let n_train = (self.n_rows as f64 * train_fraction).round() as usize;
        let (train_idx, test_idx) = indices.split_at(n_train.min(self.n_rows));
        Ok((self.take(train_idx)?, self.take(test_idx)?))
    }

    /// Tallies the named categorical columns into a contingency table whose
    /// axes use each column's vocabulary (in interning order).
    pub fn contingency(&self, columns: &[&str]) -> Result<ContingencyTable> {
        if columns.is_empty() {
            return Err(DataError::Invalid("need at least one column".into()));
        }
        let cols: Vec<(&[u32], &[String])> = columns
            .iter()
            .map(|n| self.column(n)?.as_categorical())
            .collect::<Result<_>>()?;
        let axes: Vec<Axis> = columns
            .iter()
            .zip(&cols)
            .map(|(name, (_, vocab))| Axis::new(*name, vocab.to_vec()))
            .collect::<std::result::Result<_, _>>()?;
        let mut table = ContingencyTable::zeros(axes)?;
        let mut idx = vec![0usize; columns.len()];
        for row in 0..self.n_rows {
            for (slot, (codes, _)) in idx.iter_mut().zip(&cols) {
                *slot = codes[row] as usize;
            }
            table.increment(&idx);
        }
        Ok(table)
    }

    /// Per-row group index over the named categorical columns, mixed-radix
    /// with the first column most significant — matching
    /// `ProtectedSpace::flatten` in df-core. Also returns the group count
    /// and per-group labels (`"col=value"` joined by `, `).
    pub fn group_indices(&self, columns: &[&str]) -> Result<(Vec<usize>, Vec<String>)> {
        if columns.is_empty() {
            return Err(DataError::Invalid("need at least one column".into()));
        }
        let cols: Vec<(&[u32], &[String])> = columns
            .iter()
            .map(|n| self.column(n)?.as_categorical())
            .collect::<Result<_>>()?;
        let arities: Vec<usize> = cols.iter().map(|(_, v)| v.len()).collect();
        let n_groups: usize = arities.iter().product();

        let mut indices = Vec::with_capacity(self.n_rows);
        for row in 0..self.n_rows {
            let mut flat = 0usize;
            for ((codes, _), &arity) in cols.iter().zip(&arities) {
                flat = flat * arity + codes[row] as usize;
            }
            indices.push(flat);
        }
        let mut labels = Vec::with_capacity(n_groups);
        for g in 0..n_groups {
            let mut rem = g;
            let mut parts = vec![String::new(); columns.len()];
            for (k, ((_, vocab), name)) in cols.iter().zip(columns).enumerate().rev() {
                let v = rem % vocab.len();
                rem /= vocab.len();
                parts[k] = format!("{name}={}", vocab[v]);
            }
            labels.push(parts.join(", "));
        }
        Ok((indices, labels))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DataFrame {
        DataFrame::new(vec![
            Column::categorical("color", &["red", "blue", "red", "green"]),
            Column::numeric("x", vec![1.0, 2.0, 3.0, 4.0]),
            Column::categorical("y", &["no", "yes", "yes", "no"]),
        ])
        .unwrap()
    }

    #[test]
    fn interning_preserves_first_seen_order() {
        let c = Column::categorical("c", &["b", "a", "b", "c"]);
        let (codes, vocab) = c.as_categorical().unwrap();
        assert_eq!(vocab, &["b".to_string(), "a".to_string(), "c".to_string()]);
        assert_eq!(codes, &[0, 1, 0, 2]);
    }

    #[test]
    fn hashed_interner_matches_first_occurrence_order_at_high_cardinality() {
        // A deliberately shuffled high-cardinality stream: the hashed
        // interner must hand out codes in first-occurrence order, exactly
        // as the old linear scan did, independent of hash iteration order.
        let values: Vec<String> = (0..5_000)
            .map(|i| format!("v{}", (i * 7919) % 997))
            .collect();
        let c = Column::categorical("c", &values);
        let (codes, vocab) = c.as_categorical().unwrap();
        // Reference interning via the O(n²) scan the interner replaced.
        let mut ref_vocab: Vec<String> = Vec::new();
        let mut ref_codes: Vec<u32> = Vec::new();
        for v in &values {
            let code = match ref_vocab.iter().position(|u| u == v) {
                Some(i) => i as u32,
                None => {
                    ref_vocab.push(v.clone());
                    (ref_vocab.len() - 1) as u32
                }
            };
            ref_codes.push(code);
        }
        assert_eq!(vocab, &ref_vocab[..]);
        assert_eq!(codes, &ref_codes[..]);
        // Interner is also usable standalone (the replay schema writer
        // path), with idempotent lookups.
        let mut i = Interner::new();
        assert!(i.is_empty());
        assert_eq!(i.intern("x"), 0);
        assert_eq!(i.intern("y"), 1);
        assert_eq!(i.intern("x"), 0);
        assert_eq!(i.len(), 2);
        assert_eq!(i.vocab(), &["x".to_string(), "y".to_string()]);
        assert_eq!(i.into_vocab(), vec!["x".to_string(), "y".to_string()]);
    }

    #[test]
    fn construction_validates() {
        assert!(DataFrame::new(vec![]).is_err());
        let a = Column::numeric("a", vec![1.0]);
        let b = Column::numeric("b", vec![1.0, 2.0]);
        assert!(DataFrame::new(vec![a.clone(), b]).is_err());
        let a2 = Column::numeric("a", vec![2.0]);
        assert!(DataFrame::new(vec![a, a2]).is_err());
    }

    #[test]
    fn categorical_from_codes_validates() {
        assert!(Column::categorical_from_codes("c", vec![0, 2], vec!["x".into()]).is_err());
        let c =
            Column::categorical_from_codes("c", vec![0, 0], vec!["x".into(), "y".into()]).unwrap();
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn typed_accessors() {
        let f = sample();
        assert!(f.column("x").unwrap().as_numeric().is_ok());
        assert!(f.column("x").unwrap().as_categorical().is_err());
        assert!(f.column("color").unwrap().as_categorical().is_ok());
        assert!(f.column("missing").is_err());
        assert_eq!(f.column("color").unwrap().value_str(3), "green");
        assert_eq!(f.column("x").unwrap().value_str(0), "1");
    }

    #[test]
    fn select_reorders() {
        let f = sample().select(&["y", "x"]).unwrap();
        assert_eq!(f.column_names(), vec!["y", "x"]);
        assert!(sample().select(&["nope"]).is_err());
    }

    #[test]
    fn take_and_filter() {
        let f = sample();
        let t = f.take(&[2, 0]).unwrap();
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.column("x").unwrap().as_numeric().unwrap(), &[3.0, 1.0]);
        let m = f.filter(&[true, false, false, true]).unwrap();
        assert_eq!(m.n_rows(), 2);
        assert_eq!(m.column("color").unwrap().value_str(1), "green");
        assert!(f.take(&[9]).is_err());
        assert!(f.filter(&[true]).is_err());
    }

    #[test]
    fn split_at_partitions() {
        let (head, tail) = sample().split_at(3).unwrap();
        assert_eq!(head.n_rows(), 3);
        assert_eq!(tail.n_rows(), 1);
        assert!(sample().split_at(9).is_err());
    }

    #[test]
    fn split_train_test_is_a_partition() {
        let f = sample();
        let mut rng = Pcg32::new(5);
        let (train, test) = f.split_train_test(0.5, &mut rng).unwrap();
        assert_eq!(train.n_rows() + test.n_rows(), f.n_rows());
        // Values are preserved as a multiset.
        let mut all: Vec<f64> = train.column("x").unwrap().as_numeric().unwrap().to_vec();
        all.extend(test.column("x").unwrap().as_numeric().unwrap());
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(all, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn contingency_counts_match() {
        let f = sample();
        let t = f.contingency(&["y", "color"]).unwrap();
        assert_eq!(t.ndim(), 2);
        let y_axis = &t.axes()[0];
        assert_eq!(y_axis.labels(), &["no".to_string(), "yes".to_string()]);
        // (no, red) appears once; (yes, red) once; (yes, blue) once; (no, green) once.
        let ix = |y: &str, c: &str| {
            let yi = t.axes()[0].index_of(y).unwrap();
            let ci = t.axes()[1].index_of(c).unwrap();
            t.get(&[yi, ci])
        };
        assert_eq!(ix("no", "red"), 1.0);
        assert_eq!(ix("yes", "red"), 1.0);
        assert_eq!(ix("yes", "blue"), 1.0);
        assert_eq!(ix("no", "green"), 1.0);
        assert_eq!(ix("no", "blue"), 0.0);
        assert_eq!(t.total(), 4.0);
    }

    #[test]
    fn contingency_rejects_numeric() {
        assert!(sample().contingency(&["x"]).is_err());
        assert!(sample().contingency(&[]).is_err());
    }

    #[test]
    fn group_indices_are_mixed_radix() {
        let f = sample();
        let (idx, labels) = f.group_indices(&["y", "color"]).unwrap();
        // y vocab [no, yes], color vocab [red, blue, green] → 6 groups.
        assert_eq!(labels.len(), 6);
        assert_eq!(labels[0], "y=no, color=red");
        assert_eq!(labels[5], "y=yes, color=green");
        // Row 0: (no, red) → 0; row 1: (yes, blue) → 1*3+1=4.
        assert_eq!(idx[0], 0);
        assert_eq!(idx[1], 4);
    }

    #[test]
    fn add_column_validates() {
        let mut f = sample();
        assert!(f.add_column(Column::numeric("x", vec![0.0; 4])).is_err());
        assert!(f.add_column(Column::numeric("z", vec![0.0; 3])).is_err());
        assert!(f.add_column(Column::numeric("z", vec![0.0; 4])).is_ok());
        assert_eq!(f.n_cols(), 4);
    }
}
