//! The synthetic Adult-census generator.
//!
//! Samples full 15-column UCI-format records from the calibrated model of
//! [`super::calibration`]: protected attributes and income from the exact
//! ground-truth joint, and non-protected features conditionally on
//! (income, gender) with class-conditional distributions chosen so that a
//! linear classifier reaches an error rate in the neighbourhood of the
//! paper's ≈15 %.
//!
//! The generator is deterministic given its seed; the default configuration
//! reproduces the paper's 32,561 / 16,281 train/test split sizes.

use super::calibration::{income_rate, GENDERS, P_MALE_GIVEN_RACE, P_RACE, P_US_GIVEN_RACE};
use super::{AdultDataset, INCOME_GT_50K, INCOME_LE_50K, TEST_SIZE, TRAIN_SIZE};
use crate::error::Result;
use crate::frame::{Column, DataFrame};
use df_prob::dist::{Categorical, Normal, Sampler};
use df_prob::rng::Pcg32;

/// How the protected-attribute × income cells are allocated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellAllocation {
    /// Largest-remainder quota: each of the 32 (gender, race, nationality,
    /// income) cells receives its *expected* count, so the empirical joint
    /// equals the calibrated population joint up to rounding and the
    /// dataset's ε matches the paper's Table 2 values directly. This is the
    /// default — the synthetic substitute's job is to reproduce the paper's
    /// joint distribution, and multinomial noise in the rare intersections
    /// would otherwise inflate the extreme log-ratios (see EXPERIMENTS.md).
    Quota,
    /// Plain iid multinomial sampling of the cells; ε then carries the
    /// sampling noise of a real survey of the same size. Used by the
    /// sample-size ablation.
    Iid,
}

/// Configuration for the synthesizer.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Seed for the deterministic generator.
    pub seed: u64,
    /// Training rows to generate.
    pub n_train: usize,
    /// Test rows to generate.
    pub n_test: usize,
    /// Cell-allocation strategy (see [`CellAllocation`]).
    pub allocation: CellAllocation,
}

impl Default for SynthConfig {
    fn default() -> Self {
        Self {
            seed: 0xADu64,
            n_train: TRAIN_SIZE,
            n_test: TEST_SIZE,
            allocation: CellAllocation::Quota,
        }
    }
}

/// Raw race labels before the §6 merge; merged "Other" splits back into the
/// UCI's `Amer-Indian-Eskimo` and `Other`.
const RAW_RACES: [&str; 5] = [
    "White",
    "Black",
    "Asian-Pac-Islander",
    "Amer-Indian-Eskimo",
    "Other",
];

/// Fraction of merged-Other individuals labelled `Amer-Indian-Eskimo`
/// (311 of 582 in the real training split).
const AMER_INDIAN_SHARE: f64 = 0.53;

const WORKCLASSES: [&str; 6] = [
    "Private",
    "Self-emp-not-inc",
    "Self-emp-inc",
    "Local-gov",
    "State-gov",
    "Federal-gov",
];

const MARITAL: [&str; 6] = [
    "Married-civ-spouse",
    "Never-married",
    "Divorced",
    "Separated",
    "Widowed",
    "Married-spouse-absent",
];

const OCCUPATIONS: [&str; 12] = [
    "Exec-managerial",
    "Prof-specialty",
    "Sales",
    "Craft-repair",
    "Adm-clerical",
    "Other-service",
    "Machine-op-inspct",
    "Transport-moving",
    "Handlers-cleaners",
    "Tech-support",
    "Farming-fishing",
    "Protective-serv",
];

const RELATIONSHIPS: [&str; 6] = [
    "Husband",
    "Wife",
    "Not-in-family",
    "Own-child",
    "Unmarried",
    "Other-relative",
];

const EDUCATION_BY_NUM: [&str; 16] = [
    "Preschool",
    "1st-4th",
    "5th-6th",
    "7th-8th",
    "9th",
    "10th",
    "11th",
    "12th",
    "HS-grad",
    "Some-college",
    "Assoc-voc",
    "Assoc-acdm",
    "Bachelors",
    "Masters",
    "Prof-school",
    "Doctorate",
];

/// Country pools per merged race for Non-US individuals (weights are
/// normalized by the categorical sampler).
fn country_pool(race: usize) -> (&'static [&'static str], &'static [f64]) {
    match race {
        0 => (
            &[
                "Germany", "Canada", "England", "Italy", "Poland", "Cuba", "Ireland", "France",
                "Portugal", "Mexico",
            ],
            &[0.16, 0.14, 0.12, 0.10, 0.10, 0.09, 0.05, 0.05, 0.05, 0.14],
        ),
        1 => (
            &[
                "Jamaica",
                "Haiti",
                "Dominican-Republic",
                "Trinadad&Tobago",
                "South",
            ],
            &[0.35, 0.25, 0.15, 0.10, 0.15],
        ),
        2 => (
            &[
                "Philippines",
                "India",
                "China",
                "Vietnam",
                "Japan",
                "Taiwan",
                "South",
            ],
            &[0.32, 0.20, 0.15, 0.12, 0.08, 0.06, 0.07],
        ),
        _ => (
            &[
                "Mexico",
                "Puerto-Rico",
                "El-Salvador",
                "Guatemala",
                "Nicaragua",
            ],
            &[0.60, 0.15, 0.10, 0.08, 0.07],
        ),
    }
}

/// Distributions reused across rows; built once per generation run.
struct FeatureModel {
    age_pos: Normal,
    age_neg: Normal,
    edu_pos: Normal,
    edu_neg: Normal,
    hours_pos: Normal,
    hours_neg: Normal,
    gain_amount_pos: Normal,
    gain_amount_neg: Normal,
    loss_amount_pos: Normal,
    loss_amount_neg: Normal,
    fnlwgt: Normal,
    /// P(any capital gain) per class `[neg, pos]`.
    gain_prob: [f64; 2],
    /// P(any capital loss) per class `[neg, pos]`.
    loss_prob: [f64; 2],
    workclass: [Categorical; 2],
    marital: [[Categorical; 2]; 2],
    occupation: [[Categorical; 2]; 2],
    relationship_unmarried: [Categorical; 2],
}

/// Class-separation strength of the non-protected features, in `[0, 1]`.
///
/// 1.0 keeps the full class-conditional contrast (logistic-regression test
/// error ≈ 11 %); 0.0 collapses every feature onto the pooled distribution
/// (error = base rate ≈ 24 %). The default is tuned so the Table 3 logistic
/// regression lands in the paper's ≈15 % error band.
pub const FEATURE_SIGNAL: f64 = 0.80;

/// Base rate used for pooling class-conditional distributions.
const POOL_POS: f64 = 0.24;

/// Shrinks a (pos, neg) pair of class-conditional values toward their
/// pooled mean by `FEATURE_SIGNAL`.
fn shrink_pair(pos: f64, neg: f64) -> (f64, f64) {
    let pooled = POOL_POS * pos + (1.0 - POOL_POS) * neg;
    (
        pooled + FEATURE_SIGNAL * (pos - pooled),
        pooled + FEATURE_SIGNAL * (neg - pooled),
    )
}

/// Shrinks class-conditional categorical weights toward the pooled weights.
fn shrink_weights(pos: &[f64], neg: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let mut out_pos = Vec::with_capacity(pos.len());
    let mut out_neg = Vec::with_capacity(neg.len());
    for (&p, &n) in pos.iter().zip(neg) {
        let (sp, sn) = shrink_pair(p, n);
        out_pos.push(sp.max(1e-4));
        out_neg.push(sn.max(1e-4));
    }
    (out_pos, out_neg)
}

impl FeatureModel {
    fn new() -> Self {
        let cat = |w: &[f64]| Categorical::new(w).expect("static weights");
        // Full-contrast class-conditional means; shrunk by FEATURE_SIGNAL.
        let (age_p, age_n) = shrink_pair(44.2, 36.8);
        let (edu_p, edu_n) = shrink_pair(12.6, 9.6);
        let (hrs_p, hrs_n) = shrink_pair(45.4, 38.8);
        let (gain_p, gain_n) = shrink_pair(8.9, 7.3);

        let (wc_p, wc_n) = shrink_weights(
            &[0.63, 0.12, 0.08, 0.07, 0.05, 0.05],
            &[0.76, 0.07, 0.02, 0.06, 0.05, 0.04],
        );
        let (mar_pm, mar_nm) = shrink_weights(
            &[0.90, 0.04, 0.04, 0.01, 0.005, 0.005],
            &[0.45, 0.38, 0.10, 0.03, 0.02, 0.02],
        );
        let (mar_pf, mar_nf) = shrink_weights(
            &[0.55, 0.20, 0.17, 0.03, 0.04, 0.01],
            &[0.25, 0.38, 0.20, 0.06, 0.09, 0.02],
        );
        let (occ_pm, occ_nm) = shrink_weights(
            &[
                0.28, 0.22, 0.12, 0.12, 0.04, 0.02, 0.04, 0.06, 0.02, 0.04, 0.02, 0.02,
            ],
            &[
                0.10, 0.08, 0.11, 0.20, 0.06, 0.09, 0.09, 0.09, 0.09, 0.03, 0.04, 0.02,
            ],
        );
        let (occ_pf, occ_nf) = shrink_weights(
            &[
                0.25, 0.35, 0.08, 0.02, 0.14, 0.03, 0.02, 0.01, 0.01, 0.07, 0.01, 0.01,
            ],
            &[
                0.07, 0.12, 0.12, 0.02, 0.28, 0.22, 0.07, 0.01, 0.02, 0.04, 0.02, 0.01,
            ],
        );
        let (rel_p, rel_n) = shrink_weights(&[0.72, 0.06, 0.17, 0.05], &[0.50, 0.28, 0.17, 0.05]);

        Self {
            age_pos: Normal::new(age_p, 11.5).expect("static"),
            age_neg: Normal::new(age_n, 13.9).expect("static"),
            edu_pos: Normal::new(edu_p, 2.5).expect("static"),
            edu_neg: Normal::new(edu_n, 2.5).expect("static"),
            hours_pos: Normal::new(hrs_p, 11.3).expect("static"),
            hours_neg: Normal::new(hrs_n, 12.3).expect("static"),
            gain_amount_pos: Normal::new(gain_p, 1.15).expect("static"),
            gain_amount_neg: Normal::new(gain_n, 1.15).expect("static"),
            loss_amount_pos: Normal::new(1920.0, 250.0).expect("static"),
            loss_amount_neg: Normal::new(1750.0, 350.0).expect("static"),
            fnlwgt: Normal::new(11.9, 0.65).expect("static"),
            gain_prob: {
                let (p, n) = shrink_pair(0.20, 0.035);
                [n, p]
            },
            loss_prob: {
                let (p, n) = shrink_pair(0.055, 0.02);
                [n, p]
            },
            workclass: [cat(&wc_n), cat(&wc_p)],
            marital: [
                // [y][gender]
                [cat(&mar_nm), cat(&mar_nf)],
                [cat(&mar_pm), cat(&mar_pf)],
            ],
            occupation: [[cat(&occ_nm), cat(&occ_nf)], [cat(&occ_pm), cat(&occ_pf)]],
            relationship_unmarried: [
                // Indices into RELATIONSHIPS[2..]: Not-in-family, Own-child,
                // Unmarried, Other-relative.
                cat(&rel_n),
                cat(&rel_p),
            ],
        }
    }
}

/// One generated record, as column values in UCI order.
struct Row {
    age: f64,
    workclass: u32,
    fnlwgt: f64,
    education_num: f64,
    marital: u32,
    occupation: u32,
    relationship: u32,
    race_raw: u32,
    gender: u32,
    capital_gain: f64,
    capital_loss: f64,
    hours: f64,
    country: String,
    income: u32,
}

/// Draws one (gender, race, nationality, income) cell iid from the
/// calibrated joint.
fn sample_cell_iid(rng: &mut Pcg32) -> (usize, usize, usize, usize) {
    let r = {
        let u = rng.next_f64();
        let mut acc = 0.0;
        let mut pick = P_RACE.len() - 1;
        for (i, &p) in P_RACE.iter().enumerate() {
            acc += p;
            if u < acc {
                pick = i;
                break;
            }
        }
        pick
    };
    let n = usize::from(rng.next_f64() >= P_US_GIVEN_RACE[r]); // 0 = US
    let g = usize::from(rng.next_f64() >= P_MALE_GIVEN_RACE[r]); // 0 = Male
    let y = usize::from(rng.next_f64() < income_rate(g, r, n));
    (g, r, n, y)
}

/// Largest-remainder (Hamilton) apportionment of `total` rows to the 32
/// cells of the calibrated joint, shuffled into a random order.
fn quota_cells(rng: &mut Pcg32, total: usize) -> Vec<(usize, usize, usize, usize)> {
    use super::calibration::joint_probability;
    // Exact cell probabilities.
    let mut cells: Vec<((usize, usize, usize, usize), f64)> = Vec::with_capacity(32);
    for g in 0..2 {
        for r in 0..4 {
            for n in 0..2 {
                let ps = joint_probability(g, r, n);
                let py = income_rate(g, r, n);
                cells.push(((g, r, n, 1), ps * py));
                cells.push(((g, r, n, 0), ps * (1.0 - py)));
            }
        }
    }
    // Floor allocation, then distribute the shortfall by largest remainder.
    let mut counts: Vec<usize> = Vec::with_capacity(cells.len());
    let mut remainders: Vec<(usize, f64)> = Vec::with_capacity(cells.len());
    let mut allocated = 0usize;
    for (i, (_, p)) in cells.iter().enumerate() {
        let exact = p * total as f64;
        let floor = exact.floor() as usize;
        counts.push(floor);
        allocated += floor;
        remainders.push((i, exact - floor as f64));
    }
    remainders.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite remainders"));
    for &(i, _) in remainders.iter().take(total - allocated) {
        counts[i] += 1;
    }
    let mut deck = Vec::with_capacity(total);
    for (i, &(cell, _)) in cells.iter().enumerate() {
        deck.extend(std::iter::repeat_n(cell, counts[i]));
    }
    rng.shuffle(&mut deck);
    deck
}

fn sample_row(rng: &mut Pcg32, model: &FeatureModel, cell: (usize, usize, usize, usize)) -> Row {
    let (g, r, n, y) = cell;

    // Raw race: split merged Other back into the two UCI categories.
    let race_raw = match r {
        0 => 0u32,
        1 => 1,
        2 => 2,
        _ => {
            if rng.next_f64() < AMER_INDIAN_SHARE {
                3
            } else {
                4
            }
        }
    };

    let country = if n == 0 {
        "United-States".to_string()
    } else {
        let (pool, weights) = country_pool(r);
        let dist = Categorical::new(weights).expect("static weights");
        pool[dist.sample(rng)].to_string()
    };

    let (age_d, edu_d, hours_d) = if y == 1 {
        (&model.age_pos, &model.edu_pos, &model.hours_pos)
    } else {
        (&model.age_neg, &model.edu_neg, &model.hours_neg)
    };
    let age = age_d.sample(rng).round().clamp(17.0, 90.0);
    let education_num = edu_d.sample(rng).round().clamp(1.0, 16.0);
    let hours = hours_d.sample(rng).round().clamp(1.0, 99.0);

    let capital_gain = {
        let p = model.gain_prob[y];
        if rng.next_f64() < p {
            let amt = if y == 1 {
                model.gain_amount_pos.sample(rng)
            } else {
                model.gain_amount_neg.sample(rng)
            };
            amt.exp().round().clamp(100.0, 99_999.0)
        } else {
            0.0
        }
    };
    let capital_loss = {
        let p = model.loss_prob[y];
        if rng.next_f64() < p {
            let amt = if y == 1 {
                model.loss_amount_pos.sample(rng)
            } else {
                model.loss_amount_neg.sample(rng)
            };
            amt.round().clamp(50.0, 4500.0)
        } else {
            0.0
        }
    };

    let workclass = model.workclass[y].sample(rng) as u32;
    let marital = model.marital[y][g].sample(rng) as u32;
    let occupation = model.occupation[y][g].sample(rng) as u32;
    let relationship = if marital == 0 {
        // Married-civ-spouse → Husband / Wife by gender.
        if g == 0 {
            0
        } else {
            1
        }
    } else {
        // 2 + offset into {Not-in-family, Own-child, Unmarried, Other-relative}.
        2 + model.relationship_unmarried[y].sample(rng) as u32
    };
    let fnlwgt = model
        .fnlwgt
        .sample(rng)
        .exp()
        .round()
        .clamp(12_285.0, 1_484_705.0);

    Row {
        age,
        workclass,
        fnlwgt,
        education_num,
        marital,
        occupation,
        relationship,
        race_raw,
        gender: g as u32,
        capital_gain,
        capital_loss,
        hours,
        country,
        income: y as u32,
    }
}

fn frame_from_rows(rows: Vec<Row>) -> Result<DataFrame> {
    let n = rows.len();
    let mut age = Vec::with_capacity(n);
    let mut workclass = Vec::with_capacity(n);
    let mut fnlwgt = Vec::with_capacity(n);
    let mut education = Vec::with_capacity(n);
    let mut education_num = Vec::with_capacity(n);
    let mut marital = Vec::with_capacity(n);
    let mut occupation = Vec::with_capacity(n);
    let mut relationship = Vec::with_capacity(n);
    let mut race = Vec::with_capacity(n);
    let mut sex = Vec::with_capacity(n);
    let mut capital_gain = Vec::with_capacity(n);
    let mut capital_loss = Vec::with_capacity(n);
    let mut hours = Vec::with_capacity(n);
    let mut country: Vec<String> = Vec::with_capacity(n);
    let mut income = Vec::with_capacity(n);

    for row in rows {
        age.push(row.age);
        workclass.push(row.workclass);
        fnlwgt.push(row.fnlwgt);
        education.push((row.education_num as u32) - 1);
        education_num.push(row.education_num);
        marital.push(row.marital);
        occupation.push(row.occupation);
        relationship.push(row.relationship);
        race.push(row.race_raw);
        sex.push(row.gender);
        capital_gain.push(row.capital_gain);
        capital_loss.push(row.capital_loss);
        hours.push(row.hours);
        country.push(row.country);
        income.push(row.income);
    }

    let vocab = |labels: &[&str]| labels.iter().map(|s| s.to_string()).collect::<Vec<_>>();
    DataFrame::new(vec![
        Column::numeric("age", age),
        Column::categorical_from_codes("workclass", workclass, vocab(&WORKCLASSES))?,
        Column::numeric("fnlwgt", fnlwgt),
        Column::categorical_from_codes("education", education, vocab(&EDUCATION_BY_NUM))?,
        Column::numeric("education-num", education_num),
        Column::categorical_from_codes("marital-status", marital, vocab(&MARITAL))?,
        Column::categorical_from_codes("occupation", occupation, vocab(&OCCUPATIONS))?,
        Column::categorical_from_codes("relationship", relationship, vocab(&RELATIONSHIPS))?,
        Column::categorical_from_codes("race", race, vocab(&RAW_RACES))?,
        Column::categorical_from_codes("sex", sex, vocab(&GENDERS))?,
        Column::numeric("capital-gain", capital_gain),
        Column::numeric("capital-loss", capital_loss),
        Column::numeric("hours-per-week", hours),
        Column::categorical("native-country", &country),
        Column::categorical_from_codes(
            "income",
            income,
            vec![INCOME_LE_50K.to_string(), INCOME_GT_50K.to_string()],
        )?,
    ])
}

/// Generates the synthetic Adult benchmark with the given configuration.
pub fn generate(config: &SynthConfig) -> Result<AdultDataset> {
    let mut rng = Pcg32::with_stream(config.seed, 0x00AD_017A);
    let model = FeatureModel::new();
    let split = |n: usize, rng: &mut Pcg32| -> Vec<Row> {
        let cells: Vec<(usize, usize, usize, usize)> = match config.allocation {
            CellAllocation::Quota => quota_cells(rng, n),
            CellAllocation::Iid => (0..n).map(|_| sample_cell_iid(rng)).collect(),
        };
        cells
            .into_iter()
            .map(|cell| sample_row(rng, &model, cell))
            .collect()
    };
    let train_rows = split(config.n_train, &mut rng);
    let test_rows = split(config.n_test, &mut rng);
    Ok(AdultDataset {
        train: frame_from_rows(train_rows)?,
        test: frame_from_rows(test_rows)?,
    })
}

/// Generates the standard benchmark (paper's split sizes, default seed).
pub fn generate_default() -> Result<AdultDataset> {
    generate(&SynthConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adult::{COLUMNS, PROTECTED_COLUMNS};

    fn small() -> AdultDataset {
        generate(&SynthConfig {
            seed: 7,
            n_train: 8000,
            n_test: 2000,
            ..SynthConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn schema_matches_uci() {
        let d = small();
        assert_eq!(d.train.column_names(), COLUMNS.to_vec());
        assert_eq!(d.train.n_rows(), 8000);
        assert_eq!(d.test.n_rows(), 2000);
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = SynthConfig {
            seed: 11,
            n_train: 500,
            n_test: 100,
            ..SynthConfig::default()
        };
        let a = generate(&cfg).unwrap();
        let b = generate(&cfg).unwrap();
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
        let c = generate(&SynthConfig { seed: 12, ..cfg }).unwrap();
        assert_ne!(a.train, c.train);
    }

    #[test]
    fn numeric_ranges_are_plausible() {
        let d = small();
        let ages = d.train.column("age").unwrap().as_numeric().unwrap();
        assert!(ages.iter().all(|&a| (17.0..=90.0).contains(&a)));
        let hours = d
            .train
            .column("hours-per-week")
            .unwrap()
            .as_numeric()
            .unwrap();
        assert!(hours.iter().all(|&h| (1.0..=99.0).contains(&h)));
        let gains = d
            .train
            .column("capital-gain")
            .unwrap()
            .as_numeric()
            .unwrap();
        assert!(gains
            .iter()
            .all(|&g| g == 0.0 || (100.0..=99_999.0).contains(&g)));
        let mostly_zero = gains.iter().filter(|&&g| g == 0.0).count();
        assert!(mostly_zero as f64 / gains.len() as f64 > 0.85);
    }

    #[test]
    fn education_string_matches_education_num() {
        let d = small();
        let nums = d
            .train
            .column("education-num")
            .unwrap()
            .as_numeric()
            .unwrap();
        let (codes, vocab) = d
            .train
            .column("education")
            .unwrap()
            .as_categorical()
            .unwrap();
        for (i, &num) in nums.iter().enumerate().take(200) {
            assert_eq!(vocab[codes[i] as usize], EDUCATION_BY_NUM[num as usize - 1]);
        }
    }

    #[test]
    fn relationship_consistent_with_marital_and_gender() {
        let d = small();
        let (mar, mar_vocab) = d
            .train
            .column("marital-status")
            .unwrap()
            .as_categorical()
            .unwrap();
        let (rel, rel_vocab) = d
            .train
            .column("relationship")
            .unwrap()
            .as_categorical()
            .unwrap();
        let (sex, sex_vocab) = d.train.column("sex").unwrap().as_categorical().unwrap();
        for i in 0..d.train.n_rows() {
            let married = mar_vocab[mar[i] as usize] == "Married-civ-spouse";
            let rel_v = rel_vocab[rel[i] as usize].as_str();
            if married {
                let expect = if sex_vocab[sex[i] as usize] == "Male" {
                    "Husband"
                } else {
                    "Wife"
                };
                assert_eq!(rel_v, expect, "row {i}");
            } else {
                assert!(rel_v != "Husband" && rel_v != "Wife", "row {i}");
            }
        }
    }

    #[test]
    fn base_rate_converges_to_calibration() {
        let d = generate(&SynthConfig {
            seed: 3,
            n_train: 40_000,
            n_test: 100,
            allocation: CellAllocation::Iid,
        })
        .unwrap();
        let (codes, vocab) = d.train.column("income").unwrap().as_categorical().unwrap();
        let pos_code = vocab.iter().position(|v| v == ">50K").unwrap() as u32;
        let rate = codes.iter().filter(|&&c| c == pos_code).count() as f64 / codes.len() as f64;
        let truth = super::super::calibration::overall_positive_rate();
        assert!((rate - truth).abs() < 0.01, "rate={rate} truth={truth}");
    }

    #[test]
    fn quota_allocation_matches_population_exactly() {
        // Under quota allocation, the empirical base rate equals the
        // calibrated population rate up to rounding (±1/N per cell).
        let d = small();
        let (codes, vocab) = d.train.column("income").unwrap().as_categorical().unwrap();
        let pos_code = vocab.iter().position(|v| v == ">50K").unwrap() as u32;
        let rate = codes.iter().filter(|&&c| c == pos_code).count() as f64 / codes.len() as f64;
        let truth = super::super::calibration::overall_positive_rate();
        assert!(
            (rate - truth).abs() < 32.0 / 8000.0,
            "rate={rate} truth={truth}"
        );
    }

    #[test]
    fn quota_deck_has_exact_size_and_is_shuffled() {
        let mut rng = Pcg32::new(5);
        let deck = quota_cells(&mut rng, 10_000);
        assert_eq!(deck.len(), 10_000);
        // Shuffled: first 100 cells should not all be identical.
        let first = deck[0];
        assert!(deck[..100].iter().any(|&c| c != first));
    }

    #[test]
    fn nationality_split_matches_calibration() {
        let d = small();
        let prepared = d.with_protected().unwrap();
        assert!(PROTECTED_COLUMNS
            .iter()
            .all(|c| prepared.train.column(c).is_ok()));
        let (codes, vocab) = prepared
            .train
            .column("nationality")
            .unwrap()
            .as_categorical()
            .unwrap();
        let us = vocab.iter().position(|v| v == "US").unwrap() as u32;
        let frac_us = codes.iter().filter(|&&c| c == us).count() as f64 / codes.len() as f64;
        // Ground truth: Σ_r P(r) P(US|r) ≈ 0.8987.
        assert!((frac_us - 0.8987).abs() < 0.02, "frac_us={frac_us}");
    }

    #[test]
    fn non_us_countries_are_diverse_and_us_is_literal() {
        let d = small();
        let (codes, vocab) = d
            .train
            .column("native-country")
            .unwrap()
            .as_categorical()
            .unwrap();
        assert!(vocab.iter().any(|v| v == "United-States"));
        assert!(vocab.len() > 5, "expected several non-US countries");
        let us = vocab.iter().position(|v| v == "United-States").unwrap() as u32;
        let non_us = codes.iter().filter(|&&c| c != us).count();
        assert!(non_us > 0);
    }
}
