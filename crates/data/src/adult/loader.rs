//! Loader for the genuine UCI Adult files.
//!
//! When `adult.data` and `adult.test` are present (e.g. downloaded from the
//! UCI repository into a `data/` directory), every experiment can be re-run
//! against the real dataset instead of the calibrated synthetic substitute.
//! The loader normalizes the format quirks: `", "` separators, the
//! `|1x3 Cross validator` sentinel line in the test file, and the trailing
//! period on test-file income labels (`>50K.` → `>50K`).

use super::{AdultDataset, COLUMNS, NUMERIC_COLUMNS};
use crate::csv::{read_records, CsvOptions};
use crate::error::{DataError, Result};
use crate::frame::{Column, DataFrame};
use std::fs::File;
use std::io::BufReader;
use std::path::Path;

/// Parses records in UCI Adult column order into a typed frame.
pub fn frame_from_adult_records(records: &[Vec<String>]) -> Result<DataFrame> {
    if records.is_empty() {
        return Err(DataError::Invalid("no records".into()));
    }
    let n_cols = COLUMNS.len();
    for (i, r) in records.iter().enumerate() {
        if r.len() != n_cols {
            return Err(DataError::Csv {
                line: i + 1,
                message: format!("expected {n_cols} fields, got {}", r.len()),
            });
        }
    }
    let mut columns = Vec::with_capacity(n_cols);
    for (c, &name) in COLUMNS.iter().enumerate() {
        if NUMERIC_COLUMNS.contains(&name) {
            let mut values = Vec::with_capacity(records.len());
            for (i, r) in records.iter().enumerate() {
                let v: f64 = r[c].parse().map_err(|_| DataError::Csv {
                    line: i + 1,
                    message: format!("column `{name}`: `{}` is not numeric", r[c]),
                })?;
                values.push(v);
            }
            columns.push(Column::numeric(name, values));
        } else {
            let values: Vec<String> = records
                .iter()
                .map(|r| {
                    // Test-file labels carry a trailing period.
                    let v = r[c].trim();
                    let v = v.strip_suffix('.').unwrap_or(v);
                    v.to_string()
                })
                .collect();
            columns.push(Column::categorical(name, &values));
        }
    }
    DataFrame::new(columns)
}

fn load_file(path: &Path) -> Result<DataFrame> {
    let file = File::open(path)?;
    let records = read_records(BufReader::new(file), &CsvOptions::adult())?;
    frame_from_adult_records(&records)
}

/// Loads `adult.data` and `adult.test` from a directory, if both exist.
/// Returns `Ok(None)` when either file is absent (callers then fall back to
/// the synthetic generator).
pub fn load_uci_dir(dir: &Path) -> Result<Option<AdultDataset>> {
    let train_path = dir.join("adult.data");
    let test_path = dir.join("adult.test");
    if !train_path.exists() || !test_path.exists() {
        return Ok(None);
    }
    Ok(Some(AdultDataset {
        train: load_file(&train_path)?,
        test: load_file(&test_path)?,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csv::read_str;

    const SAMPLE: &str = "\
39, State-gov, 77516, Bachelors, 13, Never-married, Adm-clerical, Not-in-family, White, Male, 2174, 0, 40, United-States, <=50K
50, Self-emp-not-inc, 83311, Bachelors, 13, Married-civ-spouse, Exec-managerial, Husband, White, Male, 0, 0, 13, United-States, <=50K
38, Private, 215646, HS-grad, 9, Divorced, Handlers-cleaners, Not-in-family, White, Male, 0, 0, 40, United-States, >50K.
";

    #[test]
    fn parses_real_format() {
        let records = read_str(SAMPLE, &CsvOptions::adult()).unwrap();
        let frame = frame_from_adult_records(&records).unwrap();
        assert_eq!(frame.n_rows(), 3);
        assert_eq!(frame.n_cols(), 15);
        let ages = frame.column("age").unwrap().as_numeric().unwrap();
        assert_eq!(ages, &[39.0, 50.0, 38.0]);
        // Trailing period stripped from the test-style label.
        let (codes, vocab) = frame.column("income").unwrap().as_categorical().unwrap();
        assert_eq!(vocab[codes[2] as usize], ">50K");
    }

    #[test]
    fn sentinel_and_blank_lines_are_skipped() {
        let content = format!("|1x3 Cross validator\n\n{SAMPLE}");
        let records = read_str(&content, &CsvOptions::adult()).unwrap();
        assert_eq!(records.len(), 3);
    }

    #[test]
    fn wrong_arity_is_reported_with_line() {
        let records = read_str("1, 2, 3\n", &CsvOptions::adult()).unwrap();
        let err = frame_from_adult_records(&records).unwrap_err();
        assert!(err.to_string().contains("expected 15"));
    }

    #[test]
    fn non_numeric_age_is_an_error() {
        let bad = SAMPLE.replacen("39", "abc", 1);
        let records = read_str(&bad, &CsvOptions::adult()).unwrap();
        assert!(frame_from_adult_records(&records).is_err());
    }

    #[test]
    fn missing_directory_returns_none() {
        let missing = load_uci_dir(Path::new("/nonexistent/surely")).unwrap();
        assert!(missing.is_none());
    }

    #[test]
    fn roundtrip_via_tempfile() {
        let dir = std::env::temp_dir().join(format!("df_adult_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("adult.data"), SAMPLE).unwrap();
        std::fs::write(
            dir.join("adult.test"),
            format!("|1x3 Cross validator\n{SAMPLE}"),
        )
        .unwrap();
        let loaded = load_uci_dir(&dir).unwrap().expect("both files present");
        assert_eq!(loaded.train.n_rows(), 3);
        assert_eq!(loaded.test.n_rows(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }
}
