//! The Adult census dataset: calibrated synthetic generator and UCI loader.
//!
//! The paper's case study (§6, Tables 2 and 3) uses the UCI Adult dataset
//! (train 32,561 / test 16,281 records; income > $50K as the outcome;
//! race, gender, and binarized nationality as protected attributes).
//!
//! This environment has no copy of the UCI files and no network access, so
//! [`synth`] provides a **calibrated synthetic substitute**: a generative
//! model over the protected attributes and income whose population-level ε
//! matches the paper's Table 2 for *every* subset of the protected
//! attributes to within ±0.01, while also matching the real dataset's
//! published marginals (base rate 0.2408, per-gender rates, race and
//! nationality proportions). See [`calibration`] for the model and
//! DESIGN.md §4 for the substitution rationale. Non-protected features
//! (age, education, hours, capital gains, occupation, …) are generated
//! conditionally on income and gender so a logistic regression reaches an
//! error rate near the paper's ≈15 %.
//!
//! [`loader`] reads the genuine `adult.data`/`adult.test` files when the
//! user supplies them, so every experiment can be re-run on the real data.

pub mod calibration;
pub mod loader;
pub mod synth;

use crate::frame::DataFrame;

/// The paper's train/test split sizes.
pub const TRAIN_SIZE: usize = 32_561;
/// Size of the pre-split UCI test set.
pub const TEST_SIZE: usize = 16_281;

/// Column names of the UCI Adult schema, in file order.
pub const COLUMNS: [&str; 15] = [
    "age",
    "workclass",
    "fnlwgt",
    "education",
    "education-num",
    "marital-status",
    "occupation",
    "relationship",
    "race",
    "sex",
    "capital-gain",
    "capital-loss",
    "hours-per-week",
    "native-country",
    "income",
];

/// Names of the numeric columns in [`COLUMNS`].
pub const NUMERIC_COLUMNS: [&str; 6] = [
    "age",
    "fnlwgt",
    "education-num",
    "capital-gain",
    "capital-loss",
    "hours-per-week",
];

/// The label column and its values.
pub const INCOME_COLUMN: &str = "income";
/// The negative (majority) income label.
pub const INCOME_LE_50K: &str = "<=50K";
/// The positive income label used as the advantaged outcome.
pub const INCOME_GT_50K: &str = ">50K";

/// An Adult-format dataset with the paper's pre-split train/test frames.
#[derive(Debug, Clone)]
pub struct AdultDataset {
    /// Training split (32,561 rows for the standard benchmark).
    pub train: DataFrame,
    /// Test split (16,281 rows for the standard benchmark).
    pub test: DataFrame,
}

impl AdultDataset {
    /// Applies the §6 protected-attribute preparation (race merge, gender
    /// passthrough, nationality binarization) to both splits, returning the
    /// frames with `race_m`, `gender`, and `nationality` columns appended.
    pub fn with_protected(&self) -> crate::error::Result<AdultDataset> {
        let spec = crate::protected::adult_protected_spec();
        Ok(AdultDataset {
            train: spec.apply(&self.train)?,
            test: spec.apply(&self.test)?,
        })
    }
}

/// The protected-attribute column names produced by
/// [`AdultDataset::with_protected`], in the paper's order.
pub const PROTECTED_COLUMNS: [&str; 3] = ["race_m", "gender", "nationality"];
