//! The calibrated ground-truth model of the synthetic Adult population.
//!
//! The model factorizes as
//! `P(s) = P(race) · P(nationality | race) · P(gender | race)` over the
//! *merged* protected space (race ∈ {White, Black, Asian-Pac-Islander,
//! Other}, nationality ∈ {US, Non-US}, gender ∈ {Male, Female}), with a
//! log-linear income model
//!
//! ```text
//! logit P(>50K | g, r, n) = β₀ + β_F·[g=F] + β_r + β_N·[n=NonUS]
//!                          + β_FN·[g=F ∧ n=NonUS] + β_OF·[r=Other ∧ g=F]
//!                          + β_AN·[r=API ∧ n=NonUS].
//! ```
//!
//! The nine coefficients below were fitted numerically (coordinate descent
//! on squared ε-error; see DESIGN.md §4) so that the **population-level
//! empirical differential fairness of every subset of the protected
//! attributes matches the paper's Table 2**:
//!
//! | subset | paper ε | model ε |
//! |---|---|---|
//! | nationality | 0.219 | 0.217 |
//! | race | 0.930 | 0.926 |
//! | gender | 1.03 | 1.026 |
//! | gender, nationality | 1.16 | 1.165 |
//! | race, nationality | 1.21 | 1.213 |
//! | race, gender | 1.76 | 1.765 |
//! | race, gender, nationality | 2.14 | 2.135 |
//!
//! while simultaneously matching the real Adult marginals
//! `P(>50K) = 0.2404`, `P(>50K|Male) = 0.306`, `P(>50K|Female) = 0.110`.
//! These targets are enforced by the tests in this module.

use df_prob::numerics::sigmoid;

/// Gender labels (index order used throughout).
pub const GENDERS: [&str; 2] = ["Male", "Female"];
/// Merged race labels.
pub const RACES_MERGED: [&str; 4] = ["White", "Black", "Asian-Pac-Islander", "Other"];
/// Binarized nationality labels.
pub const NATIONALITIES: [&str; 2] = ["US", "Non-US"];

/// `P(race)` over [`RACES_MERGED`].
pub const P_RACE: [f64; 4] = [0.854, 0.096, 0.032, 0.018];
/// `P(nationality = US | race)`.
pub const P_US_GIVEN_RACE: [f64; 4] = [0.93, 0.93, 0.25, 0.40];
/// `P(gender = Male | race)`.
pub const P_MALE_GIVEN_RACE: [f64; 4] = [0.675, 0.60, 0.66, 0.62];

/// Intercept β₀ of the income log-odds.
pub const B0: f64 = -0.7285;
/// Female main effect.
pub const B_FEMALE: f64 = -1.2828;
/// Race main effects, indexed by [`RACES_MERGED`] (White is the reference).
pub const B_RACE: [f64; 4] = [0.0, -0.76, 0.3383, -1.0461];
/// Non-US main effect.
pub const B_NONUS: f64 = -0.3381;
/// Female × Non-US interaction.
pub const B_FEMALE_NONUS: f64 = 0.1163;
/// Other-race × Female interaction.
pub const B_OTHER_FEMALE: f64 = 0.7586;
/// API-race × Non-US interaction.
pub const B_API_NONUS: f64 = -0.0344;

/// The paper's Table 2 targets, as (subset bitmask, ε) with bit 0 = gender,
/// bit 1 = race, bit 2 = nationality.
pub const TABLE2_TARGETS: [(u8, f64); 7] = [
    (0b100, 0.219), // nationality
    (0b010, 0.930), // race
    (0b001, 1.03),  // gender
    (0b101, 1.16),  // gender, nationality
    (0b110, 1.21),  // race, nationality
    (0b011, 1.76),  // race, gender
    (0b111, 2.14),  // race, gender, nationality
];

/// Joint probability `P(gender=g, race=r, nationality=n)` over index
/// triples (g ∈ 0..2, r ∈ 0..4, n ∈ 0..2).
pub fn joint_probability(g: usize, r: usize, n: usize) -> f64 {
    let p_n = if n == 0 {
        P_US_GIVEN_RACE[r]
    } else {
        1.0 - P_US_GIVEN_RACE[r]
    };
    let p_g = if g == 0 {
        P_MALE_GIVEN_RACE[r]
    } else {
        1.0 - P_MALE_GIVEN_RACE[r]
    };
    P_RACE[r] * p_n * p_g
}

/// Ground-truth `P(income > 50K | gender=g, race=r, nationality=n)`.
pub fn income_rate(g: usize, r: usize, n: usize) -> f64 {
    let mut lo = B0 + B_RACE[r];
    if g == 1 {
        lo += B_FEMALE;
    }
    if n == 1 {
        lo += B_NONUS;
    }
    if g == 1 && n == 1 {
        lo += B_FEMALE_NONUS;
    }
    if r == 3 && g == 1 {
        lo += B_OTHER_FEMALE;
    }
    if r == 2 && n == 1 {
        lo += B_API_NONUS;
    }
    sigmoid(lo)
}

/// The exact population-level ε for a subset of the protected attributes,
/// where `mask` bit 0 = gender, bit 1 = race, bit 2 = nationality.
///
/// Marginalizes the ground-truth joint analytically — no sampling — so
/// tests can verify the calibration against Table 2 and the synthetic
/// sampler can be validated for convergence to these values.
pub fn population_epsilon(mask: u8) -> f64 {
    assert!(mask != 0 && mask < 8, "mask must select a nonempty subset");
    // Enumerate marginal cells: up to 2 × 4 × 2 of them.
    let g_vals: &[usize] = if mask & 1 != 0 {
        &[0, 1]
    } else {
        &[usize::MAX]
    };
    let r_vals: &[usize] = if mask & 2 != 0 {
        &[0, 1, 2, 3]
    } else {
        &[usize::MAX]
    };
    let n_vals: &[usize] = if mask & 4 != 0 {
        &[0, 1]
    } else {
        &[usize::MAX]
    };

    let mut rates = Vec::new();
    for &gd in g_vals {
        for &rd in r_vals {
            for &nd in n_vals {
                // Marginalize the free attributes.
                let mut mass = 0.0;
                let mut pos = 0.0;
                for g in 0..2 {
                    if gd != usize::MAX && g != gd {
                        continue;
                    }
                    for r in 0..4 {
                        if rd != usize::MAX && r != rd {
                            continue;
                        }
                        for n in 0..2 {
                            if nd != usize::MAX && n != nd {
                                continue;
                            }
                            let p = joint_probability(g, r, n);
                            mass += p;
                            pos += p * income_rate(g, r, n);
                        }
                    }
                }
                if mass > 0.0 {
                    rates.push(pos / mass);
                }
            }
        }
    }
    let mut eps = 0.0f64;
    for &a in &rates {
        for &b in &rates {
            if a > 0.0 && b > 0.0 {
                eps = eps.max((a / b).ln().abs());
            }
            let (ca, cb) = (1.0 - a, 1.0 - b);
            if ca > 0.0 && cb > 0.0 {
                eps = eps.max((ca / cb).ln().abs());
            }
        }
    }
    eps
}

/// Overall ground-truth positive rate `P(income > 50K)`.
pub fn overall_positive_rate() -> f64 {
    let mut total = 0.0;
    for g in 0..2 {
        for r in 0..4 {
            for n in 0..2 {
                total += joint_probability(g, r, n) * income_rate(g, r, n);
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn joint_sums_to_one() {
        let total: f64 = (0..2)
            .flat_map(|g| (0..4).flat_map(move |r| (0..2).map(move |n| (g, r, n))))
            .map(|(g, r, n)| joint_probability(g, r, n))
            .sum();
        assert!((total - 1.0).abs() < 1e-12, "total={total}");
    }

    #[test]
    fn base_rates_match_real_adult_marginals() {
        // Published Adult statistics: P(>50K) = 0.2408,
        // P(>50K|Male) = 0.3057, P(>50K|Female) = 0.1095.
        assert!((overall_positive_rate() - 0.2408).abs() < 0.002);
        let mut m_mass = 0.0;
        let mut m_pos = 0.0;
        let mut f_mass = 0.0;
        let mut f_pos = 0.0;
        for r in 0..4 {
            for n in 0..2 {
                let pm = joint_probability(0, r, n);
                m_mass += pm;
                m_pos += pm * income_rate(0, r, n);
                let pf = joint_probability(1, r, n);
                f_mass += pf;
                f_pos += pf * income_rate(1, r, n);
            }
        }
        assert!((m_pos / m_mass - 0.3057).abs() < 0.003);
        assert!((f_pos / f_mass - 0.1095).abs() < 0.003);
    }

    #[test]
    fn population_epsilons_match_table2() {
        for (mask, target) in TABLE2_TARGETS {
            let eps = population_epsilon(mask);
            assert!(
                (eps - target).abs() < 0.012,
                "mask {mask:03b}: model ε = {eps:.4}, paper = {target}"
            );
        }
    }

    #[test]
    fn epsilon_ordering_matches_paper_narrative() {
        // §6: inequity is least for nationality, and the race×gender
        // intersection is substantially higher than either alone.
        let nat = population_epsilon(0b100);
        let race = population_epsilon(0b010);
        let gender = population_epsilon(0b001);
        let race_gender = population_epsilon(0b011);
        let all = population_epsilon(0b111);
        assert!(nat < race && race < gender);
        assert!(race_gender > gender + 0.5);
        assert!(all > race_gender);
    }

    #[test]
    fn subset_theorem_bound_holds_in_population() {
        // Theorem 3.2 applied to the ground truth: every subset ε ≤ 2 ε_full.
        let full = population_epsilon(0b111);
        for mask in 1u8..7 {
            let eps = population_epsilon(mask);
            assert!(eps <= 2.0 * full + 1e-12, "mask {mask:03b}");
        }
    }

    #[test]
    #[should_panic(expected = "nonempty subset")]
    fn empty_mask_panics() {
        population_epsilon(0);
    }

    #[test]
    fn rates_are_probabilities() {
        for g in 0..2 {
            for r in 0..4 {
                for n in 0..2 {
                    let p = income_rate(g, r, n);
                    assert!((0.0..=1.0).contains(&p));
                }
            }
        }
    }
}
