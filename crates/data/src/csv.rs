//! From-scratch CSV reading and writing.
//!
//! Handles RFC-4180 quoting plus the quirks of the UCI Adult files:
//! `", "`-separated fields (leading whitespace), `?` as a missing-value
//! marker, comment/sentinel lines starting with `|`, and trailing periods on
//! labels in `adult.test`.

use crate::error::{DataError, Result};
use std::io::{BufRead, Write};

/// Options controlling CSV parsing.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Field delimiter (default `,`).
    pub delimiter: char,
    /// Trim ASCII whitespace around unquoted fields (the Adult files use
    /// `", "` separators).
    pub trim: bool,
    /// Skip empty lines entirely.
    pub skip_empty_lines: bool,
    /// Skip lines starting with this character (after trimming), e.g. the
    /// `|1x3 Cross validator` sentinel in `adult.test`.
    pub comment_char: Option<char>,
}

impl Default for CsvOptions {
    fn default() -> Self {
        Self {
            delimiter: ',',
            trim: true,
            skip_empty_lines: true,
            comment_char: None,
        }
    }
}

impl CsvOptions {
    /// The options matching the UCI Adult data files.
    pub fn adult() -> Self {
        Self {
            delimiter: ',',
            trim: true,
            skip_empty_lines: true,
            comment_char: Some('|'),
        }
    }
}

/// Parses one CSV record (no trailing newline). Returns the fields.
pub fn parse_record(line: &str, opts: &CsvOptions, line_no: usize) -> Result<Vec<String>> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    loop {
        // Each iteration parses one field.
        if opts.trim {
            // Never swallow the delimiter itself (it may be `\t`).
            while matches!(chars.peek(), Some(c) if c.is_ascii_whitespace() && *c != opts.delimiter)
            {
                chars.next();
            }
        }
        if chars.peek() == Some(&'"') {
            chars.next();
            // Quoted field: read until the closing quote; "" is an escape.
            loop {
                match chars.next() {
                    Some('"') => {
                        if chars.peek() == Some(&'"') {
                            chars.next();
                            field.push('"');
                        } else {
                            break;
                        }
                    }
                    Some(c) => field.push(c),
                    None => {
                        return Err(DataError::Csv {
                            line: line_no,
                            message: "unterminated quoted field".into(),
                        })
                    }
                }
            }
            // Consume whitespace up to the delimiter or end — but never
            // the delimiter itself, which may be whitespace (`\t`).
            while matches!(chars.peek(), Some(c) if c.is_ascii_whitespace() && *c != opts.delimiter)
            {
                chars.next();
            }
            match chars.next() {
                None => {
                    fields.push(std::mem::take(&mut field));
                    break;
                }
                Some(c) if c == opts.delimiter => {
                    fields.push(std::mem::take(&mut field));
                }
                Some(c) => {
                    return Err(DataError::Csv {
                        line: line_no,
                        message: format!("unexpected `{c}` after closing quote"),
                    })
                }
            }
        } else {
            // Unquoted field: read to the delimiter or end.
            let mut done = false;
            loop {
                match chars.next() {
                    None => {
                        done = true;
                        break;
                    }
                    Some(c) if c == opts.delimiter => break,
                    Some(c) => field.push(c),
                }
            }
            if opts.trim {
                let trimmed = field.trim_end().len();
                field.truncate(trimmed);
            }
            fields.push(std::mem::take(&mut field));
            if done {
                break;
            }
        }
    }
    Ok(fields)
}

/// Incremental quote state while assembling a logical record out of
/// physical lines. Mirrors [`parse_record`]'s field grammar: a quote only
/// opens a quoted field at field start (after optional whitespace when
/// trimming), and `""` inside quotes is an escape, not a close-and-reopen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum QuoteScan {
    /// At the start of a field (record start or just past a delimiter).
    FieldStart,
    /// Inside an unquoted field (or past a closing quote).
    Unquoted,
    /// Inside a quoted field — newlines here are field content.
    Quoted,
    /// Just read a `"` inside a quoted field: either the closing quote or
    /// the first half of an escaped `""`.
    QuoteInQuoted,
}

/// Advances the quote state across `text` (a newly appended piece of a
/// logical record).
fn scan_quote_state(mut state: QuoteScan, text: &str, opts: &CsvOptions) -> QuoteScan {
    for c in text.chars() {
        state = match state {
            QuoteScan::FieldStart => {
                // The delimiter check comes first: a whitespace delimiter
                // (e.g. tab) is never consumed as trim padding.
                if c == opts.delimiter || (opts.trim && c.is_ascii_whitespace()) {
                    QuoteScan::FieldStart
                } else if c == '"' {
                    QuoteScan::Quoted
                } else {
                    QuoteScan::Unquoted
                }
            }
            QuoteScan::Unquoted => {
                if c == opts.delimiter {
                    QuoteScan::FieldStart
                } else {
                    QuoteScan::Unquoted
                }
            }
            QuoteScan::Quoted => {
                if c == '"' {
                    QuoteScan::QuoteInQuoted
                } else {
                    QuoteScan::Quoted
                }
            }
            QuoteScan::QuoteInQuoted => {
                if c == '"' {
                    // `""` escape: still inside the quoted field.
                    QuoteScan::Quoted
                } else if c == opts.delimiter {
                    QuoteScan::FieldStart
                } else {
                    // Field closed; whatever follows is parse_record's
                    // problem (trailing whitespace or a syntax error).
                    QuoteScan::Unquoted
                }
            }
        };
    }
    state
}

/// Reads one *logical* CSV record into `buf`: physical lines are joined
/// while an RFC-4180 quoted field is still open (the newline bytes are
/// field content and kept verbatim), and the record's own line terminator
/// (`\n` or `\r\n`) is stripped. Returns `Ok(false)` at end of input with
/// nothing read; `line_no` advances past every physical line consumed.
///
/// Shared by the batch reader ([`read_records`]) and the streaming reader
/// (`CsvChunks`), so batch and stream see byte-identical records.
pub(crate) fn read_logical_record<R: BufRead>(
    reader: &mut R,
    buf: &mut String,
    opts: &CsvOptions,
    line_no: &mut usize,
) -> Result<bool> {
    buf.clear();
    let mut state = QuoteScan::FieldStart;
    loop {
        let start = buf.len();
        if reader.read_line(buf)? == 0 {
            // EOF. An open quoted field left content behind; hand it to
            // parse_record, which reports the unterminated quote.
            return Ok(!buf.is_empty());
        }
        *line_no += 1;
        state = scan_quote_state(state, &buf[start..], opts);
        if state != QuoteScan::Quoted {
            // Record complete: strip the terminator — one `\n`, then the
            // `\r` of a CRLF ending (content `\r`s inside quotes survive
            // because an open quote takes the `continue` branch instead).
            if buf.ends_with('\n') {
                buf.pop();
                if buf.ends_with('\r') {
                    buf.pop();
                }
            }
            return Ok(true);
        }
        // Still inside an open quote: the newline (and any `\r` before
        // it) are field content — keep them and read the next line.
    }
}

/// Reads all records from a buffered reader. Quoted fields may span lines
/// (RFC 4180), and CRLF record terminators are fully stripped — batch
/// parsing is byte-equivalent to the streaming `CsvChunks` path.
pub fn read_records<R: BufRead>(mut reader: R, opts: &CsvOptions) -> Result<Vec<Vec<String>>> {
    let mut out = Vec::new();
    let mut buf = String::new();
    let mut line_no = 0usize;
    loop {
        let record_line = line_no + 1;
        if !read_logical_record(&mut reader, &mut buf, opts, &mut line_no)? {
            break;
        }
        let trimmed = buf.trim();
        if opts.skip_empty_lines && trimmed.is_empty() {
            continue;
        }
        if let Some(cc) = opts.comment_char {
            if trimmed.starts_with(cc) {
                continue;
            }
        }
        out.push(parse_record(&buf, opts, record_line)?);
    }
    Ok(out)
}

/// Parses records from an in-memory string.
pub fn read_str(content: &str, opts: &CsvOptions) -> Result<Vec<Vec<String>>> {
    read_records(content.as_bytes(), opts)
}

/// Writes records, quoting fields that contain the delimiter, quotes, or
/// newlines.
pub fn write_records<W: Write>(
    mut writer: W,
    records: &[Vec<String>],
    delimiter: char,
) -> Result<()> {
    for record in records {
        let mut first = true;
        for field in record {
            if !first {
                write!(writer, "{delimiter}")?;
            }
            first = false;
            let needs_quote = field.contains(delimiter)
                || field.contains('"')
                || field.contains('\n')
                || field.contains('\r');
            if needs_quote {
                write!(writer, "\"{}\"", field.replace('"', "\"\""))?;
            } else {
                write!(writer, "{field}")?;
            }
        }
        writeln!(writer)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_record() {
        let r = parse_record("a,b,c", &CsvOptions::default(), 1).unwrap();
        assert_eq!(r, vec!["a", "b", "c"]);
    }

    #[test]
    fn trims_adult_style_spacing() {
        let r = parse_record("39, State-gov, 77516, Bachelors", &CsvOptions::adult(), 1).unwrap();
        assert_eq!(r, vec!["39", "State-gov", "77516", "Bachelors"]);
    }

    #[test]
    fn preserves_whitespace_when_trim_disabled() {
        let opts = CsvOptions {
            trim: false,
            ..CsvOptions::default()
        };
        let r = parse_record("a, b", &opts, 1).unwrap();
        assert_eq!(r, vec!["a", " b"]);
    }

    #[test]
    fn quoted_fields_with_embedded_delimiters_and_quotes() {
        let r = parse_record(r#""a,b","say ""hi""",c"#, &CsvOptions::default(), 1).unwrap();
        assert_eq!(r, vec!["a,b", "say \"hi\"", "c"]);
    }

    #[test]
    fn unterminated_quote_is_an_error() {
        let e = parse_record("\"abc", &CsvOptions::default(), 7).unwrap_err();
        assert!(e.to_string().contains("line 7"));
    }

    #[test]
    fn garbage_after_quote_is_an_error() {
        assert!(parse_record("\"a\"x,b", &CsvOptions::default(), 1).is_err());
    }

    #[test]
    fn empty_fields_and_trailing_delimiter() {
        let r = parse_record("a,,c,", &CsvOptions::default(), 1).unwrap();
        assert_eq!(r, vec!["a", "", "c", ""]);
    }

    #[test]
    fn read_str_skips_comments_and_blanks() {
        let content = "|1x3 Cross validator\n\n25, Private\n38, Self-emp\n";
        let records = read_str(content, &CsvOptions::adult()).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0], vec!["25", "Private"]);
    }

    #[test]
    fn roundtrip_through_writer() {
        let records = vec![
            vec!["plain".to_string(), "with,comma".to_string()],
            vec!["with \"quote\"".to_string(), "".to_string()],
        ];
        let mut buf = Vec::new();
        write_records(&mut buf, &records, ',').unwrap();
        let text = String::from_utf8(buf).unwrap();
        let opts = CsvOptions {
            trim: false,
            skip_empty_lines: false,
            ..CsvOptions::default()
        };
        let parsed = read_str(&text, &opts).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn embedded_newlines_in_quotes_roundtrip_through_the_readers() {
        // The writer quotes fields containing `\n`/`\r`; the readers must
        // parse those multi-line records back verbatim (RFC 4180), not die
        // on "unterminated quoted field" at the first line boundary.
        let records = vec![
            vec!["line1\nline2".to_string(), "plain".to_string()],
            vec!["crlf\r\ninside".to_string(), "a,b".to_string()],
            vec!["lone\rcr".to_string(), "\"q\"\nand newline".to_string()],
            vec!["".to_string(), "trailing\n".to_string()],
        ];
        let mut buf = Vec::new();
        write_records(&mut buf, &records, ',').unwrap();
        let text = String::from_utf8(buf).unwrap();
        let opts = CsvOptions {
            trim: false,
            skip_empty_lines: false,
            ..CsvOptions::default()
        };
        let parsed = read_str(&text, &opts).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn multiline_quoted_record_parses_with_trim_and_comments() {
        // Quote continuation composes with the Adult-style options: the
        // comment check applies to logical records, and a `|` inside an
        // open quote is content, not a comment marker.
        let content = "|sentinel\n\"multi\nline\", x\n\"|not a comment\", y\n";
        let records = read_str(content, &CsvOptions::adult()).unwrap();
        assert_eq!(
            records,
            vec![
                vec!["multi\nline".to_string(), "x".to_string()],
                vec!["|not a comment".to_string(), "y".to_string()],
            ]
        );
    }

    #[test]
    fn unterminated_quote_spanning_lines_is_an_error() {
        let e = read_str("ok,1\n\"never closed\nmore\n", &CsvOptions::default()).unwrap_err();
        assert!(e.to_string().contains("unterminated"));
        // The error points at the line the record started on.
        assert!(e.to_string().contains("line 2"));
    }

    #[test]
    fn crlf_terminators_are_stripped_without_trim() {
        let opts = CsvOptions {
            trim: false,
            ..CsvOptions::default()
        };
        let records = read_str("a,b\r\nc,d\r\n", &opts).unwrap();
        assert_eq!(records, vec![vec!["a", "b"], vec!["c", "d"]]);
        // A quoted CRLF is content and survives; only the record
        // terminator is stripped.
        let records = read_str("\"a\r\nb\",c\r\n", &opts).unwrap();
        assert_eq!(records, vec![vec!["a\r\nb", "c"]]);
    }

    #[test]
    fn whitespace_delimiters_are_never_consumed_as_padding() {
        // `\t` as the delimiter: the post-quote and trim whitespace skips
        // must not swallow it, or fields merge.
        let opts = CsvOptions {
            delimiter: '\t',
            trim: false,
            skip_empty_lines: false,
            comment_char: None,
        };
        let rows = read_str("\"q\"\t,x\ta\n", &opts).unwrap();
        assert_eq!(rows, vec![vec!["q", ",x", "a"]]);
        // With trimming on, consecutive tabs still delimit empty fields.
        let opts_trim = CsvOptions { trim: true, ..opts };
        let rows = read_str("a\t\tb\n", &opts_trim).unwrap();
        assert_eq!(rows, vec![vec!["a", "", "b"]]);
    }
}
