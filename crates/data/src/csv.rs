//! From-scratch CSV reading and writing.
//!
//! Handles RFC-4180 quoting plus the quirks of the UCI Adult files:
//! `", "`-separated fields (leading whitespace), `?` as a missing-value
//! marker, comment/sentinel lines starting with `|`, and trailing periods on
//! labels in `adult.test`.

use crate::error::{DataError, Result};
use std::io::{BufRead, Write};

/// Options controlling CSV parsing.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Field delimiter (default `,`).
    pub delimiter: char,
    /// Trim ASCII whitespace around unquoted fields (the Adult files use
    /// `", "` separators).
    pub trim: bool,
    /// Skip empty lines entirely.
    pub skip_empty_lines: bool,
    /// Skip lines starting with this character (after trimming), e.g. the
    /// `|1x3 Cross validator` sentinel in `adult.test`.
    pub comment_char: Option<char>,
}

impl Default for CsvOptions {
    fn default() -> Self {
        Self {
            delimiter: ',',
            trim: true,
            skip_empty_lines: true,
            comment_char: None,
        }
    }
}

impl CsvOptions {
    /// The options matching the UCI Adult data files.
    pub fn adult() -> Self {
        Self {
            delimiter: ',',
            trim: true,
            skip_empty_lines: true,
            comment_char: Some('|'),
        }
    }
}

/// Parses one CSV record (no trailing newline). Returns the fields.
pub fn parse_record(line: &str, opts: &CsvOptions, line_no: usize) -> Result<Vec<String>> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    loop {
        // Each iteration parses one field.
        if opts.trim {
            while matches!(chars.peek(), Some(c) if c.is_ascii_whitespace()) {
                chars.next();
            }
        }
        if chars.peek() == Some(&'"') {
            chars.next();
            // Quoted field: read until the closing quote; "" is an escape.
            loop {
                match chars.next() {
                    Some('"') => {
                        if chars.peek() == Some(&'"') {
                            chars.next();
                            field.push('"');
                        } else {
                            break;
                        }
                    }
                    Some(c) => field.push(c),
                    None => {
                        return Err(DataError::Csv {
                            line: line_no,
                            message: "unterminated quoted field".into(),
                        })
                    }
                }
            }
            // Consume whitespace up to the delimiter or end.
            while matches!(chars.peek(), Some(c) if c.is_ascii_whitespace()) {
                chars.next();
            }
            match chars.next() {
                None => {
                    fields.push(std::mem::take(&mut field));
                    break;
                }
                Some(c) if c == opts.delimiter => {
                    fields.push(std::mem::take(&mut field));
                }
                Some(c) => {
                    return Err(DataError::Csv {
                        line: line_no,
                        message: format!("unexpected `{c}` after closing quote"),
                    })
                }
            }
        } else {
            // Unquoted field: read to the delimiter or end.
            let mut done = false;
            loop {
                match chars.next() {
                    None => {
                        done = true;
                        break;
                    }
                    Some(c) if c == opts.delimiter => break,
                    Some(c) => field.push(c),
                }
            }
            if opts.trim {
                let trimmed = field.trim_end().len();
                field.truncate(trimmed);
            }
            fields.push(std::mem::take(&mut field));
            if done {
                break;
            }
        }
    }
    Ok(fields)
}

/// Reads all records from a buffered reader.
pub fn read_records<R: BufRead>(reader: R, opts: &CsvOptions) -> Result<Vec<Vec<String>>> {
    let mut out = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let line_no = i + 1;
        let trimmed = line.trim();
        if opts.skip_empty_lines && trimmed.is_empty() {
            continue;
        }
        if let Some(cc) = opts.comment_char {
            if trimmed.starts_with(cc) {
                continue;
            }
        }
        out.push(parse_record(&line, opts, line_no)?);
    }
    Ok(out)
}

/// Parses records from an in-memory string.
pub fn read_str(content: &str, opts: &CsvOptions) -> Result<Vec<Vec<String>>> {
    read_records(content.as_bytes(), opts)
}

/// Writes records, quoting fields that contain the delimiter, quotes, or
/// newlines.
pub fn write_records<W: Write>(
    mut writer: W,
    records: &[Vec<String>],
    delimiter: char,
) -> Result<()> {
    for record in records {
        let mut first = true;
        for field in record {
            if !first {
                write!(writer, "{delimiter}")?;
            }
            first = false;
            let needs_quote = field.contains(delimiter)
                || field.contains('"')
                || field.contains('\n')
                || field.contains('\r');
            if needs_quote {
                write!(writer, "\"{}\"", field.replace('"', "\"\""))?;
            } else {
                write!(writer, "{field}")?;
            }
        }
        writeln!(writer)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_record() {
        let r = parse_record("a,b,c", &CsvOptions::default(), 1).unwrap();
        assert_eq!(r, vec!["a", "b", "c"]);
    }

    #[test]
    fn trims_adult_style_spacing() {
        let r = parse_record("39, State-gov, 77516, Bachelors", &CsvOptions::adult(), 1).unwrap();
        assert_eq!(r, vec!["39", "State-gov", "77516", "Bachelors"]);
    }

    #[test]
    fn preserves_whitespace_when_trim_disabled() {
        let opts = CsvOptions {
            trim: false,
            ..CsvOptions::default()
        };
        let r = parse_record("a, b", &opts, 1).unwrap();
        assert_eq!(r, vec!["a", " b"]);
    }

    #[test]
    fn quoted_fields_with_embedded_delimiters_and_quotes() {
        let r = parse_record(r#""a,b","say ""hi""",c"#, &CsvOptions::default(), 1).unwrap();
        assert_eq!(r, vec!["a,b", "say \"hi\"", "c"]);
    }

    #[test]
    fn unterminated_quote_is_an_error() {
        let e = parse_record("\"abc", &CsvOptions::default(), 7).unwrap_err();
        assert!(e.to_string().contains("line 7"));
    }

    #[test]
    fn garbage_after_quote_is_an_error() {
        assert!(parse_record("\"a\"x,b", &CsvOptions::default(), 1).is_err());
    }

    #[test]
    fn empty_fields_and_trailing_delimiter() {
        let r = parse_record("a,,c,", &CsvOptions::default(), 1).unwrap();
        assert_eq!(r, vec!["a", "", "c", ""]);
    }

    #[test]
    fn read_str_skips_comments_and_blanks() {
        let content = "|1x3 Cross validator\n\n25, Private\n38, Self-emp\n";
        let records = read_str(content, &CsvOptions::adult()).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0], vec!["25", "Private"]);
    }

    #[test]
    fn roundtrip_through_writer() {
        let records = vec![
            vec!["plain".to_string(), "with,comma".to_string()],
            vec!["with \"quote\"".to_string(), "".to_string()],
        ];
        let mut buf = Vec::new();
        write_records(&mut buf, &records, ',').unwrap();
        let text = String::from_utf8(buf).unwrap();
        let opts = CsvOptions {
            trim: false,
            skip_empty_lines: false,
            ..CsvOptions::default()
        };
        let parsed = read_str(&text, &opts).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn crlf_content_in_quotes_is_preserved_by_writer() {
        let records = vec![vec!["line1\nline2".to_string()]];
        let mut buf = Vec::new();
        write_records(&mut buf, &records, ',').unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with('"'));
    }
}
