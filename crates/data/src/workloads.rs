//! Synthetic workload generators for benchmarks and property tests.

use crate::error::{DataError, Result};
use df_prob::contingency::{Axis, ContingencyTable};
use df_prob::dist::{Continuous, Normal};
use df_prob::rng::Pcg32;

/// Random joint counts over `outcome × p attributes`, every cell positive.
///
/// `arities` gives each attribute's cardinality; cells draw uniformly from
/// `[1, max_cell]`. Useful for stress-testing subset audits where all ε are
/// finite.
pub fn random_joint_counts(
    rng: &mut Pcg32,
    n_outcomes: usize,
    arities: &[usize],
    max_cell: u32,
) -> Result<ContingencyTable> {
    if n_outcomes < 2 || arities.is_empty() || max_cell == 0 {
        return Err(DataError::Invalid(
            "need >=2 outcomes, >=1 attribute, positive max_cell".into(),
        ));
    }
    let mut axes = Vec::with_capacity(arities.len() + 1);
    axes.push(Axis::new(
        "outcome",
        (0..n_outcomes).map(|i| format!("y{i}")).collect(),
    )?);
    for (k, &a) in arities.iter().enumerate() {
        if a == 0 {
            return Err(DataError::Invalid(format!("attribute {k} has arity 0")));
        }
        axes.push(Axis::new(
            format!("attr{k}"),
            (0..a).map(|i| format!("v{i}")).collect(),
        )?);
    }
    let cells: usize = n_outcomes * arities.iter().product::<usize>();
    let data: Vec<f64> = (0..cells)
        .map(|_| 1.0 + rng.next_below(max_cell) as f64)
        .collect();
    ContingencyTable::from_data(axes, data).map_err(DataError::from)
}

/// A two-outcome group table with a *planted* ε: the positive-outcome rates
/// interpolate log-linearly from `base_rate` down to `base_rate · e^-eps`,
/// so the tightest ε of the table is exactly `eps` (up to the binary
/// complement's smaller ratio).
///
/// Returns `(group_rates, expected_epsilon)`.
pub fn planted_epsilon_rates(n_groups: usize, base_rate: f64, eps: f64) -> Result<(Vec<f64>, f64)> {
    if n_groups < 2 {
        return Err(DataError::Invalid("need >= 2 groups".into()));
    }
    if !(0.0 < base_rate && base_rate < 1.0) {
        return Err(DataError::Invalid("base_rate must lie in (0,1)".into()));
    }
    if eps < 0.0 {
        return Err(DataError::Invalid("eps must be non-negative".into()));
    }
    let rates: Vec<f64> = (0..n_groups)
        .map(|g| base_rate * (-eps * g as f64 / (n_groups - 1) as f64).exp())
        .collect();
    // The planted ε is on the positive outcome; the complement's ratio is
    // ln((1-min)/(1-max)) which is smaller whenever base_rate < 1/2 and eps
    // is the dominating side for small rates.
    let comp = ((1.0 - rates[n_groups - 1]) / (1.0 - rates[0])).ln();
    Ok((rates, eps.max(comp)))
}

/// A synthetic row-level audit workload: a frame of `n_rows` categorical
/// records over `outcome × attr0 × … × attr{p-1}`, with mildly skewed
/// category frequencies (squared-uniform draws) so the tallied table has
/// realistic imbalance without empty cells at scale.
///
/// Column names and vocabularies match [`random_joint_counts`]
/// (`outcome` with labels `y0…`, `attr{k}` with labels `v0…`), so the same
/// axes describe both workloads. This is the generator behind the
/// million-row streaming-ingestion benchmark.
pub fn synthetic_audit_frame(
    rng: &mut Pcg32,
    n_rows: usize,
    n_outcomes: usize,
    arities: &[usize],
) -> Result<crate::frame::DataFrame> {
    use crate::frame::{Column, DataFrame};
    if n_rows == 0 || n_outcomes < 2 || arities.is_empty() {
        return Err(DataError::Invalid(
            "need >=1 row, >=2 outcomes, >=1 attribute".into(),
        ));
    }
    if arities.contains(&0) {
        return Err(DataError::Invalid(
            "attribute arities must be positive".into(),
        ));
    }
    // Squared-uniform skew: code = ⌊u²·a⌋ gives P(k) = √((k+1)/a) − √(k/a),
    // decreasing in k — category 0 is the most common (≈ 1/√a mass).
    let mut draw_codes = |arity: usize| -> Vec<u32> {
        (0..n_rows)
            .map(|_| {
                let u = rng.next_f64();
                ((u * u * arity as f64) as usize).min(arity - 1) as u32
            })
            .collect()
    };
    let mut columns = Vec::with_capacity(arities.len() + 1);
    columns.push(Column::categorical_from_codes(
        "outcome",
        draw_codes(n_outcomes),
        (0..n_outcomes).map(|i| format!("y{i}")).collect(),
    )?);
    for (k, &a) in arities.iter().enumerate() {
        columns.push(Column::categorical_from_codes(
            format!("attr{k}"),
            draw_codes(a),
            (0..a).map(|i| format!("v{i}")).collect(),
        )?);
    }
    DataFrame::new(columns)
}

/// A drifting replay workload for online-monitor benchmarks and tests: a
/// frame of `n_rows` binary-outcome records over uniform intersectional
/// groups whose **planted ε drifts linearly** from `eps_start` at the top
/// of the frame to `eps_end` at the bottom.
///
/// Row `i` (stream position `t = i / (n_rows − 1)`) draws its group `g`
/// uniformly over the `∏ arities` intersections and its positive outcome
/// with probability
///
/// ```text
/// p_g(t) = base_rate · exp(−ε(t) · g / (G − 1)),   ε(t) = lerp(eps_start, eps_end, t)
/// ```
///
/// — the log-linear ramp of [`planted_epsilon_rates`], time-varying. A
/// sliding window replaying the frame therefore sees its ε climb (or
/// fall) towards `eps_end`, which is exactly the drift a deployed
/// fairness monitor must detect. Column names and vocabularies match
/// [`synthetic_audit_frame`] (`outcome` first — the layout the monitor's
/// `FrameChunks` sources expect).
pub fn drift_replay_frame(
    rng: &mut Pcg32,
    n_rows: usize,
    arities: &[usize],
    base_rate: f64,
    eps_start: f64,
    eps_end: f64,
) -> Result<crate::frame::DataFrame> {
    use crate::frame::{Column, DataFrame};
    if n_rows < 2 || arities.is_empty() {
        return Err(DataError::Invalid("need >=2 rows and >=1 attribute".into()));
    }
    if arities.contains(&0) {
        return Err(DataError::Invalid(
            "attribute arities must be positive".into(),
        ));
    }
    if !(0.0 < base_rate && base_rate < 1.0) {
        return Err(DataError::Invalid("base_rate must lie in (0,1)".into()));
    }
    if eps_start < 0.0 || eps_end < 0.0 {
        return Err(DataError::Invalid(
            "planted epsilons must be non-negative".into(),
        ));
    }
    let n_groups: usize = arities.iter().product();
    let denom = (n_groups.max(2) - 1) as f64;
    let mut outcome_codes = Vec::with_capacity(n_rows);
    let mut attr_codes: Vec<Vec<u32>> =
        arities.iter().map(|_| Vec::with_capacity(n_rows)).collect();
    for i in 0..n_rows {
        let t = i as f64 / (n_rows - 1) as f64;
        let eps_t = eps_start + (eps_end - eps_start) * t;
        // Uniform group, decoded mixed-radix (last attribute fastest) to
        // match the audit kernel's intersection indexing.
        let g = rng.next_below(n_groups as u32) as usize;
        let mut rem = g;
        for (k, &a) in arities.iter().enumerate().rev() {
            attr_codes[k].push((rem % a) as u32);
            rem /= a;
        }
        let p = base_rate * (-eps_t * g as f64 / denom).exp();
        outcome_codes.push(u32::from(rng.next_f64() < p));
    }
    let mut columns = Vec::with_capacity(arities.len() + 1);
    columns.push(Column::categorical_from_codes(
        "outcome",
        outcome_codes,
        vec!["y0".to_string(), "y1".to_string()],
    )?);
    for (k, codes) in attr_codes.into_iter().enumerate() {
        columns.push(Column::categorical_from_codes(
            format!("attr{k}"),
            codes,
            (0..arities[k]).map(|i| format!("v{i}")).collect(),
        )?);
    }
    DataFrame::new(columns)
}

/// The arrival process of a timestamped replay: how record timestamps
/// advance between consecutive rows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Evenly spaced arrivals: one record every `1 / rate` seconds.
    Uniform {
        /// Mean arrivals per second.
        rate: f64,
    },
    /// A Poisson process: i.i.d. exponential gaps with mean `1 / rate` —
    /// the usual model for independent user traffic.
    Poisson {
        /// Mean arrivals per second.
        rate: f64,
    },
    /// Bursty traffic: records arrive in back-to-back groups of `burst`
    /// sharing one timestamp, with `burst / rate`-second gaps between
    /// groups (same long-run rate). Stresses out-of-order-friendly
    /// bucketing: many records per instant, then silence.
    Bursty {
        /// Mean arrivals per second (long-run).
        rate: f64,
        /// Records per burst (≥ 1).
        burst: usize,
    },
}

impl ArrivalProcess {
    fn rate(&self) -> f64 {
        match *self {
            ArrivalProcess::Uniform { rate }
            | ArrivalProcess::Poisson { rate }
            | ArrivalProcess::Bursty { rate, .. } => rate,
        }
    }
}

/// One constant-ε segment of a timestamped replay; consecutive segments
/// meet at a **planted change-point**.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftSegment {
    /// Segment length in seconds.
    pub duration: f64,
    /// Planted ε over the segment (the log-linear group ramp of
    /// [`planted_epsilon_rates`]).
    pub epsilon: f64,
}

impl DriftSegment {
    /// A constant-ε stretch of stream time.
    pub fn new(duration: f64, epsilon: f64) -> Self {
        Self { duration, epsilon }
    }
}

/// A timestamped replay stream: the rows, their arrival timestamps, and
/// where the planted change-points sit.
#[derive(Debug, Clone)]
pub struct TimestampedReplay {
    /// The records, in arrival order (`outcome`, `attr0`, …, as in
    /// [`synthetic_audit_frame`]).
    pub frame: crate::frame::DataFrame,
    /// Per-row arrival timestamp in seconds, non-decreasing from 0.
    pub timestamps: Vec<f64>,
    /// The planted change-point times: the boundary between segment `k`
    /// and `k + 1` sits at `change_points[k]` seconds.
    pub change_points: Vec<f64>,
}

/// One time bucket of a [`TimestampedReplay`], ready to feed a wall-clock
/// monitor: the coded rows of a single `⌊t / b⌋` bucket (column order of
/// the frame: outcome first), stamped with the bucket's first arrival.
#[derive(Debug, Clone)]
pub struct TimedChunk {
    rows: Vec<Vec<usize>>,
    /// Timestamp of the bucket's first arrival, in seconds.
    pub timestamp: f64,
}

impl TimedChunk {
    /// Records in the chunk.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }
}

impl df_prob::partial::Tally for TimedChunk {
    fn tally_into(&self, shard: &mut df_prob::partial::PartialCounts) -> df_prob::Result<()> {
        for row in &self.rows {
            shard.record(row);
        }
        Ok(())
    }
}

impl TimestampedReplay {
    /// Groups the replay into one [`TimedChunk`] per `⌊t / bucket_seconds⌋`
    /// time bucket (rows arrive in time order, so buckets are contiguous
    /// runs). This is the canonical feed shape for
    /// `FairnessMonitor::push_at`: one push per bucket gives change-point
    /// detectors a fixed `bucket_seconds` sampling cadence.
    pub fn bucket_chunks(&self, bucket_seconds: f64) -> Result<Vec<TimedChunk>> {
        if !(bucket_seconds.is_finite() && bucket_seconds > 0.0) {
            return Err(DataError::Invalid(format!(
                "bucket_seconds must be finite and positive, got {bucket_seconds}"
            )));
        }
        let names = self.frame.column_names();
        let columns: Vec<&[u32]> = names
            .iter()
            .map(|name| Ok(self.frame.column(name)?.as_categorical()?.0))
            .collect::<Result<_>>()?;
        let mut chunks: Vec<TimedChunk> = Vec::new();
        let mut current_bucket = None;
        for (i, &ts) in self.timestamps.iter().enumerate() {
            let bucket = (ts / bucket_seconds).floor() as i64;
            if current_bucket != Some(bucket) {
                current_bucket = Some(bucket);
                chunks.push(TimedChunk {
                    rows: Vec::new(),
                    timestamp: ts,
                });
            }
            let row = columns.iter().map(|codes| codes[i] as usize).collect();
            chunks
                .last_mut()
                .expect("chunk pushed above")
                .rows
                .push(row);
        }
        Ok(chunks)
    }
}

/// A **timestamped** drift replay for wall-clock monitors and change-point
/// golden tests: records arrive under `arrival` (uniform / Poisson /
/// bursty), and the planted ε is **piecewise constant** over `segments` —
/// crisp mean shifts at known instants, exactly what CUSUM/Page–Hinkley
/// rules are meant to catch (and what the linear ramp of
/// [`drift_replay_frame`] deliberately is not).
///
/// Per row at stream time `t` inside segment `s`: the group `g` is uniform
/// over the `∏ arities` intersections, and the positive outcome fires with
/// probability `base_rate · exp(−ε_s · g / (G − 1))` — the planted ε of
/// [`planted_epsilon_rates`]. Column names and vocabularies match
/// [`synthetic_audit_frame`].
pub fn timestamped_drift_stream(
    rng: &mut Pcg32,
    arities: &[usize],
    base_rate: f64,
    segments: &[DriftSegment],
    arrival: ArrivalProcess,
) -> Result<TimestampedReplay> {
    if arities.is_empty() || arities.contains(&0) {
        return Err(DataError::Invalid(
            "need >=1 attribute, all arities positive".into(),
        ));
    }
    if !(0.0 < base_rate && base_rate < 1.0) {
        return Err(DataError::Invalid("base_rate must lie in (0,1)".into()));
    }
    if segments.is_empty() {
        return Err(DataError::Invalid("need at least one segment".into()));
    }
    for seg in segments {
        if !(seg.duration.is_finite() && seg.duration > 0.0) {
            return Err(DataError::Invalid(format!(
                "segment durations must be finite and positive, got {}",
                seg.duration
            )));
        }
        if !(seg.epsilon.is_finite() && seg.epsilon >= 0.0) {
            return Err(DataError::Invalid(format!(
                "planted epsilons must be finite and non-negative, got {}",
                seg.epsilon
            )));
        }
    }
    let rate = arrival.rate();
    if !(rate.is_finite() && rate > 0.0) {
        return Err(DataError::Invalid(format!(
            "arrival rate must be finite and positive, got {rate}"
        )));
    }
    if let ArrivalProcess::Bursty { burst, .. } = arrival {
        if burst == 0 {
            return Err(DataError::Invalid("burst size must be >= 1".into()));
        }
    }
    let change_points: Vec<f64> = segments
        .iter()
        .take(segments.len() - 1)
        .scan(0.0, |acc, seg| {
            *acc += seg.duration;
            Some(*acc)
        })
        .collect();
    let total: f64 = segments.iter().map(|s| s.duration).sum();
    let n_groups: usize = arities.iter().product();
    let denom = (n_groups.max(2) - 1) as f64;
    let mut t = 0.0f64;
    let mut outcome_codes = Vec::new();
    let mut attr_codes: Vec<Vec<u32>> = arities.iter().map(|_| Vec::new()).collect();
    let mut timestamps = Vec::new();
    let mut arrived = 0usize;
    loop {
        // Advance the clock to the next arrival.
        t += match arrival {
            ArrivalProcess::Uniform { rate } => 1.0 / rate,
            ArrivalProcess::Poisson { rate } => {
                // Inverse-CDF exponential gap; 1 − u ∈ (0, 1] keeps ln finite.
                -(1.0 - rng.next_f64()).ln() / rate
            }
            ArrivalProcess::Bursty { rate, burst } => {
                if arrived.is_multiple_of(burst) {
                    burst as f64 / rate
                } else {
                    0.0
                }
            }
        };
        if t >= total {
            break;
        }
        arrived += 1;
        // The segment this instant falls in (piecewise-constant ε).
        let mut rem_t = t;
        let mut eps = segments[segments.len() - 1].epsilon;
        for seg in segments {
            if rem_t < seg.duration {
                eps = seg.epsilon;
                break;
            }
            rem_t -= seg.duration;
        }
        // Uniform group, decoded mixed-radix (last attribute fastest) to
        // match the audit kernel's intersection indexing.
        let g = rng.next_below(n_groups as u32) as usize;
        let mut rem = g;
        for (k, &a) in arities.iter().enumerate().rev() {
            attr_codes[k].push((rem % a) as u32);
            rem /= a;
        }
        let p = base_rate * (-eps * g as f64 / denom).exp();
        outcome_codes.push(u32::from(rng.next_f64() < p));
        timestamps.push(t);
    }
    if timestamps.len() < 2 {
        return Err(DataError::Invalid(
            "segments too short for the arrival rate: fewer than 2 records generated".into(),
        ));
    }
    use crate::frame::{Column, DataFrame};
    let mut columns = Vec::with_capacity(arities.len() + 1);
    columns.push(Column::categorical_from_codes(
        "outcome",
        outcome_codes,
        vec!["y0".to_string(), "y1".to_string()],
    )?);
    for (k, codes) in attr_codes.into_iter().enumerate() {
        columns.push(Column::categorical_from_codes(
            format!("attr{k}"),
            codes,
            (0..arities[k]).map(|i| format!("v{i}")).collect(),
        )?);
    }
    Ok(TimestampedReplay {
        frame: DataFrame::new(columns)?,
        timestamps,
        change_points,
    })
}

/// Which replicas of a fleet replay drift, and how: the replicas named
/// in `drift_replicas` follow the `drifted` segments; every other
/// replica follows `calm`.
#[derive(Debug, Clone, Copy)]
pub struct FleetDriftPlan<'a> {
    /// Number of replicas in the fleet (≥ 1).
    pub replicas: usize,
    /// Segments for the healthy replicas.
    pub calm: &'a [DriftSegment],
    /// Segments for the drifting replicas.
    pub drifted: &'a [DriftSegment],
    /// Indices (into `0..replicas`, no duplicates) of the replicas that
    /// follow `drifted`.
    pub drift_replicas: &'a [usize],
}

/// Per-replica timestamped replay streams for **fleet** workloads: one
/// [`TimestampedReplay`] per serving replica, all over the same schema
/// and arrival process, with a *planted per-shard drift* per the
/// [`FleetDriftPlan`].
///
/// This is the canonical fleet-aggregation stress: every calm replica's
/// own windowed ε stays near its planted level, the drifting replicas'
/// climb, and only the merged (union-of-traffic) snapshot measures the
/// fleet-wide ε — per-silo monitoring provably under-reports it. Streams
/// draw from one shared RNG sequentially, so a fleet is as reproducible
/// as a single stream.
pub fn fleet_drift_streams(
    rng: &mut Pcg32,
    arities: &[usize],
    base_rate: f64,
    plan: FleetDriftPlan<'_>,
    arrival: ArrivalProcess,
) -> Result<Vec<TimestampedReplay>> {
    if plan.replicas == 0 {
        return Err(DataError::Invalid("need at least one replica".into()));
    }
    for (i, &r) in plan.drift_replicas.iter().enumerate() {
        if r >= plan.replicas {
            return Err(DataError::Invalid(format!(
                "drift replica index {r} out of range for {} replicas",
                plan.replicas
            )));
        }
        if plan.drift_replicas[..i].contains(&r) {
            return Err(DataError::Invalid(format!(
                "drift replica index {r} listed twice"
            )));
        }
    }
    (0..plan.replicas)
        .map(|r| {
            let segments = if plan.drift_replicas.contains(&r) {
                plan.drifted
            } else {
                plan.calm
            };
            timestamped_drift_stream(rng, arities, base_rate, segments, arrival)
        })
        .collect()
}

/// Interleaves per-replica replays into the single global stream a
/// lone monitor would have seen: rows merged in timestamp order (ties
/// keep replica order — immaterial to any counts-derived state, since
/// same-bucket arrivals commute), change-points unioned. This is the
/// reference side of the fleet equivalence property: a fleet of monitors
/// over [`fleet_drift_streams`] must merge to byte-identical state as
/// one monitor over the interleaved stream.
pub fn interleave_replays(replays: &[TimestampedReplay]) -> Result<TimestampedReplay> {
    use crate::frame::{Column, DataFrame};
    let first = replays
        .first()
        .ok_or_else(|| DataError::Invalid("need at least one replay".into()))?;
    let names = first.frame.column_names();
    let mut vocabs: Vec<&[String]> = Vec::with_capacity(names.len());
    for name in &names {
        vocabs.push(first.frame.column(name)?.as_categorical()?.1);
    }
    let mut arrivals: Vec<(f64, usize, usize)> = Vec::new();
    for (replica, replay) in replays.iter().enumerate() {
        if replay.timestamps.len() != replay.frame.n_rows() {
            return Err(DataError::Invalid(format!(
                "replica {replica}: {} timestamps for {} rows",
                replay.timestamps.len(),
                replay.frame.n_rows()
            )));
        }
        if replay.frame.column_names() != names {
            return Err(DataError::Invalid(format!(
                "replica {replica} has a different column schema"
            )));
        }
        for (name, vocab) in names.iter().zip(&vocabs) {
            if replay.frame.column(name)?.as_categorical()?.1 != *vocab {
                return Err(DataError::Invalid(format!(
                    "replica {replica} column `{name}` has a different vocabulary"
                )));
            }
        }
        for (row, &ts) in replay.timestamps.iter().enumerate() {
            if !ts.is_finite() {
                return Err(DataError::Invalid(format!(
                    "replica {replica} row {row} has non-finite timestamp {ts}"
                )));
            }
            arrivals.push((ts, replica, row));
        }
    }
    // Stable sort on the timestamp alone: same-instant arrivals keep
    // replica-then-row order.
    arrivals.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite timestamps"));
    let per_replica_codes: Vec<Vec<&[u32]>> = replays
        .iter()
        .map(|replay| {
            names
                .iter()
                .map(|name| Ok(replay.frame.column(name)?.as_categorical()?.0))
                .collect::<Result<_>>()
        })
        .collect::<Result<_>>()?;
    let mut columns = Vec::with_capacity(names.len());
    for (c, (name, vocab)) in names.iter().zip(&vocabs).enumerate() {
        let codes: Vec<u32> = arrivals
            .iter()
            .map(|&(_, replica, row)| per_replica_codes[replica][c][row])
            .collect();
        columns.push(Column::categorical_from_codes(
            name.to_string(),
            codes,
            vocab.to_vec(),
        )?);
    }
    let timestamps: Vec<f64> = arrivals.iter().map(|&(ts, _, _)| ts).collect();
    let mut change_points: Vec<f64> = replays
        .iter()
        .flat_map(|r| r.change_points.iter().copied())
        .collect();
    change_points.sort_by(|a, b| a.partial_cmp(b).expect("finite change-points"));
    change_points.dedup();
    Ok(TimestampedReplay {
        frame: DataFrame::new(columns)?,
        timestamps,
        change_points,
    })
}

/// Renders the named categorical columns of a frame as headerless CSV —
/// the on-disk shape consumed by the streaming CSV reader
/// (`df_data::chunks::CsvChunks`). Used to build large ingestion
/// benchmarks without shipping data files.
pub fn frame_to_csv(frame: &crate::frame::DataFrame, columns: &[&str]) -> Result<String> {
    let cols: Vec<(&[u32], &[String])> = columns
        .iter()
        .map(|n| frame.column(n)?.as_categorical())
        .collect::<Result<_>>()?;
    if cols.is_empty() {
        return Err(DataError::Invalid("need at least one column".into()));
    }
    // Pre-quote each vocabulary entry once (RFC-4180), so labels containing
    // delimiters, quotes, or newlines survive the round trip.
    let quoted: Vec<Vec<String>> = cols
        .iter()
        .map(|(_, vocab)| {
            vocab
                .iter()
                .map(|label| {
                    if label.contains([',', '"', '\n', '\r']) {
                        format!("\"{}\"", label.replace('"', "\"\""))
                    } else {
                        label.clone()
                    }
                })
                .collect()
        })
        .collect();
    let mut out = String::with_capacity(frame.n_rows() * columns.len() * 4);
    for row in 0..frame.n_rows() {
        for (k, (codes, _)) in cols.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            out.push_str(&quoted[k][codes[row] as usize]);
        }
        out.push('\n');
    }
    Ok(out)
}

/// Score populations for threshold-mechanism workloads: per-group Gaussian
/// test-score distributions, as in the paper's Figure 2.
#[derive(Debug, Clone)]
pub struct GaussianScoreGroups {
    /// Per-group score distribution.
    pub distributions: Vec<Normal>,
    /// Per-group population weight.
    pub weights: Vec<f64>,
}

impl GaussianScoreGroups {
    /// Builds the workload; `means`, `std_devs`, `weights` must be equal
    /// length with at least two groups.
    pub fn new(means: &[f64], std_devs: &[f64], weights: &[f64]) -> Result<Self> {
        if means.len() < 2 || means.len() != std_devs.len() || means.len() != weights.len() {
            return Err(DataError::Invalid(
                "means/std_devs/weights must be equal-length with >=2 groups".into(),
            ));
        }
        let distributions = means
            .iter()
            .zip(std_devs)
            .map(|(&m, &s)| Normal::new(m, s))
            .collect::<std::result::Result<_, _>>()?;
        Ok(Self {
            distributions,
            weights: weights.to_vec(),
        })
    }

    /// The paper's Figure 2 workload: two equally likely groups with scores
    /// N(10, 1) and N(12, 1).
    pub fn figure2() -> Self {
        Self::new(&[10.0, 12.0], &[1.0, 1.0], &[0.5, 0.5]).expect("static workload")
    }

    /// Number of groups.
    pub fn n_groups(&self) -> usize {
        self.distributions.len()
    }

    /// Analytic `P(score ≥ t | group)` per group.
    pub fn pass_rates(&self, threshold: f64) -> Vec<f64> {
        self.distributions
            .iter()
            .map(|d| 1.0 - d.cdf(threshold))
            .collect()
    }

    /// Samples `(group, score)` pairs.
    pub fn sample(&self, rng: &mut Pcg32, n: usize) -> Vec<(usize, f64)> {
        use df_prob::dist::{Categorical, Sampler};
        let group_dist = Categorical::new(&self.weights).expect("weights validated");
        (0..n)
            .map(|_| {
                let g = group_dist.sample(rng);
                let score = self.distributions[g].sample(rng);
                (g, score)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_counts_all_positive() {
        let mut rng = Pcg32::new(1);
        let t = random_joint_counts(&mut rng, 2, &[2, 3], 100).unwrap();
        assert_eq!(t.num_cells(), 12);
        assert!(t.data().iter().all(|&v| v >= 1.0));
        assert!(random_joint_counts(&mut rng, 1, &[2], 10).is_err());
        assert!(random_joint_counts(&mut rng, 2, &[], 10).is_err());
        assert!(random_joint_counts(&mut rng, 2, &[0], 10).is_err());
    }

    #[test]
    fn planted_epsilon_is_exact_on_positive_outcome() {
        let (rates, expected) = planted_epsilon_rates(4, 0.3, 1.5).unwrap();
        assert_eq!(rates.len(), 4);
        let realized = (rates[0] / rates[3]).ln();
        assert!((realized - 1.5).abs() < 1e-12);
        assert!(expected >= 1.5);
        assert!(planted_epsilon_rates(1, 0.3, 1.0).is_err());
        assert!(planted_epsilon_rates(3, 0.0, 1.0).is_err());
        assert!(planted_epsilon_rates(3, 0.3, -1.0).is_err());
    }

    #[test]
    fn synthetic_audit_frame_shape_and_coverage() {
        let mut rng = Pcg32::new(3);
        let frame = synthetic_audit_frame(&mut rng, 5_000, 2, &[2, 3]).unwrap();
        assert_eq!(frame.n_rows(), 5_000);
        assert_eq!(frame.column_names(), vec!["outcome", "attr0", "attr1"]);
        let t = frame.contingency(&["outcome", "attr0", "attr1"]).unwrap();
        assert_eq!(t.total(), 5_000.0);
        // At this scale every cell should be populated.
        assert!(t.data().iter().all(|&v| v > 0.0));
        assert!(synthetic_audit_frame(&mut rng, 0, 2, &[2]).is_err());
        assert!(synthetic_audit_frame(&mut rng, 10, 1, &[2]).is_err());
        assert!(synthetic_audit_frame(&mut rng, 10, 2, &[]).is_err());
        assert!(synthetic_audit_frame(&mut rng, 10, 2, &[0]).is_err());
    }

    #[test]
    fn drift_replay_frame_plants_a_rising_epsilon() {
        let mut rng = Pcg32::new(11);
        let n = 120_000;
        let frame = drift_replay_frame(&mut rng, n, &[2, 2], 0.4, 0.0, 1.5).unwrap();
        assert_eq!(frame.n_rows(), n);
        assert_eq!(frame.column_names(), vec!["outcome", "attr0", "attr1"]);
        // Positive rate of the worst group vs the best, head vs tail of the
        // stream: the log-ratio must grow towards the planted eps_end.
        let (outcome, _) = frame.column("outcome").unwrap().as_categorical().unwrap();
        let (a0, _) = frame.column("attr0").unwrap().as_categorical().unwrap();
        let (a1, _) = frame.column("attr1").unwrap().as_categorical().unwrap();
        let log_gap = |range: std::ops::Range<usize>| {
            let (mut pos, mut tot) = ([0.0f64; 2], [0.0f64; 2]);
            for i in range {
                let g = (a0[i] * 2 + a1[i]) as usize;
                // Compare the extreme groups 0 and 3 only.
                let slot = match g {
                    0 => 0,
                    3 => 1,
                    _ => continue,
                };
                tot[slot] += 1.0;
                pos[slot] += f64::from(outcome[i]);
            }
            ((pos[0] / tot[0]) / (pos[1] / tot[1])).ln()
        };
        let head = log_gap(0..20_000);
        let tail = log_gap(n - 20_000..n);
        assert!(head.abs() < 0.15, "head gap {head} should be near 0");
        assert!((tail - 1.5).abs() < 0.25, "tail gap {tail} should near 1.5");

        // Validation.
        assert!(drift_replay_frame(&mut rng, 1, &[2], 0.4, 0.0, 1.0).is_err());
        assert!(drift_replay_frame(&mut rng, 10, &[], 0.4, 0.0, 1.0).is_err());
        assert!(drift_replay_frame(&mut rng, 10, &[0], 0.4, 0.0, 1.0).is_err());
        assert!(drift_replay_frame(&mut rng, 10, &[2], 0.0, 0.0, 1.0).is_err());
        assert!(drift_replay_frame(&mut rng, 10, &[2], 0.4, -0.1, 1.0).is_err());
        assert!(drift_replay_frame(&mut rng, 10, &[2], 0.4, 0.0, -1.0).is_err());
    }

    #[test]
    fn timestamped_stream_plants_a_step_change() {
        let mut rng = Pcg32::new(9);
        let segments = [DriftSegment::new(200.0, 0.0), DriftSegment::new(200.0, 1.5)];
        let replay = timestamped_drift_stream(
            &mut rng,
            &[2, 2],
            0.4,
            &segments,
            ArrivalProcess::Poisson { rate: 100.0 },
        )
        .unwrap();
        assert_eq!(replay.change_points, vec![200.0]);
        let n = replay.frame.n_rows();
        assert_eq!(replay.timestamps.len(), n);
        // Poisson at 100/s over 400 s ≈ 40k rows.
        assert!((35_000..45_000).contains(&n), "n = {n}");
        // Timestamps are non-decreasing and inside the stream span.
        assert!(replay.timestamps.windows(2).all(|w| w[0] <= w[1]));
        assert!(replay.timestamps[0] >= 0.0);
        assert!(*replay.timestamps.last().unwrap() < 400.0);
        // The group-0 vs group-3 log-gap steps from ≈0 to ≈1.5 across the
        // planted change-point.
        let (outcome, _) = replay
            .frame
            .column("outcome")
            .unwrap()
            .as_categorical()
            .unwrap();
        let (a0, _) = replay
            .frame
            .column("attr0")
            .unwrap()
            .as_categorical()
            .unwrap();
        let (a1, _) = replay
            .frame
            .column("attr1")
            .unwrap()
            .as_categorical()
            .unwrap();
        let log_gap = |pred: &dyn Fn(f64) -> bool| {
            let (mut pos, mut tot) = ([0.0f64; 2], [0.0f64; 2]);
            for i in 0..n {
                if !pred(replay.timestamps[i]) {
                    continue;
                }
                let slot = match (a0[i] * 2 + a1[i]) as usize {
                    0 => 0,
                    3 => 1,
                    _ => continue,
                };
                tot[slot] += 1.0;
                pos[slot] += f64::from(outcome[i]);
            }
            ((pos[0] / tot[0]) / (pos[1] / tot[1])).ln()
        };
        let before = log_gap(&|t| t < 200.0);
        let after = log_gap(&|t| t >= 200.0);
        assert!(before.abs() < 0.2, "pre-change gap {before} should be ~0");
        assert!(
            (after - 1.5).abs() < 0.3,
            "post-change gap {after} should be ~1.5"
        );
    }

    #[test]
    fn arrival_processes_shape_the_timeline() {
        let mut rng = Pcg32::new(21);
        let segments = [DriftSegment::new(50.0, 0.5)];
        // Uniform: exactly even spacing.
        let uni = timestamped_drift_stream(
            &mut rng,
            &[2],
            0.3,
            &segments,
            ArrivalProcess::Uniform { rate: 10.0 },
        )
        .unwrap();
        assert!(uni
            .timestamps
            .windows(2)
            .all(|w| (w[1] - w[0] - 0.1).abs() < 1e-9));
        assert!(uni.change_points.is_empty());
        // Bursty: groups of 5 share one timestamp (out-of-order-within-
        // bucket stress), with 0.5 s between groups.
        let bursty = timestamped_drift_stream(
            &mut rng,
            &[2],
            0.3,
            &segments,
            ArrivalProcess::Bursty {
                rate: 10.0,
                burst: 5,
            },
        )
        .unwrap();
        let same = bursty
            .timestamps
            .windows(2)
            .filter(|w| w[0] == w[1])
            .count();
        // 4 of every 5 consecutive gaps are zero.
        assert!(same as f64 / bursty.timestamps.len() as f64 > 0.7);
        // Long-run rates agree (~10/s over 50 s → ~500 rows).
        assert!((400..600).contains(&uni.frame.n_rows()));
        assert!((400..600).contains(&bursty.frame.n_rows()));
    }

    #[test]
    fn bucket_chunks_partition_the_replay_by_time_bucket() {
        use df_prob::partial::{PartialCounts, Tally};
        let mut rng = Pcg32::new(5);
        let replay = timestamped_drift_stream(
            &mut rng,
            &[2, 2],
            0.4,
            &[DriftSegment::new(60.0, 0.8)],
            ArrivalProcess::Poisson { rate: 20.0 },
        )
        .unwrap();
        let chunks = replay.bucket_chunks(5.0).unwrap();
        // Every row lands in exactly one chunk…
        let total: usize = chunks.iter().map(TimedChunk::n_rows).sum();
        assert_eq!(total, replay.frame.n_rows());
        // …chunks are stamped with a timestamp inside their own bucket,
        // in strictly increasing bucket order…
        let buckets: Vec<i64> = chunks
            .iter()
            .map(|c| (c.timestamp / 5.0).floor() as i64)
            .collect();
        assert!(buckets.windows(2).all(|w| w[0] < w[1]));
        // …and tallying all chunks reproduces the frame's joint counts.
        let axes = vec![
            Axis::new("outcome", vec!["y0".into(), "y1".into()]).unwrap(),
            Axis::new("attr0", vec!["v0".into(), "v1".into()]).unwrap(),
            Axis::new("attr1", vec!["v0".into(), "v1".into()]).unwrap(),
        ];
        let mut shard = PartialCounts::zeros(axes).unwrap();
        for chunk in &chunks {
            chunk.tally_into(&mut shard).unwrap();
        }
        let direct = replay
            .frame
            .contingency(&["outcome", "attr0", "attr1"])
            .unwrap();
        assert_eq!(shard.table().data(), direct.data());
        // Validation.
        assert!(replay.bucket_chunks(0.0).is_err());
        assert!(replay.bucket_chunks(f64::NAN).is_err());
    }

    #[test]
    fn timestamped_stream_validation() {
        let mut rng = Pcg32::new(1);
        let seg = [DriftSegment::new(10.0, 0.5)];
        let uni = ArrivalProcess::Uniform { rate: 10.0 };
        assert!(timestamped_drift_stream(&mut rng, &[], 0.4, &seg, uni).is_err());
        assert!(timestamped_drift_stream(&mut rng, &[0], 0.4, &seg, uni).is_err());
        assert!(timestamped_drift_stream(&mut rng, &[2], 0.0, &seg, uni).is_err());
        assert!(timestamped_drift_stream(&mut rng, &[2], 0.4, &[], uni).is_err());
        let bad_dur = [DriftSegment::new(0.0, 0.5)];
        assert!(timestamped_drift_stream(&mut rng, &[2], 0.4, &bad_dur, uni).is_err());
        let bad_eps = [DriftSegment::new(10.0, -0.5)];
        assert!(timestamped_drift_stream(&mut rng, &[2], 0.4, &bad_eps, uni).is_err());
        let bad_rate = ArrivalProcess::Uniform { rate: 0.0 };
        assert!(timestamped_drift_stream(&mut rng, &[2], 0.4, &seg, bad_rate).is_err());
        let bad_burst = ArrivalProcess::Bursty {
            rate: 10.0,
            burst: 0,
        };
        assert!(timestamped_drift_stream(&mut rng, &[2], 0.4, &seg, bad_burst).is_err());
        // Too sparse to make a stream.
        let sparse = ArrivalProcess::Uniform { rate: 0.01 };
        assert!(timestamped_drift_stream(&mut rng, &[2], 0.4, &seg, sparse).is_err());
    }

    #[test]
    fn fleet_streams_plant_per_shard_drift() {
        let mut rng = Pcg32::new(31);
        let calm = [DriftSegment::new(120.0, 0.0)];
        let drifted = [DriftSegment::new(60.0, 0.0), DriftSegment::new(60.0, 1.5)];
        let fleet = fleet_drift_streams(
            &mut rng,
            &[2, 2],
            0.4,
            FleetDriftPlan {
                replicas: 4,
                calm: &calm,
                drifted: &drifted,
                drift_replicas: &[2],
            },
            ArrivalProcess::Poisson { rate: 60.0 },
        )
        .unwrap();
        assert_eq!(fleet.len(), 4);
        // Only the drifting replica carries the planted change-point.
        assert!(fleet[0].change_points.is_empty());
        assert_eq!(fleet[2].change_points, vec![60.0]);
        // Every replica sees its own traffic at the shared rate.
        for replay in &fleet {
            assert!((5_000..10_000).contains(&replay.frame.n_rows()));
        }
        // Validation.
        let uni = ArrivalProcess::Uniform { rate: 10.0 };
        let plan = |replicas: usize, drift_replicas: &'static [usize]| FleetDriftPlan {
            replicas,
            calm: &[DriftSegment {
                duration: 120.0,
                epsilon: 0.0,
            }],
            drifted: &[DriftSegment {
                duration: 120.0,
                epsilon: 1.0,
            }],
            drift_replicas,
        };
        assert!(fleet_drift_streams(&mut rng, &[2], 0.4, plan(0, &[]), uni).is_err());
        assert!(fleet_drift_streams(&mut rng, &[2], 0.4, plan(2, &[2]), uni).is_err());
        assert!(fleet_drift_streams(&mut rng, &[2], 0.4, plan(2, &[0, 0]), uni).is_err());
    }

    #[test]
    fn interleaving_preserves_every_row_in_timestamp_order() {
        let mut rng = Pcg32::new(17);
        let calm = [DriftSegment::new(40.0, 0.2)];
        let fleet = fleet_drift_streams(
            &mut rng,
            &[2, 2],
            0.4,
            FleetDriftPlan {
                replicas: 3,
                calm: &calm,
                drifted: &calm,
                drift_replicas: &[],
            },
            ArrivalProcess::Bursty {
                rate: 25.0,
                burst: 5,
            },
        )
        .unwrap();
        let merged = interleave_replays(&fleet).unwrap();
        let total: usize = fleet.iter().map(|r| r.frame.n_rows()).sum();
        assert_eq!(merged.frame.n_rows(), total);
        assert_eq!(merged.timestamps.len(), total);
        assert!(merged.timestamps.windows(2).all(|w| w[0] <= w[1]));
        // The union of the per-replica joint counts is the merged frame's.
        let cols = ["outcome", "attr0", "attr1"];
        let mut summed = fleet[0].frame.contingency(&cols).unwrap();
        for replay in &fleet[1..] {
            summed
                .merge_from(&replay.frame.contingency(&cols).unwrap())
                .unwrap();
        }
        assert_eq!(
            summed.data(),
            merged.frame.contingency(&cols).unwrap().data()
        );
        // Validation: empty input and schema mismatches are refused.
        assert!(interleave_replays(&[]).is_err());
        let other = timestamped_drift_stream(
            &mut rng,
            &[3],
            0.4,
            &calm,
            ArrivalProcess::Uniform { rate: 25.0 },
        )
        .unwrap();
        assert!(interleave_replays(&[fleet[0].clone(), other]).is_err());
    }

    #[test]
    fn frame_to_csv_round_trips_through_contingency() {
        let mut rng = Pcg32::new(4);
        let frame = synthetic_audit_frame(&mut rng, 200, 2, &[2]).unwrap();
        let csv = frame_to_csv(&frame, &["outcome", "attr0"]).unwrap();
        assert_eq!(csv.lines().count(), 200);
        let records = crate::csv::read_str(&csv, &crate::csv::CsvOptions::default()).unwrap();
        assert_eq!(records.len(), 200);
        assert!(frame_to_csv(&frame, &[]).is_err());
        assert!(frame_to_csv(&frame, &["nope"]).is_err());
    }

    #[test]
    fn frame_to_csv_quotes_metacharacter_labels() {
        use crate::frame::{Column, DataFrame};
        let frame = DataFrame::new(vec![
            Column::categorical("y", &["no", "yes"]),
            Column::categorical("job", &["self-emp, inc", "say \"hi\""]),
        ])
        .unwrap();
        let csv = frame_to_csv(&frame, &["y", "job"]).unwrap();
        let records = crate::csv::read_str(&csv, &crate::csv::CsvOptions::default()).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0], vec!["no", "self-emp, inc"]);
        assert_eq!(records[1], vec!["yes", "say \"hi\""]);
    }

    #[test]
    fn figure2_pass_rates() {
        let w = GaussianScoreGroups::figure2();
        let rates = w.pass_rates(10.5);
        assert!((rates[0] - 0.3085).abs() < 1e-3);
        assert!((rates[1] - 0.9332).abs() < 1e-3);
    }

    #[test]
    fn sampled_pass_rates_match_analytic() {
        let w = GaussianScoreGroups::figure2();
        let mut rng = Pcg32::new(7);
        let samples = w.sample(&mut rng, 100_000);
        let mut pass = [0usize; 2];
        let mut total = [0usize; 2];
        for (g, score) in samples {
            total[g] += 1;
            if score >= 10.5 {
                pass[g] += 1;
            }
        }
        let analytic = w.pass_rates(10.5);
        for g in 0..2 {
            let emp = pass[g] as f64 / total[g] as f64;
            assert!((emp - analytic[g]).abs() < 0.01, "group {g}: {emp}");
        }
        // Roughly equal group sizes.
        assert!((total[0] as f64 / 100_000.0 - 0.5).abs() < 0.01);
    }

    #[test]
    fn workload_validation() {
        assert!(GaussianScoreGroups::new(&[1.0], &[1.0], &[1.0]).is_err());
        assert!(GaussianScoreGroups::new(&[1.0, 2.0], &[1.0], &[1.0, 1.0]).is_err());
        assert!(GaussianScoreGroups::new(&[1.0, 2.0], &[1.0, -1.0], &[1.0, 1.0]).is_err());
    }
}
