//! DFRL — a self-describing binary replay log for audit record streams.
//!
//! CSV is the interchange format; it is not a replay format. Re-auditing a
//! million-row stream through the CSV path re-parses every byte, re-interns
//! every label, and re-validates every field — all to recover `u32` codes
//! the first pass already computed. A DFRL log stores the interned form
//! directly: the schema (column names + vocabularies) once in a header, and
//! rows as packed code/cell columns, so replay is varint decoding straight
//! into [`ContingencyTable::tally_codes_trusted`] with no string ever
//! materialized.
//!
//! Wire layout (all integers little-endian; `varint` is unsigned LEB128):
//!
//! ```text
//! log    := magic "DFRL" | version u8 | frame(header) | frame(chunk)* | end
//! frame  := varint body_len (> 0) | body
//! end    := varint 0, then EOF (trailing bytes are an error)
//! header := n_cols varint | col × n_cols
//! col    := name str | kind u8 | [kind 0: n_labels varint | label str × n]
//! kind   := 0 (categorical: chunk cells are varint codes)
//!         | 1 (numeric: chunk cells are f64 bit patterns)
//! chunk  := n_rows varint | per column, in schema order:
//!             categorical: code varint × n_rows   (each < its vocab arity)
//!             numeric:     f64 (8 bytes LE) × n_rows
//! str    := varint byte_len | UTF-8 bytes
//! ```
//!
//! Decoding treats the log as untrusted input, exactly like the DFLT fleet
//! codec: truncation at any offset, bad magic or version, oversized frames,
//! element counts exceeding the bytes that remain, invalid UTF-8, duplicate
//! schema entries, out-of-range codes, and bytes after the end marker all
//! produce typed [`DataError::Replay`] errors — nothing panics, and no
//! allocation is sized by an attacker-chosen header field alone. Codes are
//! range-checked against their vocabulary once at decode, which is what
//! licenses the trusted (scan-free) tally downstream.
//!
//! Entry points:
//!
//! - [`ReplayWriter`] / [`ReplayChunks`]: streaming writer and reader.
//! - [`write_frame_log`] / [`read_frame_log`]: `Frame → log → Frame`.
//! - [`csv_to_log`]: one-shot CSV → DFRL conversion (interns via
//!   [`Interner`], so vocabularies are in first-occurrence order like
//!   [`Column::categorical`]).
//! - [`tally_from_log`]: log bytes → contingency table with no frame and
//!   no per-chunk schema re-check — the ≥5×-over-CSV replay fast path.

use crate::csv::CsvOptions;
use crate::error::{DataError, Result};
use crate::frame::{Column, ColumnData, DataFrame, Interner};
use df_prob::contingency::{Axis, ContingencyTable};
use df_prob::partial::{PartialCounts, Tally};
use df_prob::ProbError;
use std::collections::HashSet;
use std::io::{BufRead, Write};
use std::sync::Arc;

/// The log magic: `DFRL` ("differential-fairness replay log").
pub const MAGIC: [u8; 4] = *b"DFRL";
/// Current wire-format version.
pub const VERSION: u8 = 1;

const KIND_CATEGORICAL: u8 = 0;
const KIND_NUMERIC: u8 = 1;

/// Hard cap on a single frame's body, writer- and reader-enforced: big
/// enough for any realistic header or chunk, small enough that a hostile
/// length prefix cannot demand a giant allocation before any payload
/// arrives.
pub const MAX_FRAME_BYTES: usize = 1 << 26;

// ---------------------------------------------------------------------------
// Schema.
// ---------------------------------------------------------------------------

/// One column of a replay log's schema.
#[derive(Debug, Clone, PartialEq)]
pub enum LogColumn {
    /// Interned strings: chunk cells are varint codes into `vocab`.
    Categorical {
        /// Column name (unique within the schema).
        name: String,
        /// Vocabulary in interning (first-occurrence) order.
        vocab: Vec<String>,
    },
    /// Raw `f64` cells.
    Numeric {
        /// Column name (unique within the schema).
        name: String,
    },
}

impl LogColumn {
    /// The column's name.
    pub fn name(&self) -> &str {
        match self {
            LogColumn::Categorical { name, .. } | LogColumn::Numeric { name } => name,
        }
    }
}

/// A validated replay-log schema: at least one column, unique non-empty
/// column names, and per-column vocabularies with unique labels.
#[derive(Debug, Clone, PartialEq)]
pub struct LogSchema {
    columns: Vec<LogColumn>,
}

impl LogSchema {
    /// Validates and wraps a column list.
    pub fn new(columns: Vec<LogColumn>) -> Result<Self> {
        if columns.is_empty() {
            return Err(DataError::Invalid(
                "replay schema needs at least one column".into(),
            ));
        }
        let mut names: HashSet<&str> = HashSet::with_capacity(columns.len());
        for col in &columns {
            let name = col.name();
            if name.is_empty() {
                return Err(DataError::Invalid(
                    "replay schema column name is empty".into(),
                ));
            }
            if !names.insert(name) {
                return Err(DataError::Invalid(format!(
                    "replay schema has duplicate column `{name}`"
                )));
            }
            if let LogColumn::Categorical { vocab, .. } = col {
                if u32::try_from(vocab.len()).is_err() {
                    return Err(DataError::Invalid(format!(
                        "column `{name}` vocabulary exceeds u32 code space"
                    )));
                }
                let mut labels: HashSet<&str> = HashSet::with_capacity(vocab.len());
                for label in vocab {
                    if !labels.insert(label) {
                        return Err(DataError::Invalid(format!(
                            "column `{name}` has duplicate label `{label}`"
                        )));
                    }
                }
            }
        }
        Ok(Self { columns })
    }

    /// The schema taken verbatim from a frame's columns (categorical
    /// vocabularies in their interning order).
    pub fn of_frame(frame: &DataFrame) -> Result<Self> {
        let mut columns = Vec::with_capacity(frame.columns().len());
        for col in frame.columns() {
            columns.push(match col.data() {
                ColumnData::Categorical { vocab, .. } => LogColumn::Categorical {
                    name: col.name().to_string(),
                    vocab: vocab.clone(),
                },
                ColumnData::Numeric(_) => LogColumn::Numeric {
                    name: col.name().to_string(),
                },
            });
        }
        Self::new(columns)
    }

    /// The columns, in wire order.
    pub fn columns(&self) -> &[LogColumn] {
        &self.columns
    }
}

// ---------------------------------------------------------------------------
// Primitive writers (shared varint/str/f64 encoding).
// ---------------------------------------------------------------------------

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        // df-lint: allow(no-lossy-cast) -- masked to 7 bits the line before; the cast cannot lose information
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

// ---------------------------------------------------------------------------
// Streaming writer.
// ---------------------------------------------------------------------------

/// One column's worth of chunk data handed to [`ReplayWriter::write_chunk`].
#[derive(Debug, Clone, Copy)]
pub enum ChunkColumn<'a> {
    /// Codes for a categorical column (each must index its vocabulary).
    Codes(&'a [u32]),
    /// Cells for a numeric column.
    Values(&'a [f64]),
}

impl ChunkColumn<'_> {
    fn len(&self) -> usize {
        match self {
            ChunkColumn::Codes(c) => c.len(),
            ChunkColumn::Values(v) => v.len(),
        }
    }
}

/// Streaming DFRL writer: header up front, then row chunks, then an end
/// marker from [`ReplayWriter::finish`]. Dropping the writer without
/// calling `finish` leaves a truncated log that readers reject — the end
/// marker is what distinguishes a complete log from one cut off mid-write.
#[derive(Debug)]
pub struct ReplayWriter<W: Write> {
    out: W,
    schema: LogSchema,
    scratch: Vec<u8>,
    rows: u64,
    chunks: u64,
    bytes: u64,
}

impl<W: Write> ReplayWriter<W> {
    /// Validates the schema and writes the log preamble (magic, version,
    /// header frame).
    pub fn new(out: W, schema: LogSchema) -> Result<Self> {
        let mut w = Self {
            out,
            schema,
            scratch: Vec::new(),
            rows: 0,
            chunks: 0,
            bytes: 0,
        };
        w.emit(&MAGIC)?;
        w.emit(&[VERSION])?;
        let mut header = Vec::new();
        put_varint(&mut header, w.schema.columns.len() as u64);
        for col in &w.schema.columns {
            match col {
                LogColumn::Categorical { name, vocab } => {
                    put_str(&mut header, name);
                    header.push(KIND_CATEGORICAL);
                    put_varint(&mut header, vocab.len() as u64);
                    for label in vocab {
                        put_str(&mut header, label);
                    }
                }
                LogColumn::Numeric { name } => {
                    put_str(&mut header, name);
                    header.push(KIND_NUMERIC);
                }
            }
        }
        w.emit_frame(&header, "schema header")?;
        Ok(w)
    }

    /// The schema this writer encodes against.
    pub fn schema(&self) -> &LogSchema {
        &self.schema
    }

    /// Rows written so far.
    pub fn rows_written(&self) -> u64 {
        self.rows
    }

    /// Bytes emitted so far (preamble + frames).
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    fn emit(&mut self, bytes: &[u8]) -> Result<()> {
        self.out.write_all(bytes)?;
        self.bytes += bytes.len() as u64;
        Ok(())
    }

    fn emit_frame(&mut self, body: &[u8], what: &str) -> Result<()> {
        if body.len() > MAX_FRAME_BYTES {
            return Err(DataError::Invalid(format!(
                "{what} frame of {} bytes exceeds the {MAX_FRAME_BYTES}-byte cap; \
                 write smaller chunks",
                body.len()
            )));
        }
        let mut prefix = Vec::new();
        put_varint(&mut prefix, body.len() as u64);
        self.emit(&prefix)?;
        self.emit(body)
    }

    /// Writes one chunk of rows: one [`ChunkColumn`] per schema column, in
    /// schema order, all the same non-zero length, codes in range for
    /// their vocabulary. Validation failures are [`DataError::Invalid`]
    /// (writer misuse, not corrupt input) and leave nothing emitted.
    pub fn write_chunk(&mut self, columns: &[ChunkColumn<'_>]) -> Result<()> {
        if columns.len() != self.schema.columns.len() {
            return Err(DataError::Invalid(format!(
                "chunk has {} columns but the schema has {}",
                columns.len(),
                self.schema.columns.len()
            )));
        }
        let n_rows = columns.first().map_or(0, ChunkColumn::len);
        if n_rows == 0 {
            return Err(DataError::Invalid("chunk has no rows".into()));
        }
        for (col, spec) in columns.iter().zip(&self.schema.columns) {
            if col.len() != n_rows {
                return Err(DataError::Invalid(format!(
                    "chunk column `{}` has {} rows; expected {n_rows}",
                    spec.name(),
                    col.len()
                )));
            }
            match (col, spec) {
                (ChunkColumn::Codes(codes), LogColumn::Categorical { name, vocab }) => {
                    let arity = vocab.len() as u64;
                    if let Some(&bad) = codes.iter().find(|&&c| u64::from(c) >= arity) {
                        return Err(DataError::Invalid(format!(
                            "code {bad} out of range for column `{name}` ({arity} labels)"
                        )));
                    }
                }
                (ChunkColumn::Values(_), LogColumn::Numeric { .. }) => {}
                (ChunkColumn::Codes(_), LogColumn::Numeric { name }) => {
                    return Err(DataError::Invalid(format!(
                        "column `{name}` is numeric but the chunk supplies codes"
                    )));
                }
                (ChunkColumn::Values(_), LogColumn::Categorical { name, .. }) => {
                    return Err(DataError::Invalid(format!(
                        "column `{name}` is categorical but the chunk supplies values"
                    )));
                }
            }
        }
        self.scratch.clear();
        let mut body = std::mem::take(&mut self.scratch);
        put_varint(&mut body, n_rows as u64);
        for col in columns {
            match col {
                ChunkColumn::Codes(codes) => {
                    for &c in *codes {
                        put_varint(&mut body, u64::from(c));
                    }
                }
                ChunkColumn::Values(values) => {
                    for &v in *values {
                        put_f64(&mut body, v);
                    }
                }
            }
        }
        let result = self.emit_frame(&body, "chunk");
        self.scratch = body;
        result?;
        self.rows += n_rows as u64;
        self.chunks += 1;
        Ok(())
    }

    /// Writes the end marker, flushes, and returns the underlying writer
    /// along with the log's totals.
    pub fn finish(mut self) -> Result<(W, LogStats)> {
        let mut end = Vec::new();
        put_varint(&mut end, 0);
        self.emit(&end)?;
        self.out.flush()?;
        Ok((
            self.out,
            LogStats {
                rows: self.rows,
                chunks: self.chunks,
                bytes: self.bytes,
            },
        ))
    }
}

/// Totals for a written log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogStats {
    /// Rows across all chunks.
    pub rows: u64,
    /// Chunk frames written.
    pub chunks: u64,
    /// Total encoded bytes, preamble and end marker included.
    pub bytes: u64,
}

// ---------------------------------------------------------------------------
// Streaming reader: byte source + in-frame reader, every failure typed.
// ---------------------------------------------------------------------------

/// Pulls frames off a [`BufRead`], tracking the absolute byte offset so
/// every error names where the log went bad.
#[derive(Debug)]
struct FrameSource<R: BufRead> {
    inner: R,
    offset: u64,
}

impl<R: BufRead> FrameSource<R> {
    fn new(inner: R) -> Self {
        Self { inner, offset: 0 }
    }

    fn corrupt(&self, message: String) -> DataError {
        DataError::Replay {
            offset: self.offset,
            message,
        }
    }

    /// Reads exactly `buf.len()` bytes; EOF mid-read is a typed error.
    fn fill(&mut self, buf: &mut [u8], what: &str) -> Result<()> {
        let mut filled = 0usize;
        while filled < buf.len() {
            let dst = buf.get_mut(filled..).ok_or_else(|| DataError::Replay {
                offset: self.offset,
                message: format!("internal fill range error reading {what}"),
            })?;
            let got = self.inner.read(dst)?;
            if got == 0 {
                return Err(self.corrupt(format!(
                    "log truncated reading {what}: needed {} more bytes",
                    buf.len() - filled
                )));
            }
            filled += got;
            self.offset += got as u64;
        }
        Ok(())
    }

    fn byte(&mut self, what: &str) -> Result<u8> {
        let mut b = [0u8; 1];
        self.fill(&mut b, what)?;
        b.first().copied().ok_or_else(|| DataError::Replay {
            offset: self.offset,
            message: format!("internal one-byte read error for {what}"),
        })
    }

    /// Unsigned LEB128 straight off the stream (frame lengths).
    fn varint(&mut self, what: &str) -> Result<u64> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.byte(what)?;
            if shift == 63 && byte > 1 {
                return Err(self.corrupt(format!("varint overflows u64 in {what}")));
            }
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
            if shift > 63 {
                return Err(self.corrupt(format!("varint longer than 10 bytes in {what}")));
            }
        }
    }

    /// Reads one length-prefixed frame body, or `None` on the end marker.
    /// The length is capped by [`MAX_FRAME_BYTES`] before any allocation.
    fn frame(&mut self, what: &str) -> Result<Option<(u64, Vec<u8>)>> {
        let len = self.varint("frame length")?;
        if len == 0 {
            return Ok(None);
        }
        if len > MAX_FRAME_BYTES as u64 {
            return Err(self.corrupt(format!(
                "{what} frame claims {len} bytes, over the {MAX_FRAME_BYTES}-byte cap"
            )));
        }
        let start = self.offset;
        let n = usize::try_from(len)
            .map_err(|_| self.corrupt(format!("{what} frame length does not fit usize")))?
            .min(MAX_FRAME_BYTES);
        let mut body = vec![0u8; n];
        self.fill(&mut body, what)?;
        Ok(Some((start, body)))
    }

    /// Requires clean EOF (called after the end marker).
    fn expect_eof(&mut self) -> Result<()> {
        if !self.inner.fill_buf()?.is_empty() {
            return Err(self.corrupt("trailing bytes after the end marker".into()));
        }
        Ok(())
    }
}

/// Bounds-checked reader over one frame body; `base` is the frame's
/// absolute offset in the log so errors point at real byte positions.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    base: u64,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8], base: u64) -> Self {
        Self { buf, pos: 0, base }
    }

    fn corrupt(&self, message: String) -> DataError {
        DataError::Replay {
            offset: self.base + self.pos as u64,
            message,
        }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(self.corrupt(format!(
                "frame truncated reading {what}: needed {n} bytes, have {}",
                self.remaining()
            )));
        }
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| self.corrupt(format!("frame offset overflows reading {what}")))?;
        let slice = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| self.corrupt(format!("frame range out of bounds reading {what}")))?;
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self, what: &str) -> Result<u8> {
        self.take(1, what)?
            .first()
            .copied()
            .ok_or_else(|| self.corrupt(format!("empty read where {what} was promised")))
    }

    fn f64(&mut self, what: &str) -> Result<f64> {
        let bytes = self.take(8, what)?;
        let bytes: [u8; 8] = bytes
            .try_into()
            .map_err(|_| self.corrupt(format!("truncated f64 cell in {what}")))?;
        Ok(f64::from_bits(u64::from_le_bytes(bytes)))
    }

    fn varint(&mut self, what: &str) -> Result<u64> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.u8(what)?;
            if shift == 63 && byte > 1 {
                return Err(self.corrupt(format!("varint overflows u64 in {what}")));
            }
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
            if shift > 63 {
                return Err(self.corrupt(format!("varint longer than 10 bytes in {what}")));
            }
        }
    }

    /// A varint used as an element count: rejected when it exceeds the
    /// bytes still in the frame (every element costs ≥ 1 byte), so a
    /// hostile count can never size an allocation beyond held input.
    fn count(&mut self, what: &str) -> Result<usize> {
        let n = self.varint(what)?;
        if n > self.remaining() as u64 {
            return Err(self.corrupt(format!(
                "{what} claims {n} elements but only {} bytes remain in the frame",
                self.remaining()
            )));
        }
        usize::try_from(n)
            .map_err(|_| self.corrupt(format!("{what} of {n} does not fit this target's usize")))
    }

    fn str(&mut self, what: &str) -> Result<String> {
        let len = self.count(what)?;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| self.corrupt(format!("invalid UTF-8 in {what}")))
    }

    fn done(&self, what: &str) -> Result<()> {
        if self.remaining() != 0 {
            return Err(self.corrupt(format!("{} trailing bytes after {what}", self.remaining())));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Low-level log reader: schema + raw decoded chunks.
// ---------------------------------------------------------------------------

/// One decoded column of a chunk.
#[derive(Debug, Clone, PartialEq)]
enum RawColumn {
    Codes(Vec<u32>),
    Values(Vec<f64>),
}

/// One decoded chunk, columns in schema order, codes already range-checked
/// against their vocabularies.
#[derive(Debug, Clone, PartialEq)]
struct RawChunk {
    n_rows: usize,
    columns: Vec<RawColumn>,
}

/// Internal streaming decoder shared by every public read path.
#[derive(Debug)]
struct LogReader<R: BufRead> {
    source: FrameSource<R>,
    schema: LogSchema,
    /// Per-column arity for categorical columns (`None` for numeric),
    /// precomputed so chunk decode never re-derives it.
    arities: Vec<Option<u32>>,
    finished: bool,
}

impl<R: BufRead> LogReader<R> {
    fn new(inner: R) -> Result<Self> {
        let mut source = FrameSource::new(inner);
        let mut magic = [0u8; 4];
        source.fill(&mut magic, "magic")?;
        if magic != MAGIC {
            return Err(source.corrupt(format!("bad magic {magic:02x?}; not a DFRL replay log")));
        }
        let version = source.byte("version")?;
        if version != VERSION {
            return Err(source.corrupt(format!(
                "unsupported replay-log version {version} (expected {VERSION})"
            )));
        }
        let (base, header) = source
            .frame("schema header")?
            .ok_or_else(|| source.corrupt("missing schema header frame".into()))?;
        let schema = decode_header(&header, base)?;
        let arities = schema
            .columns
            .iter()
            .map(|c| match c {
                // Arity fits u32 by LogSchema validation.
                LogColumn::Categorical { vocab, .. } => u32::try_from(vocab.len()).ok(),
                LogColumn::Numeric { .. } => None,
            })
            .collect();
        Ok(Self {
            source,
            schema,
            arities,
            finished: false,
        })
    }

    fn next_chunk(&mut self) -> Result<Option<RawChunk>> {
        if self.finished {
            return Ok(None);
        }
        let (base, body) = match self.source.frame("chunk")? {
            Some(frame) => frame,
            None => {
                self.finished = true;
                self.source.expect_eof()?;
                return Ok(None);
            }
        };
        let mut r = Reader::new(&body, base);
        let n_rows = r.count("chunk row count")?;
        if n_rows == 0 {
            return Err(r.corrupt("chunk frame with zero rows".into()));
        }
        let mut columns = Vec::with_capacity(self.arities.len());
        for (spec, arity) in self.schema.columns.iter().zip(&self.arities) {
            match arity {
                Some(arity) => {
                    let mut codes = Vec::with_capacity(n_rows);
                    for _ in 0..n_rows {
                        let raw = r.varint("cell code")?;
                        let code =
                            u32::try_from(raw)
                                .ok()
                                .filter(|c| c < arity)
                                .ok_or_else(|| {
                                    r.corrupt(format!(
                                        "code {raw} out of range for column `{}` ({arity} labels)",
                                        spec.name()
                                    ))
                                })?;
                        codes.push(code);
                    }
                    columns.push(RawColumn::Codes(codes));
                }
                None => {
                    let mut values = Vec::with_capacity(n_rows);
                    for _ in 0..n_rows {
                        values.push(r.f64("numeric cell")?);
                    }
                    columns.push(RawColumn::Values(values));
                }
            }
        }
        r.done("chunk payload")?;
        Ok(Some(RawChunk { n_rows, columns }))
    }
}

fn decode_header(buf: &[u8], base: u64) -> Result<LogSchema> {
    let mut r = Reader::new(buf, base);
    let n_cols = r.count("schema column count")?;
    if n_cols == 0 {
        return Err(r.corrupt("schema declares zero columns".into()));
    }
    let mut columns = Vec::with_capacity(n_cols);
    for _ in 0..n_cols {
        let name = r.str("column name")?;
        let kind = r.u8("column kind")?;
        match kind {
            KIND_CATEGORICAL => {
                let n_labels = r.count("vocabulary size")?;
                let mut vocab = Vec::with_capacity(n_labels);
                for _ in 0..n_labels {
                    vocab.push(r.str("vocabulary label")?);
                }
                columns.push(LogColumn::Categorical { name, vocab });
            }
            KIND_NUMERIC => columns.push(LogColumn::Numeric { name }),
            k => {
                return Err(r.corrupt(format!("unknown column kind {k}")));
            }
        }
    }
    r.done("schema header")?;
    // Structural validation (duplicates, empty names) reuses the writer's
    // rules; surface failures as corruption at the header's offset.
    LogSchema::new(columns).map_err(|e| DataError::Replay {
        offset: base,
        message: e.to_string(),
    })
}

// ---------------------------------------------------------------------------
// Public read paths.
// ---------------------------------------------------------------------------

/// Schema shared by every [`CodeChunk`] a reader yields: the projected
/// categorical columns' names and vocabularies.
#[derive(Debug, PartialEq)]
pub struct CodeSchema {
    columns: Vec<(String, Vec<String>)>,
}

impl CodeSchema {
    /// `(name, vocabulary)` per projected column, in projection order.
    pub fn columns(&self) -> &[(String, Vec<String>)] {
        &self.columns
    }

    /// The axes matching the projected columns — pass these to the
    /// streaming audit entry point; chunk codes index them directly.
    pub fn axes(&self) -> Result<Vec<Axis>> {
        self.columns
            .iter()
            .map(|(name, vocab)| Axis::new(name.clone(), vocab.clone()).map_err(DataError::from))
            .collect()
    }
}

/// One decoded batch of rows: per-column `u32` codes, validated against
/// the log schema at decode time, plus a shared handle to that schema.
/// Implements [`Tally`], so it plugs straight into `Audit::of_stream`,
/// the monitor's `push`, and every other chunk consumer.
#[derive(Debug, Clone)]
pub struct CodeChunk {
    schema: Arc<CodeSchema>,
    columns: Vec<Vec<u32>>,
    n_rows: usize,
}

impl CodeChunk {
    /// Number of rows in this chunk.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// The decoded code columns, in projection order.
    pub fn columns(&self) -> &[Vec<u32>] {
        &self.columns
    }

    fn column_slices(&self) -> Vec<&[u32]> {
        self.columns.iter().map(Vec::as_slice).collect()
    }
}

impl Tally for CodeChunk {
    fn tally_into(&self, shard: &mut PartialCounts) -> df_prob::Result<()> {
        if shard.ndim() != self.columns.len() {
            return Err(ProbError::ShapeMismatch {
                context: "CodeChunk::tally_into",
                expected: self.columns.len(),
                actual: shard.ndim(),
            });
        }
        // Same contract as FrameChunk: the shard's axes must be exactly
        // this log's schema, or in-range codes would still land in wrong
        // cells.
        for (axis, (name, vocab)) in shard.axes().iter().zip(self.schema.columns()) {
            if axis.name() != name || axis.labels() != vocab.as_slice() {
                return Err(ProbError::InvalidParameter {
                    name: "shard",
                    reason: format!(
                        "axis `{}` does not match log column `{name}`'s vocabulary; \
                         build the audit axes with ReplayChunks::axes",
                        axis.name(),
                    ),
                });
            }
        }
        // Codes were range-checked against these vocabularies at decode,
        // so the scan-free bulk tally is sound.
        shard.record_codes_trusted(&self.column_slices())
    }
}

/// Streaming reader over a DFRL log's categorical columns, yielding
/// [`CodeChunk`]s ready for the trusted tally path.
///
/// By default every categorical column of the log is exposed, in schema
/// order; [`ReplayChunks::with_columns`] projects onto named columns
/// (e.g. outcome first, then the protected attributes). Iteration stops
/// permanently after the first error, mirroring `CsvChunks`.
#[derive(Debug)]
pub struct ReplayChunks<R: BufRead> {
    log: LogReader<R>,
    /// Schema positions of the projected columns, in projection order.
    projection: Vec<usize>,
    schema: Arc<CodeSchema>,
    done: bool,
}

impl<R: BufRead> ReplayChunks<R> {
    /// Opens a log and validates its preamble and schema header. The
    /// initial projection is every categorical column, in schema order;
    /// errors if the log has none.
    pub fn new(reader: R) -> Result<Self> {
        let log = LogReader::new(reader)?;
        let projection: Vec<usize> = log
            .schema
            .columns
            .iter()
            .enumerate()
            .filter(|(_, c)| matches!(c, LogColumn::Categorical { .. }))
            .map(|(i, _)| i)
            .collect();
        if projection.is_empty() {
            return Err(DataError::Invalid(
                "replay log has no categorical columns to tally".into(),
            ));
        }
        let schema = Arc::new(code_schema(&log.schema, &projection)?);
        Ok(Self {
            log,
            projection,
            schema,
            done: false,
        })
    }

    /// Projects onto the named categorical columns, in the given order.
    /// Unknown or numeric columns are an error.
    pub fn with_columns(mut self, columns: &[&str]) -> Result<Self> {
        if columns.is_empty() {
            return Err(DataError::Invalid("need at least one column".into()));
        }
        let mut projection = Vec::with_capacity(columns.len());
        for want in columns {
            let pos = self
                .log
                .schema
                .columns
                .iter()
                .position(|c| c.name() == *want)
                .ok_or_else(|| DataError::UnknownColumn((*want).to_string()))?;
            match self.log.schema.columns.get(pos) {
                Some(LogColumn::Categorical { .. }) => projection.push(pos),
                _ => {
                    return Err(DataError::WrongColumnType {
                        column: (*want).to_string(),
                        expected: "categorical",
                    })
                }
            }
        }
        self.schema = Arc::new(code_schema(&self.log.schema, &projection)?);
        self.projection = projection;
        Ok(self)
    }

    /// The full log schema, as decoded from the header.
    pub fn log_schema(&self) -> &LogSchema {
        &self.log.schema
    }

    /// The projected columns' shared schema (names + vocabularies).
    pub fn schema(&self) -> &Arc<CodeSchema> {
        &self.schema
    }

    /// The axes matching the projected columns, for the audit/monitor
    /// entry points.
    pub fn axes(&self) -> Result<Vec<Axis>> {
        self.schema.axes()
    }

    fn next_code_chunk(&mut self) -> Result<Option<CodeChunk>> {
        let raw = match self.log.next_chunk()? {
            Some(raw) => raw,
            None => return Ok(None),
        };
        let mut columns = Vec::with_capacity(self.projection.len());
        for &pos in &self.projection {
            match raw.columns.get(pos) {
                Some(RawColumn::Codes(codes)) => columns.push(codes.clone()),
                _ => {
                    return Err(DataError::Invalid(format!(
                        "projected column position {pos} is not categorical"
                    )))
                }
            }
        }
        Ok(Some(CodeChunk {
            schema: Arc::clone(&self.schema),
            columns,
            n_rows: raw.n_rows,
        }))
    }
}

fn code_schema(schema: &LogSchema, projection: &[usize]) -> Result<CodeSchema> {
    let mut columns = Vec::with_capacity(projection.len());
    for &pos in projection {
        match schema.columns.get(pos) {
            Some(LogColumn::Categorical { name, vocab }) => {
                columns.push((name.clone(), vocab.clone()));
            }
            _ => {
                return Err(DataError::Invalid(format!(
                    "projection position {pos} is not a categorical column"
                )))
            }
        }
    }
    Ok(CodeSchema { columns })
}

impl<R: BufRead> Iterator for ReplayChunks<R> {
    type Item = Result<CodeChunk>;

    fn next(&mut self) -> Option<Result<CodeChunk>> {
        if self.done {
            return None;
        }
        match self.next_code_chunk() {
            Ok(Some(chunk)) => Some(Ok(chunk)),
            Ok(None) => {
                self.done = true;
                None
            }
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

/// Tallies the named columns of a DFRL log straight into a contingency
/// table: varint decode → range check → `tally_codes_trusted`, with no
/// frame materialized, no strings touched after the header, and no
/// per-chunk schema re-check (the axes are built from the same header the
/// codes were validated against).
///
/// This is the replay fast path the `replay` bench pins at ≥5× the
/// `CsvChunks` tally on identical data.
pub fn tally_from_log<R: BufRead>(reader: R, columns: &[&str]) -> Result<ContingencyTable> {
    let mut chunks = ReplayChunks::new(reader)?.with_columns(columns)?;
    let axes = chunks.axes()?;
    let mut shard = PartialCounts::zeros(axes)?;
    while let Some(chunk) = chunks.next_code_chunk()? {
        shard.record_codes_trusted(&chunk.column_slices())?;
    }
    Ok(shard.into_table())
}

// ---------------------------------------------------------------------------
// Frame ↔ log converters and the CSV one-shot tool.
// ---------------------------------------------------------------------------

/// Writes a frame to a DFRL log, `chunk_rows` rows per chunk, returning
/// the log totals. The schema is the frame's columns verbatim, so
/// [`read_frame_log`] reconstructs an equal frame.
pub fn write_frame_log<W: Write>(frame: &DataFrame, chunk_rows: usize, out: W) -> Result<LogStats> {
    if chunk_rows == 0 {
        return Err(DataError::Invalid("chunk_rows must be positive".into()));
    }
    let schema = LogSchema::of_frame(frame)?;
    let mut writer = ReplayWriter::new(out, schema)?;
    let n_rows = frame.n_rows();
    let mut start = 0usize;
    while start < n_rows {
        let end = (start + chunk_rows).min(n_rows);
        let mut columns = Vec::with_capacity(frame.columns().len());
        for col in frame.columns() {
            match col.data() {
                ColumnData::Categorical { codes, .. } => {
                    let slice = codes.get(start..end).ok_or_else(|| {
                        DataError::Invalid(format!(
                            "row range {start}..{end} out of bounds for column `{}`",
                            col.name()
                        ))
                    })?;
                    columns.push(ChunkColumn::Codes(slice));
                }
                ColumnData::Numeric(values) => {
                    let slice = values.get(start..end).ok_or_else(|| {
                        DataError::Invalid(format!(
                            "row range {start}..{end} out of bounds for column `{}`",
                            col.name()
                        ))
                    })?;
                    columns.push(ChunkColumn::Values(slice));
                }
            }
        }
        writer.write_chunk(&columns)?;
        start = end;
    }
    let (_, stats) = writer.finish()?;
    Ok(stats)
}

/// Reads a complete DFRL log back into a [`DataFrame`] (the inverse of
/// [`write_frame_log`]): categorical codes and vocabularies land exactly
/// as written, numeric cells bit-for-bit.
pub fn read_frame_log<R: BufRead>(reader: R) -> Result<DataFrame> {
    let mut log = LogReader::new(reader)?;
    let mut accumulators: Vec<RawColumn> = log
        .schema
        .columns
        .iter()
        .map(|c| match c {
            LogColumn::Categorical { .. } => RawColumn::Codes(Vec::new()),
            LogColumn::Numeric { .. } => RawColumn::Values(Vec::new()),
        })
        .collect();
    while let Some(chunk) = log.next_chunk()? {
        for (acc, col) in accumulators.iter_mut().zip(chunk.columns) {
            match (acc, col) {
                (RawColumn::Codes(acc), RawColumn::Codes(codes)) => acc.extend(codes),
                (RawColumn::Values(acc), RawColumn::Values(values)) => acc.extend(values),
                _ => {
                    return Err(DataError::Invalid(
                        "decoded chunk column kind diverged from the schema".into(),
                    ))
                }
            }
        }
    }
    let mut columns = Vec::with_capacity(accumulators.len());
    for (spec, acc) in log.schema.columns.iter().zip(accumulators) {
        columns.push(match (spec, acc) {
            (LogColumn::Categorical { name, vocab }, RawColumn::Codes(codes)) => {
                Column::categorical_from_codes(name.clone(), codes, vocab.clone())?
            }
            (LogColumn::Numeric { name }, RawColumn::Values(values)) => {
                Column::numeric(name.clone(), values)
            }
            _ => {
                return Err(DataError::Invalid(
                    "accumulated column kind diverged from the schema".into(),
                ))
            }
        });
    }
    DataFrame::new(columns)
}

/// One-shot CSV → DFRL conversion: streams records through the CSV
/// reader, interns every field per column (first-occurrence order, via
/// the same [`Interner`] as [`Column::categorical`]), and writes the log.
/// Every record must have exactly `names.len()` fields.
pub fn csv_to_log<R: BufRead, W: Write>(
    reader: R,
    opts: &CsvOptions,
    names: &[&str],
    chunk_rows: usize,
    out: W,
) -> Result<LogStats> {
    if names.is_empty() {
        return Err(DataError::Invalid("need at least one column name".into()));
    }
    if chunk_rows == 0 {
        return Err(DataError::Invalid("chunk_rows must be positive".into()));
    }
    let mut interners: Vec<Interner> = names.iter().map(|_| Interner::new()).collect();
    let mut code_columns: Vec<Vec<u32>> = names.iter().map(|_| Vec::new()).collect();
    let mut chunks = crate::chunks::CsvChunks::new(reader, opts.clone(), chunk_rows)?;
    let mut rows = 0u64;
    for chunk in &mut chunks {
        for row in chunk?.rows() {
            if row.len() != names.len() {
                return Err(DataError::Invalid(format!(
                    "record {} has {} fields; expected {}",
                    rows + 1,
                    row.len(),
                    names.len()
                )));
            }
            for ((field, interner), codes) in row
                .iter()
                .zip(interners.iter_mut())
                .zip(code_columns.iter_mut())
            {
                codes.push(interner.intern(field));
            }
            rows += 1;
        }
    }
    let schema = LogSchema::new(
        names
            .iter()
            .zip(interners)
            .map(|(name, interner)| LogColumn::Categorical {
                name: (*name).to_string(),
                vocab: interner.into_vocab(),
            })
            .collect(),
    )?;
    let mut writer = ReplayWriter::new(out, schema)?;
    let n_rows = usize::try_from(rows)
        .map_err(|_| DataError::Invalid("row count does not fit usize".into()))?;
    let mut start = 0usize;
    while start < n_rows {
        let end = (start + chunk_rows).min(n_rows);
        let mut columns = Vec::with_capacity(code_columns.len());
        for codes in &code_columns {
            let slice = codes.get(start..end).ok_or_else(|| {
                DataError::Invalid(format!("row range {start}..{end} out of bounds"))
            })?;
            columns.push(ChunkColumn::Codes(slice));
        }
        writer.write_chunk(&columns)?;
        start = end;
    }
    let (_, stats) = writer.finish()?;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csv::read_str;
    use df_prob::rng::Pcg32;

    fn sample_frame() -> DataFrame {
        DataFrame::new(vec![
            Column::categorical("y", &["no", "yes", "yes", "no", "yes"]),
            Column::categorical("g", &["a", "a", "b", "b", "a"]),
            Column::numeric("score", vec![0.25, -1.5, f64::NAN, 3.75, 0.0]),
        ])
        .unwrap()
    }

    fn sample_log() -> Vec<u8> {
        let mut bytes = Vec::new();
        write_frame_log(&sample_frame(), 2, &mut bytes).unwrap();
        bytes
    }

    #[test]
    fn frame_log_frame_roundtrip_is_exact() {
        let frame = sample_frame();
        for chunk_rows in [1, 2, 3, 5, 100] {
            let mut bytes = Vec::new();
            let stats = write_frame_log(&frame, chunk_rows, &mut bytes).unwrap();
            assert_eq!(stats.rows, 5);
            assert_eq!(stats.bytes, bytes.len() as u64);
            let back = read_frame_log(bytes.as_slice()).unwrap();
            // Categorical columns compare exactly.
            for name in ["y", "g"] {
                assert_eq!(
                    back.column(name).unwrap().as_categorical().unwrap(),
                    frame.column(name).unwrap().as_categorical().unwrap(),
                );
            }
            // Numeric cells compare bit-for-bit (NaN included).
            let orig: Vec<u64> = frame
                .column("score")
                .unwrap()
                .as_numeric()
                .unwrap()
                .iter()
                .map(|v| v.to_bits())
                .collect();
            let got: Vec<u64> = back
                .column("score")
                .unwrap()
                .as_numeric()
                .unwrap()
                .iter()
                .map(|v| v.to_bits())
                .collect();
            assert_eq!(orig, got, "chunk_rows={chunk_rows}");
        }
    }

    #[test]
    fn empty_frame_roundtrips() {
        let frame = DataFrame::new(vec![Column::categorical::<&str>("y", &[])]).unwrap();
        let mut bytes = Vec::new();
        let stats = write_frame_log(&frame, 8, &mut bytes).unwrap();
        assert_eq!(stats.rows, 0);
        assert_eq!(stats.chunks, 0);
        let back = read_frame_log(bytes.as_slice()).unwrap();
        assert_eq!(back.n_rows(), 0);
    }

    #[test]
    fn tally_from_log_matches_batch_contingency() {
        let frame = sample_frame();
        let bytes = sample_log();
        let table = tally_from_log(bytes.as_slice(), &["y", "g"]).unwrap();
        let batch = frame.contingency(&["y", "g"]).unwrap();
        assert_eq!(table, batch);
        // Projection order is respected.
        let swapped = tally_from_log(bytes.as_slice(), &["g", "y"]).unwrap();
        let batch_swapped = frame.contingency(&["g", "y"]).unwrap();
        assert_eq!(swapped, batch_swapped);
    }

    #[test]
    fn replay_chunks_tally_through_the_monoid() {
        let bytes = sample_log();
        let chunks = ReplayChunks::new(bytes.as_slice())
            .unwrap()
            .with_columns(&["y", "g"])
            .unwrap();
        let axes = chunks.axes().unwrap();
        let mut shard = PartialCounts::zeros(axes).unwrap();
        for chunk in chunks {
            chunk.unwrap().tally_into(&mut shard).unwrap();
        }
        let batch = sample_frame().contingency(&["y", "g"]).unwrap();
        assert_eq!(shard.into_table(), batch);
    }

    #[test]
    fn replay_chunk_tally_rejects_mismatched_shard() {
        let bytes = sample_log();
        let mut chunks = ReplayChunks::new(bytes.as_slice())
            .unwrap()
            .with_columns(&["y", "g"])
            .unwrap();
        let chunk = chunks.next().unwrap().unwrap();
        let mut wrong_ndim =
            PartialCounts::zeros(vec![Axis::from_strs("y", &["no", "yes"]).unwrap()]).unwrap();
        assert!(chunk.tally_into(&mut wrong_ndim).is_err());
        let mut wrong_labels = PartialCounts::zeros(vec![
            Axis::from_strs("y", &["yes", "no"]).unwrap(),
            Axis::from_strs("g", &["a", "b"]).unwrap(),
        ])
        .unwrap();
        assert!(chunk.tally_into(&mut wrong_labels).is_err());
    }

    #[test]
    fn projection_validates() {
        let bytes = sample_log();
        assert!(matches!(
            ReplayChunks::new(bytes.as_slice())
                .unwrap()
                .with_columns(&["nope"]),
            Err(DataError::UnknownColumn(_))
        ));
        assert!(matches!(
            ReplayChunks::new(bytes.as_slice())
                .unwrap()
                .with_columns(&["score"]),
            Err(DataError::WrongColumnType { .. })
        ));
        assert!(ReplayChunks::new(bytes.as_slice())
            .unwrap()
            .with_columns(&[])
            .is_err());
        // A log with only numeric columns cannot be tallied.
        let frame = DataFrame::new(vec![Column::numeric("x", vec![1.0, 2.0])]).unwrap();
        let mut bytes = Vec::new();
        write_frame_log(&frame, 8, &mut bytes).unwrap();
        assert!(ReplayChunks::new(bytes.as_slice()).is_err());
    }

    #[test]
    fn csv_to_log_matches_csv_tally() {
        let csv = "no,a\nyes,a\nyes,b\nno,b\nyes,a\n";
        let mut bytes = Vec::new();
        let stats = csv_to_log(
            csv.as_bytes(),
            &CsvOptions::default(),
            &["y", "g"],
            2,
            &mut bytes,
        )
        .unwrap();
        assert_eq!(stats.rows, 5);
        assert_eq!(stats.chunks, 3);
        let table = tally_from_log(bytes.as_slice(), &["y", "g"]).unwrap();
        let frame = DataFrame::new(vec![
            Column::categorical("y", &["no", "yes", "yes", "no", "yes"]),
            Column::categorical("g", &["a", "a", "b", "b", "a"]),
        ])
        .unwrap();
        assert_eq!(table, frame.contingency(&["y", "g"]).unwrap());
        // Vocabularies are in first-occurrence order, matching the
        // frame interner.
        let chunks = ReplayChunks::new(bytes.as_slice()).unwrap();
        let schema = chunks.log_schema();
        match schema.columns().first().unwrap() {
            LogColumn::Categorical { vocab, .. } => {
                assert_eq!(vocab, &["no".to_string(), "yes".to_string()]);
            }
            other => panic!("unexpected column {other:?}"),
        }
        // Arity mismatch in the CSV is a typed error.
        let bad = "a,b\nc\n";
        assert!(csv_to_log(
            bad.as_bytes(),
            &CsvOptions::default(),
            &["x", "y"],
            4,
            Vec::new()
        )
        .is_err());
    }

    #[test]
    fn csv_to_log_handles_quoted_multiline_fields() {
        // The fixed CSV reader feeds the converter: embedded newlines and
        // CRLF terminators survive the round trip into interned labels.
        let records = vec![
            vec!["multi\nline".to_string(), "x".to_string()],
            vec!["plain".to_string(), "x".to_string()],
        ];
        let mut csv = Vec::new();
        crate::csv::write_records(&mut csv, &records, ',').unwrap();
        let opts = CsvOptions {
            trim: false,
            skip_empty_lines: false,
            ..CsvOptions::default()
        };
        // Sanity: the batch reader agrees before converting.
        assert_eq!(
            read_str(std::str::from_utf8(&csv).unwrap(), &opts).unwrap(),
            records
        );
        let mut bytes = Vec::new();
        csv_to_log(csv.as_slice(), &opts, &["a", "b"], 8, &mut bytes).unwrap();
        let back = read_frame_log(bytes.as_slice()).unwrap();
        assert_eq!(back.column("a").unwrap().value_str(0), "multi\nline");
    }

    #[test]
    fn writer_validates_chunks() {
        let schema = LogSchema::new(vec![
            LogColumn::Categorical {
                name: "y".into(),
                vocab: vec!["no".into(), "yes".into()],
            },
            LogColumn::Numeric { name: "s".into() },
        ])
        .unwrap();
        let mut w = ReplayWriter::new(Vec::new(), schema.clone()).unwrap();
        // Wrong column count.
        assert!(w.write_chunk(&[ChunkColumn::Codes(&[0])]).is_err());
        // Zero rows.
        assert!(w
            .write_chunk(&[ChunkColumn::Codes(&[]), ChunkColumn::Values(&[])])
            .is_err());
        // Length mismatch.
        assert!(w
            .write_chunk(&[ChunkColumn::Codes(&[0, 1]), ChunkColumn::Values(&[1.0])])
            .is_err());
        // Kind mismatch, both directions.
        assert!(w
            .write_chunk(&[ChunkColumn::Values(&[0.0]), ChunkColumn::Values(&[1.0])])
            .is_err());
        assert!(w
            .write_chunk(&[ChunkColumn::Codes(&[0]), ChunkColumn::Codes(&[0])])
            .is_err());
        // Out-of-range code.
        assert!(w
            .write_chunk(&[ChunkColumn::Codes(&[2]), ChunkColumn::Values(&[1.0])])
            .is_err());
        // A valid chunk still goes through after the failures.
        w.write_chunk(&[
            ChunkColumn::Codes(&[0, 1]),
            ChunkColumn::Values(&[1.0, 2.0]),
        ])
        .unwrap();
        let (bytes, stats) = w.finish().unwrap();
        assert_eq!(stats.rows, 2);
        assert_eq!(stats.bytes, bytes.len() as u64);
        let back = read_frame_log(bytes.as_slice()).unwrap();
        assert_eq!(back.n_rows(), 2);
    }

    #[test]
    fn schema_validation_rejects_degenerate_inputs() {
        assert!(LogSchema::new(vec![]).is_err());
        assert!(LogSchema::new(vec![LogColumn::Numeric { name: "".into() }]).is_err());
        assert!(LogSchema::new(vec![
            LogColumn::Numeric { name: "x".into() },
            LogColumn::Numeric { name: "x".into() },
        ])
        .is_err());
        assert!(LogSchema::new(vec![LogColumn::Categorical {
            name: "y".into(),
            vocab: vec!["a".into(), "a".into()],
        }])
        .is_err());
    }

    #[test]
    fn truncation_at_every_prefix_is_a_typed_error() {
        let bytes = sample_log();
        for cut in 0..bytes.len() {
            let prefix = &bytes[..cut];
            // Never panics; always a typed error (a prefix can never be a
            // valid log because the end marker + EOF is required).
            let frame_err = read_frame_log(prefix).unwrap_err();
            match frame_err {
                DataError::Replay { .. } | DataError::Io(_) => {}
                other => panic!("unexpected error at cut {cut}: {other:?}"),
            }
            match ReplayChunks::new(prefix) {
                Ok(chunks) => {
                    let results: Vec<_> = chunks.collect();
                    assert!(
                        results.iter().any(|r| r.is_err()),
                        "prefix of {cut} bytes decoded cleanly"
                    );
                }
                Err(DataError::Replay { .. }) | Err(DataError::Io(_)) => {}
                Err(other) => panic!("unexpected error at cut {cut}: {other:?}"),
            }
        }
    }

    #[test]
    fn bit_flips_never_panic_and_usually_error() {
        let bytes = sample_log();
        let mut rng = Pcg32::new(42);
        for _ in 0..500 {
            let mut corrupt = bytes.clone();
            let pos = rng.next_below(corrupt.len() as u32) as usize;
            let bit = 1u8 << rng.next_below(8);
            corrupt[pos] ^= bit;
            // Either a typed error or a structurally different (but
            // valid) log — never a panic, never trusted garbage codes.
            if let Ok(frame) = read_frame_log(corrupt.as_slice()) {
                for col in frame.columns() {
                    if let ColumnData::Categorical { codes, vocab } = col.data() {
                        assert!(codes.iter().all(|&c| (c as usize) < vocab.len()));
                    }
                }
            }
        }
    }

    #[test]
    fn structural_corruption_yields_replay_errors() {
        let bytes = sample_log();
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert!(matches!(
            read_frame_log(bad.as_slice()),
            Err(DataError::Replay { .. })
        ));
        // Unsupported version.
        let mut bad = bytes.clone();
        bad[4] = 99;
        assert!(matches!(
            read_frame_log(bad.as_slice()),
            Err(DataError::Replay { .. })
        ));
        // Trailing garbage after the end marker.
        let mut bad = bytes.clone();
        bad.push(0x17);
        let e = read_frame_log(bad.as_slice()).unwrap_err();
        assert!(e.to_string().contains("trailing"), "{e}");
        // Missing end marker (clean cut before the final 0 byte).
        let cut = &bytes[..bytes.len() - 1];
        assert!(matches!(read_frame_log(cut), Err(DataError::Replay { .. })));
        // Oversized frame claim.
        let mut forged = bytes[..5].to_vec();
        let mut huge = Vec::new();
        put_varint(&mut huge, (MAX_FRAME_BYTES as u64) + 1);
        forged.extend_from_slice(&huge);
        let e = ReplayChunks::new(forged.as_slice()).unwrap_err();
        assert!(e.to_string().contains("cap"), "{e}");
        // Errors carry byte offsets.
        let e = read_frame_log(&bytes[..3]).unwrap_err();
        assert!(e.to_string().contains("byte"), "{e}");
    }

    #[test]
    fn out_of_range_code_is_rejected_at_decode() {
        // Hand-build a log whose chunk carries code 2 against a 2-label
        // vocabulary: structurally well-formed, semantically corrupt.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(VERSION);
        let mut header = Vec::new();
        put_varint(&mut header, 1);
        put_str(&mut header, "y");
        header.push(KIND_CATEGORICAL);
        put_varint(&mut header, 2);
        put_str(&mut header, "no");
        put_str(&mut header, "yes");
        put_varint(&mut bytes, header.len() as u64);
        bytes.extend_from_slice(&header);
        let mut chunk = Vec::new();
        put_varint(&mut chunk, 1); // one row
        put_varint(&mut chunk, 2); // code 2: out of range
        put_varint(&mut bytes, chunk.len() as u64);
        bytes.extend_from_slice(&chunk);
        put_varint(&mut bytes, 0);
        let e = read_frame_log(bytes.as_slice()).unwrap_err();
        assert!(e.to_string().contains("out of range"), "{e}");
        // The tally path refuses it identically.
        assert!(tally_from_log(bytes.as_slice(), &["y"]).is_err());
    }

    #[test]
    fn hostile_counts_cannot_force_giant_allocations() {
        // A header frame claiming 2^40 columns inside a 16-byte body must
        // die on the count-vs-remaining check, not allocate.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(VERSION);
        let mut header = Vec::new();
        put_varint(&mut header, 1u64 << 40);
        header.extend_from_slice(&[0u8; 8]);
        put_varint(&mut bytes, header.len() as u64);
        bytes.extend_from_slice(&header);
        let e = ReplayChunks::new(bytes.as_slice()).unwrap_err();
        assert!(e.to_string().contains("elements"), "{e}");
    }
}
