//! Protected-attribute preparation.
//!
//! §6 of the paper prepares the Adult dataset's protected attributes before
//! analysis: race's rare categories (Native American, Other) are merged, and
//! nationality is binarized to US / Non-US. [`ProtectedSpec`] captures such
//! transformations declaratively and applies them to a [`DataFrame`],
//! producing derived categorical columns suitable for contingency tallies.

use crate::error::{DataError, Result};
use crate::frame::{Column, DataFrame};

/// How one protected column is derived from a source column.
#[derive(Debug, Clone, PartialEq)]
pub enum Transform {
    /// Use the source values as-is.
    Identity,
    /// Map listed source values to replacement values; unlisted values pass
    /// through unchanged.
    Merge(Vec<(String, String)>),
    /// Binarize: source values equal to `match_value` become `positive`,
    /// all others become `negative`.
    Binarize {
        /// The value mapped to `positive`.
        match_value: String,
        /// Label for matching rows.
        positive: String,
        /// Label for all other rows.
        negative: String,
    },
}

/// One derived protected attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtectedColumn {
    /// Source column in the raw frame.
    pub source: String,
    /// Name of the derived column.
    pub name: String,
    /// The transformation to apply.
    pub transform: Transform,
    /// Canonical value order for the derived column (fixes vocabulary order
    /// independent of row order; values not listed are appended in
    /// first-seen order).
    pub value_order: Vec<String>,
}

/// A set of derived protected attributes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProtectedSpec {
    columns: Vec<ProtectedColumn>,
}

impl ProtectedSpec {
    /// Creates an empty spec.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a derived column.
    pub fn with(mut self, column: ProtectedColumn) -> Self {
        self.columns.push(column);
        self
    }

    /// Derived column names, in order.
    pub fn names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }

    /// Applies every transformation, returning a copy of `frame` with the
    /// derived columns appended.
    pub fn apply(&self, frame: &DataFrame) -> Result<DataFrame> {
        let mut out = frame.clone();
        for spec in &self.columns {
            let (codes, vocab) = frame.column(&spec.source)?.as_categorical()?;
            let derived: Vec<String> = codes
                .iter()
                .map(|&c| {
                    let raw = &vocab[c as usize];
                    match &spec.transform {
                        Transform::Identity => raw.clone(),
                        Transform::Merge(mapping) => mapping
                            .iter()
                            .find(|(from, _)| from == raw)
                            .map(|(_, to)| to.clone())
                            .unwrap_or_else(|| raw.clone()),
                        Transform::Binarize {
                            match_value,
                            positive,
                            negative,
                        } => {
                            if raw == match_value {
                                positive.clone()
                            } else {
                                negative.clone()
                            }
                        }
                    }
                })
                .collect();

            // Build the vocabulary in canonical order first.
            let mut ordered: Vec<String> = spec
                .value_order
                .iter()
                .filter(|v| derived.iter().any(|d| d == *v))
                .cloned()
                .collect();
            for d in &derived {
                if !ordered.contains(d) {
                    ordered.push(d.clone());
                }
            }
            let code_of = |v: &str| -> u32 {
                ordered.iter().position(|o| o == v).expect("built above") as u32
            };
            let new_codes: Vec<u32> = derived.iter().map(|d| code_of(d)).collect();
            let column = Column::categorical_from_codes(&spec.name, new_codes, ordered)
                .map_err(|e| DataError::Invalid(format!("derived column `{}`: {e}", spec.name)))?;
            out.add_column(column)?;
        }
        Ok(out)
    }
}

/// The paper's §6 preparation of the Adult protected attributes:
///
/// - `race_m`: `Amer-Indian-Eskimo` and `Other` merged into `Other` (the two
///   rare categories), yielding {White, Black, Asian-Pac-Islander, Other};
/// - `gender`: `sex` passed through;
/// - `nationality`: `native-country` binarized to {US, Non-US}.
pub fn adult_protected_spec() -> ProtectedSpec {
    ProtectedSpec::new()
        .with(ProtectedColumn {
            source: "race".into(),
            name: "race_m".into(),
            transform: Transform::Merge(vec![
                ("Amer-Indian-Eskimo".into(), "Other".into()),
                ("Other".into(), "Other".into()),
            ]),
            value_order: vec![
                "White".into(),
                "Black".into(),
                "Asian-Pac-Islander".into(),
                "Other".into(),
            ],
        })
        .with(ProtectedColumn {
            source: "sex".into(),
            name: "gender".into(),
            transform: Transform::Identity,
            value_order: vec!["Male".into(), "Female".into()],
        })
        .with(ProtectedColumn {
            source: "native-country".into(),
            name: "nationality".into(),
            transform: Transform::Binarize {
                match_value: "United-States".into(),
                positive: "US".into(),
                negative: "Non-US".into(),
            },
            value_order: vec!["US".into(), "Non-US".into()],
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw_frame() -> DataFrame {
        DataFrame::new(vec![
            Column::categorical(
                "race",
                &["White", "Other", "Black", "Amer-Indian-Eskimo", "White"],
            ),
            Column::categorical("sex", &["Male", "Female", "Female", "Male", "Male"]),
            Column::categorical(
                "native-country",
                &[
                    "United-States",
                    "Mexico",
                    "United-States",
                    "Canada",
                    "United-States",
                ],
            ),
        ])
        .unwrap()
    }

    #[test]
    fn merge_collapses_rare_categories() {
        let out = adult_protected_spec().apply(&raw_frame()).unwrap();
        let (codes, vocab) = out.column("race_m").unwrap().as_categorical().unwrap();
        assert_eq!(
            vocab,
            &[
                "White".to_string(),
                "Black".to_string(),
                "Other".to_string()
            ],
            "canonical order, minus values absent from this toy frame"
        );
        let values: Vec<&str> = codes.iter().map(|&c| vocab[c as usize].as_str()).collect();
        assert_eq!(values, vec!["White", "Other", "Black", "Other", "White"]);
    }

    #[test]
    fn binarize_nationality() {
        let out = adult_protected_spec().apply(&raw_frame()).unwrap();
        let (codes, vocab) = out.column("nationality").unwrap().as_categorical().unwrap();
        assert_eq!(vocab, &["US".to_string(), "Non-US".to_string()]);
        let values: Vec<&str> = codes.iter().map(|&c| vocab[c as usize].as_str()).collect();
        assert_eq!(values, vec!["US", "Non-US", "US", "Non-US", "US"]);
    }

    #[test]
    fn identity_passthrough_with_canonical_order() {
        let out = adult_protected_spec().apply(&raw_frame()).unwrap();
        let (_, vocab) = out.column("gender").unwrap().as_categorical().unwrap();
        // Canonical order puts Male first even though rows start with Male
        // anyway; check stability on a frame starting with Female.
        assert_eq!(vocab[0], "Male");
        let f2 = DataFrame::new(vec![
            Column::categorical("race", &["White"]),
            Column::categorical("sex", &["Female"]),
            Column::categorical("native-country", &["United-States"]),
        ])
        .unwrap();
        let out2 = adult_protected_spec().apply(&f2).unwrap();
        let (_, vocab2) = out2.column("gender").unwrap().as_categorical().unwrap();
        assert_eq!(vocab2, &["Female".to_string()]);
    }

    #[test]
    fn unlisted_values_pass_through_merge() {
        let spec = ProtectedSpec::new().with(ProtectedColumn {
            source: "race".into(),
            name: "r".into(),
            transform: Transform::Merge(vec![("Other".into(), "Misc".into())]),
            value_order: vec![],
        });
        let out = spec.apply(&raw_frame()).unwrap();
        let (codes, vocab) = out.column("r").unwrap().as_categorical().unwrap();
        let values: Vec<&str> = codes.iter().map(|&c| vocab[c as usize].as_str()).collect();
        assert_eq!(
            values,
            vec!["White", "Misc", "Black", "Amer-Indian-Eskimo", "White"]
        );
    }

    #[test]
    fn missing_source_column_errors() {
        let spec = ProtectedSpec::new().with(ProtectedColumn {
            source: "zip".into(),
            name: "z".into(),
            transform: Transform::Identity,
            value_order: vec![],
        });
        assert!(spec.apply(&raw_frame()).is_err());
    }
}
