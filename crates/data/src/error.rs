//! Error type for the data substrate.

use std::fmt;

/// Errors produced by df-data.
#[derive(Debug)]
pub enum DataError {
    /// Propagated from the probability substrate.
    Prob(df_prob::ProbError),
    /// I/O failure while reading or writing files.
    Io(std::io::Error),
    /// Malformed CSV input.
    Csv {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// A named column was not found.
    UnknownColumn(String),
    /// Column has the wrong type for the requested operation.
    WrongColumnType {
        /// Column name.
        column: String,
        /// Expected kind.
        expected: &'static str,
    },
    /// Generic invalid-argument error.
    Invalid(String),
    /// Malformed or truncated DFRL replay-log bytes (untrusted input).
    Replay {
        /// Byte offset into the log where decoding failed.
        offset: u64,
        /// Description of the corruption.
        message: String,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Prob(e) => write!(f, "probability substrate: {e}"),
            DataError::Io(e) => write!(f, "i/o: {e}"),
            DataError::Csv { line, message } => {
                write!(f, "csv parse error at line {line}: {message}")
            }
            DataError::UnknownColumn(name) => write!(f, "unknown column `{name}`"),
            DataError::WrongColumnType { column, expected } => {
                write!(f, "column `{column}` is not {expected}")
            }
            DataError::Invalid(msg) => write!(f, "{msg}"),
            DataError::Replay { offset, message } => {
                write!(f, "corrupt replay log at byte {offset}: {message}")
            }
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Prob(e) => Some(e),
            DataError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<df_prob::ProbError> for DataError {
    fn from(e: df_prob::ProbError) -> Self {
        DataError::Prob(e)
    }
}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, DataError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DataError::Csv {
            line: 7,
            message: "unterminated quote".into(),
        };
        assert!(e.to_string().contains("line 7"));
        let e = DataError::WrongColumnType {
            column: "age".into(),
            expected: "categorical",
        };
        assert!(e.to_string().contains("age"));
    }
}
