//! Zero-copy views over a [`DataFrame`]: an index vector onto borrowed
//! columns, so sorting, filtering, and composing subsets never clones cell
//! data. A view can tally a contingency table directly (gathering codes
//! through the index) or materialize a real frame via [`FrameView::to_frame`]
//! when one is needed.
//!
//! Views compose: `view.filter_eq(..)?.sort_by(..)?` narrows and reorders
//! the same borrowed frame, each step touching only `usize` indices.

use crate::error::{DataError, Result};
use crate::frame::{ColumnData, DataFrame};
use df_prob::contingency::{Axis, ContingencyTable};
use df_prob::partial::PartialCounts;

/// A borrowed, reordered subset of a frame's rows.
///
/// Row `i` of the view is row `index[i]` of the underlying frame; the
/// frame's column data is never copied.
#[derive(Debug, Clone)]
pub struct FrameView<'a> {
    frame: &'a DataFrame,
    index: Vec<usize>,
}

impl<'a> FrameView<'a> {
    /// The identity view: every row of `frame`, in order.
    pub fn of(frame: &'a DataFrame) -> FrameView<'a> {
        FrameView {
            frame,
            index: (0..frame.n_rows()).collect(),
        }
    }

    /// A view of explicit row indices (duplicates and any order allowed).
    pub fn from_indices(frame: &'a DataFrame, index: Vec<usize>) -> Result<FrameView<'a>> {
        if let Some(&bad) = index.iter().find(|&&i| i >= frame.n_rows()) {
            return Err(DataError::Invalid(format!(
                "row index {bad} out of range ({} rows)",
                frame.n_rows()
            )));
        }
        Ok(FrameView { frame, index })
    }

    /// The underlying frame.
    pub fn frame(&self) -> &'a DataFrame {
        self.frame
    }

    /// The view's row indices into the underlying frame.
    pub fn indices(&self) -> &[usize] {
        &self.index
    }

    /// Number of rows in the view.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when the view selects no rows.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Keeps rows whose categorical `column` equals `label`. Unknown
    /// labels are an error (a silent empty view would hide typos).
    pub fn filter_eq(&self, column: &str, label: &str) -> Result<FrameView<'a>> {
        let (codes, vocab) = self.frame.column(column)?.as_categorical()?;
        let want = vocab.iter().position(|l| l == label).ok_or_else(|| {
            DataError::Invalid(format!("column `{column}` has no label `{label}`"))
        })? as u32;
        let index = self
            .index
            .iter()
            .copied()
            .filter(|&i| codes[i] == want)
            .collect();
        Ok(FrameView {
            frame: self.frame,
            index,
        })
    }

    /// Keeps rows where `pred` holds on the numeric `column`.
    pub fn filter_num(&self, column: &str, pred: impl Fn(f64) -> bool) -> Result<FrameView<'a>> {
        let values = self.frame.column(column)?.as_numeric()?;
        let index = self
            .index
            .iter()
            .copied()
            .filter(|&i| pred(values[i]))
            .collect();
        Ok(FrameView {
            frame: self.frame,
            index,
        })
    }

    /// A stably sorted view: categorical columns order by label string,
    /// numeric columns by `f64::total_cmp` (NaN sorts last, after +∞).
    pub fn sort_by(&self, column: &str) -> Result<FrameView<'a>> {
        let col = self.frame.column(column)?;
        let mut index = self.index.clone();
        match col.data() {
            ColumnData::Categorical { codes, vocab } => {
                index.sort_by(|&a, &b| vocab[codes[a] as usize].cmp(&vocab[codes[b] as usize]));
            }
            ColumnData::Numeric(values) => {
                index.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
            }
        }
        Ok(FrameView {
            frame: self.frame,
            index,
        })
    }

    /// Gathers the view's codes for a categorical column (one copy of
    /// `u32`s; no strings).
    pub fn gather_codes(&self, column: &str) -> Result<(Vec<u32>, &'a [String])> {
        let (codes, vocab) = self.frame.column(column)?.as_categorical()?;
        let gathered = self.index.iter().map(|&i| codes[i]).collect();
        Ok((gathered, vocab))
    }

    /// Tallies the view's rows into a contingency table over `columns`,
    /// without materializing a frame: codes are gathered through the
    /// index and counted via the trusted bulk path (they index their own
    /// vocabularies by construction).
    pub fn contingency(&self, columns: &[&str]) -> Result<ContingencyTable> {
        if columns.is_empty() {
            return Err(DataError::Invalid("need at least one column".into()));
        }
        let mut axes = Vec::with_capacity(columns.len());
        let mut gathered = Vec::with_capacity(columns.len());
        for name in columns {
            let (codes, vocab) = self.gather_codes(name)?;
            axes.push(Axis::new((*name).to_string(), vocab.to_vec())?);
            gathered.push(codes);
        }
        let mut shard = PartialCounts::zeros(axes)?;
        let slices: Vec<&[u32]> = gathered.iter().map(Vec::as_slice).collect();
        shard.record_codes_trusted(&slices)?;
        Ok(shard.into_table())
    }

    /// Materializes the view as an owned frame (this is the one copy).
    pub fn to_frame(&self) -> Result<DataFrame> {
        self.frame.take(&self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Column;

    fn frame() -> DataFrame {
        DataFrame::new(vec![
            Column::categorical("y", &["no", "yes", "yes", "no", "yes"]),
            Column::categorical("g", &["b", "a", "b", "b", "a"]),
            Column::numeric("s", vec![3.0, 1.0, f64::NAN, 2.0, 1.0]),
        ])
        .unwrap()
    }

    #[test]
    fn identity_view_matches_frame() {
        let f = frame();
        let v = FrameView::of(&f);
        assert_eq!(v.len(), 5);
        assert!(!v.is_empty());
        assert_eq!(v.indices(), &[0, 1, 2, 3, 4]);
        assert_eq!(v.to_frame().unwrap().n_rows(), 5);
        assert_eq!(
            v.contingency(&["y", "g"]).unwrap(),
            f.contingency(&["y", "g"]).unwrap()
        );
    }

    #[test]
    fn filters_compose_without_copying_columns() {
        let f = frame();
        let v = FrameView::of(&f)
            .filter_eq("y", "yes")
            .unwrap()
            .filter_eq("g", "a")
            .unwrap();
        assert_eq!(v.indices(), &[1, 4]);
        // Equivalent to the frame-level filter + contingency.
        let mask: Vec<bool> = (0..5).map(|i| i == 1 || i == 4).collect();
        let expect = f.filter(&mask).unwrap().contingency(&["y"]).unwrap();
        assert_eq!(v.contingency(&["y"]).unwrap(), expect);
        // Unknown labels error instead of silently matching nothing.
        assert!(FrameView::of(&f).filter_eq("y", "maybe").is_err());
        assert!(FrameView::of(&f).filter_eq("s", "yes").is_err());
    }

    #[test]
    fn numeric_filter_and_sort() {
        let f = frame();
        let v = FrameView::of(&f).filter_num("s", |x| x <= 2.0).unwrap();
        assert_eq!(v.indices(), &[1, 3, 4]);
        // Sort is stable: ties keep prior order; NaN lands last.
        let sorted = FrameView::of(&f).sort_by("s").unwrap();
        assert_eq!(sorted.indices(), &[1, 4, 3, 0, 2]);
        // Categorical sort orders by label, stably.
        let by_g = FrameView::of(&f).sort_by("g").unwrap();
        assert_eq!(by_g.indices(), &[1, 4, 0, 2, 3]);
    }

    #[test]
    fn from_indices_validates_and_allows_duplicates() {
        let f = frame();
        assert!(FrameView::from_indices(&f, vec![0, 5]).is_err());
        let v = FrameView::from_indices(&f, vec![4, 4, 0]).unwrap();
        assert_eq!(v.len(), 3);
        let out = v.to_frame().unwrap();
        assert_eq!(out.column("y").unwrap().value_str(0), "yes");
        assert_eq!(out.column("y").unwrap().value_str(2), "no");
        let (codes, vocab) = v.gather_codes("g").unwrap();
        assert_eq!(codes, vec![1, 1, 0]);
        assert_eq!(vocab, &["b".to_string(), "a".to_string()]);
    }

    #[test]
    fn view_contingency_matches_materialized_frame() {
        let f = frame();
        let v = FrameView::of(&f).filter_eq("g", "b").unwrap();
        let via_view = v.contingency(&["y", "g"]).unwrap();
        let via_frame = v.to_frame().unwrap().contingency(&["y", "g"]).unwrap();
        assert_eq!(via_view, via_frame);
        assert!(v.contingency(&[]).is_err());
    }
}
