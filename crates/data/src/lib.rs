//! # df-data — tabular-data substrate
//!
//! Columnar data frames, CSV parsing, feature encoding, protected-attribute
//! preparation, and the datasets used by the paper's experiments:
//!
//! - [`frame`]: a small columnar [`frame::DataFrame`] with categorical
//!   interning, filtering, splitting, and contingency-table extraction.
//! - [`csv`]: from-scratch CSV reader/writer handling the UCI Adult format's
//!   quirks (", " separators, `?` missing markers, trailing periods).
//! - [`chunks`]: chunked record sources for the streaming audit engine —
//!   zero-copy frame batches and a streaming CSV reader that never
//!   materializes the full table.
//! - [`encode`]: one-hot encoding and standardization into dense feature
//!   matrices for the learners.
//! - [`protected`]: protected-attribute preparation — category merging
//!   (e.g. collapsing rare race categories) and binarization (e.g.
//!   nationality → US / Non-US), exactly as §6 of the paper describes.
//! - [`adult`]: the calibrated synthetic Adult-census generator (see
//!   DESIGN.md §4 for the substitution rationale) plus a loader for the
//!   real UCI files when available.
//! - [`kidney`]: the Simpson's-paradox admissions data of Table 1 and the
//!   original kidney-stone treatment table it was adapted from.
//! - [`replay`]: the DFRL binary replay log — a self-describing record-log
//!   format storing interned codes directly, with a streaming writer, an
//!   untrusted-input validated streaming reader, frame/CSV converters, and
//!   a scan-free tally fast path for re-audit.
//! - [`view`]: zero-copy sorted/filtered index views over a frame —
//!   reorder, subset, and tally without cloning column data.
//! - [`workloads`]: synthetic workload generators for benchmarks and
//!   property tests (random joint tables, planted-ε tables, group-Gaussian
//!   score populations).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adult;
pub mod chunks;
pub mod csv;
pub mod encode;
pub mod error;
pub mod frame;
pub mod kidney;
pub mod protected;
pub mod replay;
pub mod view;
pub mod workloads;

pub use error::{DataError, Result};
pub use frame::{Column, ColumnData, DataFrame, Interner};
