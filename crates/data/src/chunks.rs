//! Chunked record sources for the streaming audit engine.
//!
//! The sharded counting engine in df-core consumes *chunks*: fixed-size
//! batches of records that know how to tally themselves into a
//! [`PartialCounts`] shard (the [`Tally`] trait from df-prob). This module
//! provides the two sources the experiments need:
//!
//! - [`FrameChunks`]: zero-copy batches over an in-memory [`DataFrame`].
//!   Each chunk borrows slices of the frame's interned code columns, so
//!   chunking costs nothing and tallying is pure integer indexing.
//! - [`CsvChunks`]: a streaming CSV reader that parses fixed-size row
//!   batches from any [`BufRead`] source **without materializing the full
//!   frame** — the path for datasets larger than memory.
//!
//! Both sources yield chunks whose tally order is irrelevant: counts form a
//! commutative monoid (see `df_prob::partial`), so any interleaving across
//! worker threads produces the identical table.

use crate::csv::{parse_record, read_logical_record, CsvOptions};
use crate::error::{DataError, Result};
use crate::frame::DataFrame;
use df_prob::contingency::Axis;
use df_prob::partial::{PartialCounts, Tally};
use df_prob::ProbError;
use std::io::BufRead;

// ---------------------------------------------------------------------------
// In-memory frames, chunked by row range.
// ---------------------------------------------------------------------------

/// One zero-copy batch of rows from a [`DataFrame`]: per-column interned
/// codes for the selected columns, all slices covering the same row range,
/// plus the column names and vocabularies the codes are defined against.
#[derive(Debug, Clone)]
pub struct FrameChunk<'a> {
    columns: Vec<&'a [u32]>,
    names: Vec<&'a str>,
    vocabs: Vec<&'a [String]>,
}

impl FrameChunk<'_> {
    /// Number of rows in this chunk.
    pub fn n_rows(&self) -> usize {
        self.columns.first().map_or(0, |c| c.len())
    }
}

impl Tally for FrameChunk<'_> {
    fn tally_into(&self, shard: &mut PartialCounts) -> df_prob::Result<()> {
        if shard.ndim() != self.columns.len() {
            return Err(ProbError::ShapeMismatch {
                context: "FrameChunk::tally_into",
                expected: self.columns.len(),
                actual: shard.ndim(),
            });
        }
        // The shard axes must *be* this chunk's schema — same names, same
        // labels in the same (interning) order — or codes would scatter
        // into wrong cells while passing a mere arity check.
        for (axis, (&name, &vocab)) in shard.axes().iter().zip(self.names.iter().zip(&self.vocabs))
        {
            if axis.name() != name || axis.labels() != vocab {
                return Err(ProbError::InvalidParameter {
                    name: "shard",
                    reason: format!(
                        "axis `{}` does not match column `{name}`'s vocabulary; build \
                         the audit axes with FrameChunks::axes",
                        axis.name(),
                    ),
                });
            }
        }
        // Columnar bulk tally — vectorized flat-index accumulation. The
        // range scan is skipped: interned column codes index their own
        // vocabulary by construction, and the schema check above pinned
        // each shard axis to exactly that vocabulary.
        shard.record_codes_trusted(&self.columns)
    }
}

/// Iterator of [`FrameChunk`]s over the selected categorical columns of a
/// frame, in fixed-size row batches (the last batch may be shorter).
///
/// The matching axes for a streaming audit come from
/// [`FrameChunks::axes`]; codes index those axes directly because both are
/// built from the same column vocabularies.
#[derive(Debug, Clone)]
pub struct FrameChunks<'a> {
    names: Vec<&'a str>,
    columns: Vec<(&'a [u32], &'a [String])>,
    chunk_rows: usize,
    n_rows: usize,
    pos: usize,
}

impl<'a> FrameChunks<'a> {
    /// Creates a chunked view of the named categorical columns. Errors on
    /// an unknown or numeric column, an empty selection, or a zero chunk
    /// size.
    pub fn new(frame: &'a DataFrame, columns: &[&str], chunk_rows: usize) -> Result<Self> {
        if columns.is_empty() {
            return Err(DataError::Invalid("need at least one column".into()));
        }
        if chunk_rows == 0 {
            return Err(DataError::Invalid("chunk_rows must be positive".into()));
        }
        let mut names = Vec::with_capacity(columns.len());
        let mut cols: Vec<(&[u32], &[String])> = Vec::with_capacity(columns.len());
        for n in columns {
            let column = frame.column(n)?;
            names.push(column.name());
            cols.push(column.as_categorical()?);
        }
        Ok(Self {
            names,
            columns: cols,
            chunk_rows,
            n_rows: frame.n_rows(),
            pos: 0,
        })
    }

    /// The axes matching this source's columns (one per column, labels in
    /// interning order) — pass these to the streaming audit entry point.
    pub fn axes(&self) -> Result<Vec<Axis>> {
        self.names
            .iter()
            .zip(&self.columns)
            .map(|(name, (_, vocab))| {
                Axis::new(name.to_string(), vocab.to_vec()).map_err(DataError::from)
            })
            .collect()
    }

    /// Number of chunks this iterator will yield.
    pub fn n_chunks(&self) -> usize {
        self.n_rows.div_ceil(self.chunk_rows)
    }
}

impl<'a> Iterator for FrameChunks<'a> {
    type Item = FrameChunk<'a>;

    fn next(&mut self) -> Option<FrameChunk<'a>> {
        if self.pos >= self.n_rows {
            return None;
        }
        let end = (self.pos + self.chunk_rows).min(self.n_rows);
        let chunk = FrameChunk {
            columns: self
                .columns
                .iter()
                .map(|(codes, _)| &codes[self.pos..end])
                .collect(),
            names: self.names.clone(),
            vocabs: self.columns.iter().map(|(_, vocab)| *vocab).collect(),
        };
        self.pos = end;
        Some(chunk)
    }
}

// ---------------------------------------------------------------------------
// Streaming CSV, chunked by record batch.
// ---------------------------------------------------------------------------

/// One batch of parsed CSV records: rows of label strings, already
/// projected onto the audited columns.
#[derive(Debug, Clone)]
pub struct LabelChunk {
    rows: Vec<Vec<String>>,
}

impl LabelChunk {
    /// Builds a chunk from rows of label strings (used by tests and custom
    /// sources; [`CsvChunks`] produces these internally).
    pub fn new(rows: Vec<Vec<String>>) -> Self {
        Self { rows }
    }

    /// Number of rows in this chunk.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// The parsed rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }
}

impl Tally for LabelChunk {
    fn tally_into(&self, shard: &mut PartialCounts) -> df_prob::Result<()> {
        let mut labels: Vec<&str> = Vec::with_capacity(shard.ndim());
        for row in &self.rows {
            labels.clear();
            labels.extend(row.iter().map(String::as_str));
            shard.record_by_labels(&labels)?;
        }
        Ok(())
    }
}

/// A streaming CSV record source: reads fixed-size batches of records from
/// a [`BufRead`] without ever holding the whole file (or frame) in memory.
///
/// Field projection selects the audited columns by position; rows shorter
/// than a projected index are an error. Header rows are not interpreted —
/// consume one with [`CsvChunks::skip_line`] if the source has one.
pub struct CsvChunks<R: BufRead> {
    reader: R,
    opts: CsvOptions,
    chunk_rows: usize,
    projection: Option<Vec<usize>>,
    line_no: usize,
    done: bool,
    /// Reused per-record line buffer (one allocation for the whole stream).
    line_buf: String,
}

impl<R: BufRead> CsvChunks<R> {
    /// Creates a chunked reader yielding `chunk_rows` records per batch.
    pub fn new(reader: R, opts: CsvOptions, chunk_rows: usize) -> Result<Self> {
        if chunk_rows == 0 {
            return Err(DataError::Invalid("chunk_rows must be positive".into()));
        }
        Ok(Self {
            reader,
            opts,
            chunk_rows,
            projection: None,
            line_no: 0,
            done: false,
            line_buf: String::new(),
        })
    }

    /// Projects every record onto the given field positions, in order
    /// (e.g. outcome column first, then the protected attributes).
    pub fn with_projection(mut self, fields: Vec<usize>) -> Self {
        self.projection = Some(fields);
        self
    }

    /// Consumes and discards one raw line (e.g. a header).
    pub fn skip_line(&mut self) -> Result<()> {
        self.line_buf.clear();
        self.reader.read_line(&mut self.line_buf)?;
        self.line_no += 1;
        Ok(())
    }

    fn next_record(&mut self) -> Result<Option<Vec<String>>> {
        loop {
            let record_line = self.line_no + 1;
            if !read_logical_record(
                &mut self.reader,
                &mut self.line_buf,
                &self.opts,
                &mut self.line_no,
            )? {
                return Ok(None);
            }
            let trimmed = self.line_buf.trim();
            if self.opts.skip_empty_lines && trimmed.is_empty() {
                continue;
            }
            if let Some(cc) = self.opts.comment_char {
                if trimmed.starts_with(cc) {
                    continue;
                }
            }
            let fields = parse_record(&self.line_buf, &self.opts, record_line)?;
            return match &self.projection {
                None => Ok(Some(fields)),
                Some(proj) => {
                    let mut out = Vec::with_capacity(proj.len());
                    for &i in proj {
                        match fields.get(i) {
                            Some(f) => out.push(f.clone()),
                            None => {
                                return Err(DataError::Csv {
                                    line: self.line_no,
                                    message: format!(
                                        "projected field {i} out of range ({} fields)",
                                        fields.len()
                                    ),
                                })
                            }
                        }
                    }
                    Ok(Some(out))
                }
            };
        }
    }
}

impl<R: BufRead> Iterator for CsvChunks<R> {
    type Item = Result<LabelChunk>;

    fn next(&mut self) -> Option<Result<LabelChunk>> {
        if self.done {
            return None;
        }
        let mut rows = Vec::with_capacity(self.chunk_rows);
        while rows.len() < self.chunk_rows {
            match self.next_record() {
                Ok(Some(record)) => rows.push(record),
                Ok(None) => {
                    self.done = true;
                    break;
                }
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            }
        }
        if rows.is_empty() {
            None
        } else {
            Some(Ok(LabelChunk { rows }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Column;
    use df_prob::contingency::ContingencyTable;

    fn sample_frame() -> DataFrame {
        DataFrame::new(vec![
            Column::categorical("y", &["no", "yes", "yes", "no", "yes"]),
            Column::categorical("g", &["a", "a", "b", "b", "a"]),
        ])
        .unwrap()
    }

    fn tally_all<C: Tally>(
        chunks: impl Iterator<Item = C>,
        axes: Vec<Axis>,
    ) -> df_prob::Result<ContingencyTable> {
        let mut shard = PartialCounts::zeros(axes)?;
        for c in chunks {
            c.tally_into(&mut shard)?;
        }
        Ok(shard.into_table())
    }

    #[test]
    fn frame_chunks_cover_every_row_once() {
        let frame = sample_frame();
        for chunk_rows in [1, 2, 3, 5, 100] {
            let chunks = FrameChunks::new(&frame, &["y", "g"], chunk_rows).unwrap();
            let axes = chunks.axes().unwrap();
            let streamed = tally_all(chunks, axes).unwrap();
            let batch = frame.contingency(&["y", "g"]).unwrap();
            assert_eq!(streamed, batch, "chunk_rows={chunk_rows}");
        }
    }

    #[test]
    fn frame_chunks_counts_chunks() {
        let frame = sample_frame();
        let chunks = FrameChunks::new(&frame, &["y"], 2).unwrap();
        assert_eq!(chunks.n_chunks(), 3);
        assert_eq!(chunks.map(|c| c.n_rows()).collect::<Vec<_>>(), [2, 2, 1]);
    }

    #[test]
    fn frame_chunks_validates() {
        let frame = sample_frame();
        assert!(FrameChunks::new(&frame, &[], 4).is_err());
        assert!(FrameChunks::new(&frame, &["y"], 0).is_err());
        assert!(FrameChunks::new(&frame, &["nope"], 4).is_err());
        let numeric = DataFrame::new(vec![Column::numeric("x", vec![1.0])]).unwrap();
        assert!(FrameChunks::new(&numeric, &["x"], 4).is_err());
    }

    #[test]
    fn frame_chunk_tally_rejects_mismatched_shard() {
        let frame = sample_frame();
        let mut chunks = FrameChunks::new(&frame, &["y", "g"], 10).unwrap();
        let chunk = chunks.next().unwrap();
        let mut wrong_ndim =
            PartialCounts::zeros(vec![Axis::from_strs("y", &["no", "yes"]).unwrap()]).unwrap();
        assert!(chunk.tally_into(&mut wrong_ndim).is_err());
        let mut wrong_arity = PartialCounts::zeros(vec![
            Axis::from_strs("y", &["no", "yes", "maybe"]).unwrap(),
            Axis::from_strs("g", &["a", "b"]).unwrap(),
        ])
        .unwrap();
        assert!(chunk.tally_into(&mut wrong_arity).is_err());
        // Same arities but different label order: codes would land in
        // transposed cells, so the schema check must refuse.
        let mut wrong_labels = PartialCounts::zeros(vec![
            Axis::from_strs("y", &["yes", "no"]).unwrap(),
            Axis::from_strs("g", &["a", "b"]).unwrap(),
        ])
        .unwrap();
        assert!(chunk.tally_into(&mut wrong_labels).is_err());
        // Same shape but swapped axis names (transposed schema): refused.
        let mut swapped = PartialCounts::zeros(vec![
            Axis::from_strs("g", &["no", "yes"]).unwrap(),
            Axis::from_strs("y", &["a", "b"]).unwrap(),
        ])
        .unwrap();
        assert!(chunk.tally_into(&mut swapped).is_err());
    }

    #[test]
    fn csv_chunks_stream_matches_batch_tally() {
        let csv = "no,a\nyes,a\nyes,b\nno,b\nyes,a\n";
        let axes = vec![
            Axis::from_strs("y", &["no", "yes"]).unwrap(),
            Axis::from_strs("g", &["a", "b"]).unwrap(),
        ];
        let chunks = CsvChunks::new(csv.as_bytes(), CsvOptions::default(), 2).unwrap();
        let streamed = tally_all(chunks.map(|c| c.unwrap()), axes.clone()).unwrap();
        let batch = sample_frame().contingency(&["y", "g"]).unwrap();
        // Same counts; axes differ only in vocabulary source, not content.
        assert_eq!(streamed.data(), batch.data());
        assert_eq!(streamed.total(), 5.0);
        let _ = axes;
    }

    #[test]
    fn csv_chunks_projection_and_header_skip() {
        let csv = "id,g,y\n1,a,no\n2,b,yes\n3,a,yes\n";
        let mut chunks = CsvChunks::new(csv.as_bytes(), CsvOptions::default(), 10)
            .unwrap()
            .with_projection(vec![2, 1]);
        chunks.skip_line().unwrap();
        let chunk = chunks.next().unwrap().unwrap();
        assert_eq!(chunk.n_rows(), 3);
        assert_eq!(chunk.rows()[0], vec!["no".to_string(), "a".to_string()]);
        let mut shard = PartialCounts::zeros(vec![
            Axis::from_strs("y", &["no", "yes"]).unwrap(),
            Axis::from_strs("g", &["a", "b"]).unwrap(),
        ])
        .unwrap();
        chunk.tally_into(&mut shard).unwrap();
        assert_eq!(shard.total(), 3.0);
        assert!(chunks.next().is_none());
    }

    #[test]
    fn csv_chunks_surface_errors() {
        // Unterminated quote mid-stream.
        let csv = "no,a\n\"broken\nyes,b\n";
        let mut chunks = CsvChunks::new(csv.as_bytes(), CsvOptions::default(), 1).unwrap();
        assert!(chunks.next().unwrap().is_ok());
        assert!(chunks.next().unwrap().is_err());
        assert!(chunks.next().is_none(), "iteration stops after an error");
        // Out-of-range projection.
        let mut chunks = CsvChunks::new("a,b\n".as_bytes(), CsvOptions::default(), 1)
            .unwrap()
            .with_projection(vec![5]);
        assert!(chunks.next().unwrap().is_err());
        // Unknown label only fails at tally time, against the axes.
        let chunk = LabelChunk::new(vec![vec!["zzz".into()]]);
        let mut shard =
            PartialCounts::zeros(vec![Axis::from_strs("y", &["no", "yes"]).unwrap()]).unwrap();
        assert!(chunk.tally_into(&mut shard).is_err());
        assert!(CsvChunks::new("".as_bytes(), CsvOptions::default(), 0).is_err());
    }

    #[test]
    fn crlf_batch_and_stream_parse_identically() {
        // The same CRLF bytes through the batch reader and the streaming
        // reader must yield byte-identical records, trim on or off — the
        // divergence this pins down is exactly the old `lines()`-vs-
        // `trim_end_matches` mismatch.
        let bytes = "no,a\r\nyes,b\r\n\"multi\r\nline\",c\r\nlast,d";
        for trim in [false, true] {
            let opts = CsvOptions {
                trim,
                skip_empty_lines: false,
                ..CsvOptions::default()
            };
            let batch = crate::csv::read_str(bytes, &opts).unwrap();
            let streamed: Vec<Vec<String>> = CsvChunks::new(bytes.as_bytes(), opts, 2)
                .unwrap()
                .map(|c| c.unwrap().rows().to_vec())
                .collect::<Vec<_>>()
                .concat();
            assert_eq!(streamed, batch, "trim={trim}");
            assert_eq!(batch[0], vec!["no".to_string(), "a".to_string()]);
            assert_eq!(batch[2][0], "multi\r\nline");
            assert_eq!(batch[3], vec!["last".to_string(), "d".to_string()]);
        }
    }

    #[test]
    fn csv_chunks_respect_comments_and_blank_lines() {
        let csv = "|sentinel\n\nno, a\nyes, b\n";
        let chunks = CsvChunks::new(csv.as_bytes(), CsvOptions::adult(), 10).unwrap();
        let batches: Vec<_> = chunks.map(|c| c.unwrap()).collect();
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].n_rows(), 2);
        assert_eq!(
            batches[0].rows()[0],
            vec!["no".to_string(), "a".to_string()]
        );
    }
}
