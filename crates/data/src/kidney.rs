//! The Simpson's-paradox data of §5.1 (Table 1).
//!
//! The paper adapts the classic kidney-stone treatment comparison
//! (Charig et al. 1986) into a university-admissions scenario: treatment
//! becomes *gender*, stone size becomes *race*, and treatment success
//! becomes *admission*. Both framings are provided, with the exact counts
//! from the paper: 81/87, 234/270, 192/263, and 55/80.

use df_prob::contingency::{Axis, ContingencyTable};

/// Table 1 of the paper as joint counts over
/// `outcome {admit, decline} × gender {A, B} × race {1, 2}`.
///
/// Cell layout (admitted / total): Gender A Race 1 = 81/87,
/// Gender B Race 1 = 234/270, Gender A Race 2 = 192/263,
/// Gender B Race 2 = 55/80.
pub fn admissions_counts() -> ContingencyTable {
    let axes = vec![
        Axis::from_strs("outcome", &["admit", "decline"]).expect("static axes"),
        Axis::from_strs("gender", &["A", "B"]).expect("static axes"),
        Axis::from_strs("race", &["1", "2"]).expect("static axes"),
    ];
    // Row-major over (outcome, gender, race).
    let data = vec![
        81.0, 192.0, // admit, gender A, race 1 / 2
        234.0, 55.0, // admit, gender B
        6.0, 71.0, // decline, gender A
        36.0, 25.0, // decline, gender B
    ];
    ContingencyTable::from_data(axes, data).expect("static data is valid")
}

/// The original kidney-stone framing: `outcome {success, failure} ×
/// treatment {A, B} × stone_size {small, large}`.
///
/// Treatment A (open surgery) succeeds on 81/87 small and 192/263 large
/// stones; treatment B (percutaneous nephrolithotomy) on 234/270 small and
/// 55/80 large.
pub fn kidney_stone_counts() -> ContingencyTable {
    let axes = vec![
        Axis::from_strs("outcome", &["success", "failure"]).expect("static axes"),
        Axis::from_strs("treatment", &["A", "B"]).expect("static axes"),
        Axis::from_strs("stone_size", &["small", "large"]).expect("static axes"),
    ];
    let data = vec![
        81.0, 192.0, // success, treatment A, small / large
        234.0, 55.0, // success, treatment B
        6.0, 71.0, // failure, treatment A
        36.0, 25.0, // failure, treatment B
    ];
    ContingencyTable::from_data(axes, data).expect("static data is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_prob::numerics::approx_eq;

    #[test]
    fn totals_match_paper() {
        let t = admissions_counts();
        assert_eq!(t.total(), 700.0);
        // Per-gender totals are 350 each (Table 1's Overall row).
        let g = t.marginalize(&["gender"]).unwrap();
        assert_eq!(g.get(&[0]), 350.0);
        assert_eq!(g.get(&[1]), 350.0);
    }

    #[test]
    fn admission_probabilities_match_table1() {
        let t = admissions_counts();
        let admit = t.condition("outcome", "admit").unwrap();
        let totals = t.marginalize(&["gender", "race"]).unwrap();
        let p = |g: usize, r: usize| admit.get(&[g, r]) / totals.get(&[g, r]);
        assert!(approx_eq(p(0, 0), 81.0 / 87.0, 1e-12, 0.0));
        assert!(approx_eq(p(1, 0), 234.0 / 270.0, 1e-12, 0.0));
        assert!(approx_eq(p(0, 1), 192.0 / 263.0, 1e-12, 0.0));
        assert!(approx_eq(p(1, 1), 55.0 / 80.0, 1e-12, 0.0));
    }

    #[test]
    fn simpsons_reversal_is_present() {
        // Gender A is admitted more within *each* race, but less overall.
        let t = admissions_counts();
        let admit = t.condition("outcome", "admit").unwrap();
        let totals = t.marginalize(&["gender", "race"]).unwrap();
        let p = |g: usize, r: usize| admit.get(&[g, r]) / totals.get(&[g, r]);
        assert!(p(0, 0) > p(1, 0), "A beats B within race 1");
        assert!(p(0, 1) > p(1, 1), "A beats B within race 2");

        let overall_admit = t.marginalize(&["outcome", "gender"]).unwrap();
        let gender_totals = t.marginalize(&["gender"]).unwrap();
        let overall = |g: usize| overall_admit.get(&[0, g]) / gender_totals.get(&[g]);
        assert!(
            overall(0) < overall(1),
            "yet B beats A overall: {} vs {}",
            overall(0),
            overall(1)
        );
        // Paper: 78% vs 82.57%.
        assert!(approx_eq(overall(0), 0.78, 1e-12, 0.0));
        assert!(approx_eq(overall(1), 289.0 / 350.0, 1e-12, 0.0));
    }

    #[test]
    fn kidney_framing_has_same_counts() {
        let a = admissions_counts();
        let k = kidney_stone_counts();
        assert_eq!(a.data(), k.data());
        assert_eq!(k.axes()[1].name(), "treatment");
    }
}
