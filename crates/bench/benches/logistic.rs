//! Criterion bench: logistic-regression training (Newton/IRLS) and
//! prediction on Adult-scale feature matrices — the Table 3 inner loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use df_data::adult::synth::{generate, SynthConfig};
use df_data::encode::{binary_labels, FrameEncoder};
use df_learn::logistic::{LogisticConfig, LogisticRegression};
use df_learn::pipeline::ADULT_BASE_FEATURES;
use std::hint::black_box;

fn bench_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("logistic/newton_fit");
    group.sample_size(10);
    for n in [2_000usize, 8_000, 32_561] {
        let d = generate(&SynthConfig {
            seed: 6,
            n_train: n,
            n_test: 16,
            ..SynthConfig::default()
        })
        .unwrap()
        .with_protected()
        .unwrap();
        let enc = FrameEncoder::fit(&d.train, &ADULT_BASE_FEATURES).unwrap();
        let x = enc.transform(&d.train).unwrap();
        let y = binary_labels(&d.train, "income", ">50K").unwrap();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &(x, y), |b, (x, y)| {
            b.iter(|| {
                black_box(LogisticRegression::fit(x, y, &LogisticConfig::default()).unwrap())
            });
        });
    }
    group.finish();
}

fn bench_prediction(c: &mut Criterion) {
    let d = generate(&SynthConfig {
        seed: 6,
        n_train: 16_281,
        n_test: 16,
        ..SynthConfig::default()
    })
    .unwrap()
    .with_protected()
    .unwrap();
    let enc = FrameEncoder::fit(&d.train, &ADULT_BASE_FEATURES).unwrap();
    let x = enc.transform(&d.train).unwrap();
    let y = binary_labels(&d.train, "income", ">50K").unwrap();
    let model = LogisticRegression::fit(&x, &y, &LogisticConfig::default()).unwrap();
    let mut group = c.benchmark_group("logistic/predict");
    group.throughput(Throughput::Elements(x.n_rows as u64));
    group.bench_function("proba_16k_rows", |b| {
        b.iter(|| black_box(model.predict_proba(&x).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_training, bench_prediction);
criterion_main!(benches);
