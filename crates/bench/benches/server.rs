//! Criterion bench: the `df-server` audit service over real TCP.
//!
//! Three questions, one per serving regime:
//!
//! 1. **Warm read path.** `GET /v1/audit` between ingests: the merged
//!    snapshot and the rendered bytes are both version-cached, so a
//!    request costs one parse + two hash lookups + one socket
//!    round-trip. The hand-rolled harness below prints req/s, p50, and
//!    p99 over a keep-alive connection — the ISSUE's ≥10k req/s
//!    acceptance number comes from here.
//! 2. **Cold read path.** The first audit after an ingest pays the
//!    consistent-cut round over the fleet shards plus a full ε
//!    recomputation — measured by interleaving one-row ingests with
//!    audits.
//! 3. **Ingest path.** `POST /v1/ingest/records` throughput for
//!    64-row JSON chunks, the validation + enqueue cost per request.
//!
//! Run with `cargo bench -p df-bench --bench server`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use df_prob::contingency::Axis;
use df_server::client::Http1Client;
use df_server::Server;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Two outcomes × 4×3×2 protected intersections = 48 cells, the same
/// schema as the fleet transport bench.
fn schema() -> Vec<Axis> {
    vec![
        Axis::from_strs("outcome", &["y0", "y1"]).unwrap(),
        Axis::from_strs("attr0", &["v0", "v1", "v2", "v3"]).unwrap(),
        Axis::from_strs("attr1", &["v0", "v1", "v2"]).unwrap(),
        Axis::from_strs("attr2", &["v0", "v1"]).unwrap(),
    ]
}

fn start_server() -> Server {
    Server::builder("outcome", schema())
        .window_seconds(1e6)
        .bucket_seconds(1.0)
        .shards(4)
        .workers(4)
        .bind("127.0.0.1:0")
        .expect("bind bench server")
}

/// A deterministic 64-row JSON chunk body covering every cell.
fn json_chunk(salt: usize) -> Vec<u8> {
    let rows = (0..64)
        .map(|i| {
            let i = i + salt;
            format!(
                "[\"y{}\",\"v{}\",\"v{}\",\"v{}\"]",
                i % 2,
                (i / 2) % 4,
                (i / 8) % 3,
                (i / 24) % 2
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    format!("{{\"rows\": [{rows}], \"at\": 1000.0}}").into_bytes()
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn bench_server(c: &mut Criterion) {
    let server = start_server();
    let mut client = Http1Client::connect(server.local_addr()).expect("connect");

    // Populate every cell so the audit is non-degenerate.
    for salt in 0..8 {
        let resp = client
            .request(
                "POST",
                "/v1/ingest/records",
                &[("Content-Type", "application/json")],
                &json_chunk(salt),
            )
            .expect("ingest");
        assert_eq!(resp.status, 200, "{}", resp.text());
    }
    // Warm the caches once.
    let warm = client.get("/v1/audit").expect("audit");
    assert_eq!(warm.status, 200, "{}", warm.text());

    // Hand-rolled throughput harness: the acceptance measurement. One
    // keep-alive connection, N sequential audits, wall-clock req/s and
    // latency percentiles.
    let n = 20_000usize;
    let mut latencies = Vec::with_capacity(n);
    let started = Instant::now();
    for _ in 0..n {
        let t0 = Instant::now();
        let resp = client.get("/v1/audit").expect("warm audit");
        latencies.push(t0.elapsed());
        debug_assert_eq!(resp.status, 200);
    }
    let elapsed = started.elapsed();
    latencies.sort();
    println!(
        "server warm GET /v1/audit (48-cell schema, keep-alive, 1 client): \
         {:.0} req/s over {n} requests; p50 {:.1} us, p99 {:.1} us, max {:.1} us",
        n as f64 / elapsed.as_secs_f64(),
        percentile(&latencies, 0.50).as_secs_f64() * 1e6,
        percentile(&latencies, 0.99).as_secs_f64() * 1e6,
        latencies[latencies.len() - 1].as_secs_f64() * 1e6,
    );

    let mut group = c.benchmark_group("server");
    group.throughput(Throughput::Elements(1));
    group.bench_function("audit_get_warm", |b| {
        b.iter(|| black_box(client.get("/v1/audit").expect("warm audit")))
    });
    group.bench_function("monitor_get_warm", |b| {
        b.iter(|| black_box(client.get("/v1/monitor?format=csv").expect("warm monitor")))
    });
    group.bench_function("healthz_get", |b| {
        b.iter(|| black_box(client.get("/v1/healthz").expect("healthz")))
    });
    // The cold path: every audit preceded by an ingest that invalidates
    // the version caches, forcing a consistent-cut round + ε pass.
    let body = json_chunk(99);
    group.bench_function("audit_get_cold_after_ingest", |b| {
        b.iter(|| {
            client
                .request(
                    "POST",
                    "/v1/ingest/records",
                    &[("Content-Type", "application/json")],
                    &body,
                )
                .expect("ingest");
            black_box(client.get("/v1/audit").expect("cold audit"))
        })
    });
    group.throughput(Throughput::Elements(64));
    group.bench_function("ingest_json_64_rows", |b| {
        b.iter(|| {
            black_box(
                client
                    .request(
                        "POST",
                        "/v1/ingest/records",
                        &[("Content-Type", "application/json")],
                        &body,
                    )
                    .expect("ingest"),
            )
        })
    });
    group.finish();
    server.shutdown();
}

criterion_group!(benches, bench_server);
criterion_main!(benches);
