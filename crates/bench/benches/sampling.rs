//! Criterion bench: sampling kernels — alias-method categorical draws,
//! normal variates, Dirichlet vectors, and the synthetic-Adult row
//! generator throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use df_data::adult::synth::{generate, SynthConfig};
use df_prob::dist::{Categorical, Dirichlet, Normal, Sampler};
use df_prob::rng::Pcg32;
use std::hint::black_box;

fn bench_categorical(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampling/categorical_alias");
    for k in [4usize, 64, 1024] {
        let weights: Vec<f64> = (1..=k).map(|i| 1.0 / i as f64).collect();
        let dist = Categorical::new(&weights).unwrap();
        group.throughput(Throughput::Elements(10_000));
        group.bench_with_input(BenchmarkId::from_parameter(k), &dist, |b, dist| {
            let mut rng = Pcg32::new(3);
            b.iter(|| {
                let mut acc = 0usize;
                for _ in 0..10_000 {
                    acc = acc.wrapping_add(dist.sample(&mut rng));
                }
                black_box(acc)
            });
        });
    }
    group.finish();
}

fn bench_normal(c: &mut Criterion) {
    c.bench_function("sampling/normal_polar_10k", |b| {
        let dist = Normal::standard();
        let mut rng = Pcg32::new(4);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..10_000 {
                acc += dist.sample(&mut rng);
            }
            black_box(acc)
        });
    });
}

fn bench_dirichlet(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampling/dirichlet");
    for k in [2usize, 8, 32] {
        let dist = Dirichlet::symmetric(k, 1.5).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(k), &dist, |b, dist| {
            let mut rng = Pcg32::new(5);
            b.iter(|| black_box(dist.sample(&mut rng)));
        });
    }
    group.finish();
}

fn bench_adult_rows(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampling/adult_synth");
    group.sample_size(20);
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("generate_10k_rows", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(
                generate(&SynthConfig {
                    seed,
                    n_train: 10_000,
                    n_test: 16,
                    ..SynthConfig::default()
                })
                .unwrap(),
            )
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_categorical,
    bench_normal,
    bench_dirichlet,
    bench_adult_rows
);
criterion_main!(benches);
