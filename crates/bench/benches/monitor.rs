//! Criterion bench: incremental sliding-window monitoring vs full
//! recomputation on a 1M-row drifting replay.
//!
//! Both contenders process the same stream in `CHUNK_ROWS`-record steps
//! and produce the identical windowed ε at every step (the monitor's
//! byte-identity property); they differ only in how:
//!
//! - `incremental`: `FairnessMonitor::push` — tally the new chunk, merge
//!   it into the running window counts, subtract the expired bucket, and
//!   recompute ε from the counts. Per-step work is O(chunk + cells),
//!   independent of the window size W.
//! - `full_recompute`: the naive online audit — re-tally all W window
//!   rows from scratch and run a batch `Audit` per step. Per-step work is
//!   O(W), the window size.
//!
//! At W = 10 000 and 100-row chunks the incremental path re-touches 100×
//! fewer rows per step; the measured speedup target is ≥ 10×.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use df_core::builder::{Audit, Smoothed, SubsetPolicy};
use df_core::JointCounts;
use df_data::chunks::FrameChunks;
use df_data::frame::DataFrame;
use df_data::workloads::drift_replay_frame;
use df_prob::partial::{PartialCounts, Tally};
use df_prob::rng::Pcg32;
use std::collections::VecDeque;
use std::hint::black_box;

const N_ROWS: usize = 1_000_000;
const WINDOW: usize = 10_000;
const CHUNK_ROWS: usize = 100;
const COLUMNS: [&str; 3] = ["outcome", "attr0", "attr1"];

fn workload() -> DataFrame {
    let mut rng = Pcg32::new(2026);
    drift_replay_frame(&mut rng, N_ROWS, &[2, 4], 0.35, 0.2, 1.8).expect("workload generation")
}

fn bench_monitor(c: &mut Criterion) {
    let frame = workload();

    let mut group = c.benchmark_group("monitor/replay_1m_w10k");
    group.sample_size(10);
    group.throughput(Throughput::Elements(N_ROWS as u64));

    // Incremental: ring-buffer merge/subtract, ε per chunk.
    group.bench_function("incremental", |b| {
        b.iter(|| {
            let chunks = FrameChunks::new(&frame, &COLUMNS, CHUNK_ROWS).unwrap();
            let axes = chunks.axes().unwrap();
            let mut monitor = Audit::monitor("outcome", axes)
                .estimator(Smoothed { alpha: 1.0 })
                .window(WINDOW)
                .build()
                .unwrap();
            let mut last = 0.0;
            for chunk in chunks {
                last = monitor.push(&chunk).unwrap().epsilon.epsilon;
            }
            black_box(last)
        });
    });

    // Full recompute: re-tally the whole window and batch-audit it, per
    // chunk — the naive online audit the monitor replaces.
    group.bench_function("full_recompute", |b| {
        b.iter(|| {
            let chunks = FrameChunks::new(&frame, &COLUMNS, CHUNK_ROWS).unwrap();
            let axes = chunks.axes().unwrap();
            let mut ring: VecDeque<(df_data::chunks::FrameChunk, usize)> = VecDeque::new();
            let mut held = 0usize;
            let mut last = 0.0;
            for chunk in chunks {
                let rows = chunk.n_rows();
                ring.push_back((chunk, rows));
                held += rows;
                while held > WINDOW {
                    let (_, evicted) = ring.pop_front().unwrap();
                    held -= evicted;
                }
                let mut window = PartialCounts::zeros(axes.clone()).unwrap();
                for (c, _) in &ring {
                    c.tally_into(&mut window).unwrap();
                }
                let counts = JointCounts::from_table(window.into_table(), "outcome").unwrap();
                let report = Audit::of_counts(counts)
                    .unwrap()
                    .estimator(Smoothed { alpha: 1.0 })
                    .subsets(SubsetPolicy::None)
                    .run()
                    .unwrap();
                last = report.epsilon.epsilon;
            }
            black_box(last)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_monitor);
criterion_main!(benches);
