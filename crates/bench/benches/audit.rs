//! Criterion bench: the end-to-end `Audit` builder hot path — the first
//! perf baseline for one-call audits (full subset lattice + baselines on an
//! Adult-shaped table, and the paper's Table 1 shape).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use df_core::builder::{Audit, Smoothed};
use df_core::JointCounts;
use df_data::workloads::random_joint_counts;
use df_prob::rng::Pcg32;
use std::hint::black_box;

fn bench_audit_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("audit/run_smoothed");
    let mut rng = Pcg32::new(33);
    // p protected attributes of arity 2: the subset lattice has 2^p - 1
    // entries, each estimated by the configured estimator.
    for p in [2usize, 3, 4] {
        let arities = vec![2usize; p];
        let table = random_joint_counts(&mut rng, 2, &arities, 2_000).unwrap();
        let jc = JointCounts::from_table(table, "outcome").unwrap();
        group.throughput(Throughput::Elements((1u64 << p) - 1));
        group.bench_with_input(BenchmarkId::from_parameter(p), &jc, |b, jc| {
            b.iter(|| {
                black_box(
                    Audit::of(jc)
                        .estimator(Smoothed { alpha: 1.0 })
                        .run()
                        .unwrap(),
                )
            });
        });
    }
    group.finish();
}

fn bench_audit_full_report(c: &mut Criterion) {
    let mut group = c.benchmark_group("audit/full_report");
    let mut rng = Pcg32::new(34);
    // Adult-shaped: 2 outcomes x 4 x 2 x 2 with baselines enabled.
    let table = random_joint_counts(&mut rng, 2, &[4, 2, 2], 2_000).unwrap();
    let jc = JointCounts::from_table(table, "outcome").unwrap();
    let positive = jc.outcome_labels()[0].clone();
    group.bench_function("adult_shape", |b| {
        b.iter(|| {
            black_box(
                Audit::of(&jc)
                    .estimator(Smoothed { alpha: 1.0 })
                    .baselines(df_core::builder::Baselines::all().positive(&positive))
                    .reference_epsilon(1.0)
                    .run()
                    .unwrap(),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_audit_run, bench_audit_full_report);
criterion_main!(benches);
