//! Criterion bench: streaming/sharded ingestion vs the batch tally on a
//! synthetic million-row audit workload.
//!
//! Three contenders over the same 1M-row frame (2 outcomes × 2×4×2
//! protected attributes):
//!
//! - `batch`: the classic path — `DataFrame::contingency` walks every row
//!   single-threaded, then the audit runs on the counts.
//! - `stream/{n}`: `Audit::of_stream` over zero-copy `FrameChunks`, with
//!   `n` worker shards merging partial counts.
//! - `csv/{n}`: the streaming CSV reader parsing and tallying fixed-size
//!   row batches (ingestion without materializing a frame), `n` shards.
//!
//! The engine guarantees all paths produce byte-identical reports; this
//! bench measures only throughput (rows/s).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use df_core::builder::{Audit, Smoothed};
use df_core::{DfError, JointCounts};
use df_data::chunks::{CsvChunks, FrameChunks};
use df_data::csv::CsvOptions;
use df_data::frame::DataFrame;
use df_data::workloads::{frame_to_csv, synthetic_audit_frame};
use df_prob::rng::Pcg32;
use std::hint::black_box;

const N_ROWS: usize = 1_000_000;
const CHUNK_ROWS: usize = 4_096;
const COLUMNS: [&str; 4] = ["outcome", "attr0", "attr1", "attr2"];

fn workload() -> DataFrame {
    let mut rng = Pcg32::new(2024);
    synthetic_audit_frame(&mut rng, N_ROWS, 2, &[2, 4, 2]).expect("workload generation")
}

fn bench_ingestion(c: &mut Criterion) {
    let frame = workload();

    let mut group = c.benchmark_group("streaming/ingest_1m");
    group.sample_size(10);
    group.throughput(Throughput::Elements(N_ROWS as u64));

    // Batch: single-threaded contingency tally + audit.
    group.bench_function("batch", |b| {
        b.iter(|| {
            let table = frame.contingency(&COLUMNS).unwrap();
            let counts = JointCounts::from_table(table, "outcome").unwrap();
            black_box(
                Audit::of_counts(counts)
                    .unwrap()
                    .estimator(Smoothed { alpha: 1.0 })
                    .run()
                    .unwrap(),
            )
        });
    });

    // Streaming over zero-copy frame chunks, 1..=8 shards.
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("stream", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let chunks = FrameChunks::new(&frame, &COLUMNS, CHUNK_ROWS).unwrap();
                    let axes = chunks.axes().unwrap();
                    black_box(
                        Audit::of_stream("outcome", axes, chunks.map(Ok::<_, DfError>), threads)
                            .unwrap()
                            .estimator(Smoothed { alpha: 1.0 })
                            .run()
                            .unwrap(),
                    )
                });
            },
        );
    }
    group.finish();
}

fn bench_csv_ingestion(c: &mut Criterion) {
    // A smaller CSV body (200k rows) keeps the parse-bound bench quick
    // while still dwarfing per-chunk overheads.
    let n_rows = 200_000;
    let mut rng = Pcg32::new(7);
    let frame = synthetic_audit_frame(&mut rng, n_rows, 2, &[2, 4, 2]).expect("workload");
    let csv = frame_to_csv(&frame, &COLUMNS).expect("csv render");
    let axes = FrameChunks::new(&frame, &COLUMNS, 1)
        .unwrap()
        .axes()
        .unwrap();

    let mut group = c.benchmark_group("streaming/csv_200k");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n_rows as u64));
    for threads in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let chunks = CsvChunks::new(csv.as_bytes(), CsvOptions::default(), 8_192)
                        .unwrap()
                        .map(|r| r.map_err(|e| DfError::Invalid(e.to_string())));
                    black_box(
                        Audit::of_stream("outcome", axes.clone(), chunks, threads)
                            .unwrap()
                            .estimator(Smoothed { alpha: 1.0 })
                            .run()
                            .unwrap(),
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ingestion, bench_csv_ingestion);
criterion_main!(benches);
