//! Criterion bench: wall-clock windowed monitoring vs full recomputation
//! on a timestamped drifting replay with a planted change-point.
//!
//! The stream is Poisson traffic at 1 000 records/s for 600 s (≈ 600k
//! records), windowed over the last 60 s at 1 s buckets (≈ 60k in-window
//! records when warm), with CUSUM and Page–Hinkley detectors attached.
//! Both contenders process one chunk per 1 s bucket and produce the
//! identical windowed ε at every step; they differ only in how:
//!
//! - `incremental`: `FairnessMonitor::push_at` — tally the chunk, merge
//!   it into its time bucket, subtract expired buckets, recompute ε from
//!   the counts, and feed the detectors. Per-step work is
//!   O(chunk + cells), independent of the window population.
//! - `full_recompute`: the naive online audit — re-tally all in-window
//!   rows from scratch and run a batch `Audit` per bucket. Per-step work
//!   is O(window population) ≈ 60× the per-bucket arrivals.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use df_core::builder::{Audit, Smoothed, SubsetPolicy};
use df_core::monitor::{Cusum, PageHinkley};
use df_core::JointCounts;
use df_data::workloads::{timestamped_drift_stream, ArrivalProcess, DriftSegment, TimedChunk};
use df_prob::contingency::Axis;
use df_prob::partial::{PartialCounts, Tally};
use df_prob::rng::Pcg32;
use std::collections::VecDeque;
use std::hint::black_box;

const RATE: f64 = 1_000.0;
const STREAM_SECONDS: f64 = 600.0;
const WINDOW_SECONDS: f64 = 60.0;
const BUCKET_SECONDS: f64 = 1.0;

fn schema() -> Vec<Axis> {
    vec![
        Axis::from_strs("outcome", &["y0", "y1"]).unwrap(),
        Axis::from_strs("attr0", &["v0", "v1"]).unwrap(),
        Axis::from_strs("attr1", &["v0", "v1"]).unwrap(),
    ]
}

/// The replay, pre-grouped into one chunk per 1 s bucket so both
/// contenders measure monitor work, not row grouping.
fn workload() -> Vec<TimedChunk> {
    let mut rng = Pcg32::new(2026);
    timestamped_drift_stream(
        &mut rng,
        &[2, 2],
        0.35,
        &[
            DriftSegment::new(STREAM_SECONDS / 2.0, 0.2),
            DriftSegment::new(STREAM_SECONDS / 2.0, 1.8),
        ],
        ArrivalProcess::Poisson { rate: RATE },
    )
    .expect("workload generation")
    .bucket_chunks(BUCKET_SECONDS)
    .expect("bucket grouping")
}

fn bench_monitor_time(c: &mut Criterion) {
    let chunks = workload();
    let n_rows: usize = chunks.iter().map(TimedChunk::n_rows).sum();

    let mut group = c.benchmark_group("monitor_time/replay_600k_w60s");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n_rows as u64));

    // Incremental: time-bucket merge/subtract, ε + detectors per bucket.
    group.bench_function("incremental", |b| {
        b.iter(|| {
            let mut monitor = Audit::monitor("outcome", schema())
                .estimator(Smoothed { alpha: 1.0 })
                .window_seconds(WINDOW_SECONDS)
                .bucket_seconds(BUCKET_SECONDS)
                .changepoint(Cusum::new(0.25, 0.05, 1.0))
                .changepoint(PageHinkley::new(0.25, 0.05, 1.0))
                .build()
                .unwrap();
            let mut last = 0.0;
            for chunk in &chunks {
                last = monitor
                    .push_at(chunk, chunk.timestamp)
                    .unwrap()
                    .epsilon
                    .epsilon;
            }
            black_box(last)
        });
    });

    // Full recompute: re-tally every in-window bucket and batch-audit it,
    // per bucket — the naive wall-clock online audit.
    group.bench_function("full_recompute", |b| {
        let horizon_buckets = (WINDOW_SECONDS / BUCKET_SECONDS).ceil() as i64;
        b.iter(|| {
            let axes = schema();
            let mut ring: VecDeque<(i64, &TimedChunk)> = VecDeque::new();
            let mut last = 0.0;
            for chunk in &chunks {
                let bucket = (chunk.timestamp / BUCKET_SECONDS).floor() as i64;
                ring.push_back((bucket, chunk));
                while ring
                    .front()
                    .is_some_and(|(b0, _)| *b0 <= bucket - horizon_buckets)
                {
                    ring.pop_front();
                }
                let mut window = PartialCounts::zeros(axes.clone()).unwrap();
                for (_, rows) in &ring {
                    rows.tally_into(&mut window).unwrap();
                }
                let counts = JointCounts::from_table(window.into_table(), "outcome").unwrap();
                let report = Audit::of_counts(counts)
                    .unwrap()
                    .estimator(Smoothed { alpha: 1.0 })
                    .subsets(SubsetPolicy::None)
                    .run()
                    .unwrap();
                last = report.epsilon.epsilon;
            }
            black_box(last)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_monitor_time);
criterion_main!(benches);
