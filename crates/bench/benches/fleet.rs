//! Criterion bench: the fleet aggregation subsystem — snapshot transport
//! (binary vs JSON), merge trees, and concurrent sharded ingestion.
//!
//! Three questions, matching the three fleet layers:
//!
//! 1. **Transport.** What does one steady-state monitoring tick cost on
//!    the wire? A replica snapshots a warm wall-clock monitor (60 s
//!    window, 48-cell schema, subsets, CUSUM) once per second; we
//!    measure encode/decode time for delta frames and the bytes/tick of
//!    binary vs JSON (sizes are printed once at startup — multiply by
//!    1 000 replicas × 1 Hz for the aggregator's ingress bandwidth).
//! 2. **Merge trees.** Folding 1 000 shard snapshots into the fleet ε:
//!    `merge_many` (in-place accumulation, one ε pass at the root)
//!    against the sequential pairwise `MonitorSnapshot::merge` fold
//!    (which re-clones axes and re-runs the ε kernel per pair). Both
//!    produce byte-identical output — proven in `fleet_equivalence`.
//! 3. **Ingestion.** N producer threads pushing a fixed 4-replica fleet
//!    replay through `FleetIngest` with N shards: scaling of the
//!    backpressure-free front-end, snapshot drain included.
//!
//! Run with `cargo bench -p df-bench --bench fleet`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use df_core::builder::{Audit, Smoothed, SubsetPolicy};
use df_core::fleet::{merge_many, FleetIngest, SnapshotDecoder, SnapshotEncoder};
use df_core::monitor::{Cusum, FairnessMonitor, MonitorSnapshot};
use df_data::workloads::{
    fleet_drift_streams, ArrivalProcess, DriftSegment, FleetDriftPlan, TimedChunk,
    TimestampedReplay,
};
use df_prob::contingency::Axis;
use df_prob::partial::{PartialCounts, Tally};
use df_prob::rng::Pcg32;
use std::hint::black_box;
use std::sync::Arc;

/// A zero-copy producer chunk: sharing the replay across bench
/// iterations (and producer threads) keeps the measurement on the
/// monitors, not on cloning row buffers.
#[derive(Clone)]
struct SharedChunk(Arc<TimedChunk>);

impl Tally for SharedChunk {
    fn tally_into(&self, shard: &mut PartialCounts) -> df_prob::Result<()> {
        self.0.tally_into(shard)
    }
}

/// Two outcomes × 4×3×2 protected intersections = 48 cells.
fn schema() -> Vec<Axis> {
    vec![
        Axis::from_strs("outcome", &["y0", "y1"]).unwrap(),
        Axis::from_strs("attr0", &["v0", "v1", "v2", "v3"]).unwrap(),
        Axis::from_strs("attr1", &["v0", "v1", "v2"]).unwrap(),
        Axis::from_strs("attr2", &["v0", "v1"]).unwrap(),
    ]
}

fn replica_monitor() -> FairnessMonitor {
    Audit::monitor("outcome", schema())
        .estimator(Smoothed { alpha: 1.0 })
        .subsets(SubsetPolicy::UpTo { size: 1 })
        .window_seconds(60.0)
        .bucket_seconds(1.0)
        .changepoint(Cusum::new(0.5, 0.05, 1.0))
        .build()
        .unwrap()
}

/// One replica's warm steady state: 60 s of Poisson traffic at 200/s.
fn warm_snapshot(seed: u64) -> MonitorSnapshot {
    let mut rng = Pcg32::new(seed);
    let replay = df_data::workloads::timestamped_drift_stream(
        &mut rng,
        &[4, 3, 2],
        0.35,
        &[DriftSegment::new(60.0, 0.4)],
        ArrivalProcess::Poisson { rate: 200.0 },
    )
    .expect("replica workload");
    let mut monitor = replica_monitor();
    for chunk in replay.bucket_chunks(1.0).expect("bucket grouping") {
        monitor.push_at(&chunk, chunk.timestamp).expect("push");
    }
    monitor.snapshot().expect("snapshot")
}

fn bench_codec(c: &mut Criterion) {
    let snap = warm_snapshot(42);
    let mut encoder = SnapshotEncoder::new();
    let full = encoder.encode(&snap).unwrap();
    let delta = encoder.encode(&snap).unwrap();
    let json = serde_json::to_string(&snap).unwrap();
    println!(
        "fleet codec bytes/tick (48-cell schema, 60 s window): \
         full {} B, delta {} B, JSON {} B ({:.1}x); \
         1k replicas x 1 Hz: binary {:.1} KB/s vs JSON {:.1} KB/s",
        full.len(),
        delta.len(),
        json.len(),
        json.len() as f64 / delta.len() as f64,
        delta.len() as f64,
        json.len() as f64,
    );
    assert!(
        delta.len() * 5 <= json.len(),
        "steady-state delta must be >= 5x smaller than JSON"
    );

    let mut group = c.benchmark_group("fleet_codec");
    group.throughput(Throughput::Bytes(delta.len() as u64));
    group.bench_function("encode_delta", |b| {
        let mut enc = SnapshotEncoder::new();
        enc.encode(&snap).unwrap();
        b.iter(|| enc.encode(black_box(&snap)).unwrap())
    });
    group.bench_function("decode_delta", |b| {
        let mut dec = SnapshotDecoder::new();
        dec.decode(&full).unwrap();
        b.iter(|| dec.decode(black_box(&delta)).unwrap())
    });
    group.throughput(Throughput::Bytes(json.len() as u64));
    group.bench_function("encode_json", |b| {
        b.iter(|| serde_json::to_string(black_box(&snap)).unwrap())
    });
    group.finish();
}

fn bench_merge(c: &mut Criterion) {
    // 1 000 replica snapshots over the shared schema (8 distinct warm
    // states cycled — merge cost depends on cell count, not cell values).
    let distinct: Vec<MonitorSnapshot> = (0..8).map(|i| warm_snapshot(100 + i)).collect();
    let snaps: Vec<MonitorSnapshot> = (0..1_000).map(|i| distinct[i % 8].clone()).collect();
    let estimator = Smoothed { alpha: 1.0 };

    let mut group = c.benchmark_group("fleet_merge_1k");
    group.sample_size(10);
    group.throughput(Throughput::Elements(snaps.len() as u64));
    group.bench_function("merge_many", |b| {
        b.iter(|| merge_many(black_box(&snaps), &estimator).unwrap())
    });
    group.bench_function("pairwise_fold", |b| {
        b.iter(|| {
            let mut acc = snaps[0].clone();
            for snap in &snaps[1..] {
                acc = acc.merge(snap, &estimator).unwrap();
            }
            acc
        })
    });
    group.finish();
}

fn bench_ingest(c: &mut Criterion) {
    // A fixed 4-replica fleet replay: 60 s of Poisson traffic at 5 000/s
    // per replica (~1.2M records total), pre-bucketed per second.
    let mut rng = Pcg32::new(7);
    let replays: Vec<TimestampedReplay> = fleet_drift_streams(
        &mut rng,
        &[4, 3, 2],
        0.35,
        FleetDriftPlan {
            replicas: 4,
            calm: &[DriftSegment::new(60.0, 0.3)],
            drifted: &[DriftSegment::new(30.0, 0.3), DriftSegment::new(30.0, 1.5)],
            drift_replicas: &[3],
        },
        ArrivalProcess::Poisson { rate: 5_000.0 },
    )
    .expect("fleet workload");
    let feeds: Vec<Vec<(SharedChunk, f64)>> = replays
        .iter()
        .map(|r| {
            r.bucket_chunks(1.0)
                .expect("bucket grouping")
                .into_iter()
                .map(|chunk| {
                    let at = chunk.timestamp;
                    (SharedChunk(Arc::new(chunk)), at)
                })
                .collect()
        })
        .collect();
    let total_rows: usize = replays.iter().map(|r| r.frame.n_rows()).sum();

    let mut group = c.benchmark_group("fleet_ingest");
    group.sample_size(10);
    group.throughput(Throughput::Elements(total_rows as u64));
    // Shard counts up to the replica count only: there are 4 feeds, so
    // more than 4 shards would just idle.
    for shards in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("producers", shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let fleet: FleetIngest<SharedChunk> = Audit::monitor("outcome", schema())
                        .estimator(Smoothed { alpha: 1.0 })
                        .window_seconds(60.0)
                        .bucket_seconds(1.0)
                        .fleet(shards)
                        .unwrap();
                    std::thread::scope(|scope| {
                        for (i, feed) in feeds.iter().enumerate() {
                            let producer = fleet.producer(i % shards).unwrap();
                            scope.spawn(move || {
                                for (chunk, at) in feed {
                                    producer.send(chunk.clone(), *at).unwrap();
                                }
                            });
                        }
                    });
                    fleet.finish().unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_codec, bench_merge, bench_ingest);
criterion_main!(benches);
