//! Criterion bench: telemetry primitive costs and the instrumented
//! warm-audit overhead gate.
//!
//! Three questions, answered separately:
//!
//! 1. **What does one telemetry op cost?** Counter bumps, histogram
//!    observations, full request spans (clock read × 2 + histogram +
//!    ring push), and a registry scrape — each in isolation.
//! 2. **What does instrumentation cost the warm audit?** The acceptance
//!    gate: `tcp_request` measures warm `GET /v1/audit` over keep-alive
//!    TCP against the fully instrumented server (version-cached
//!    snapshot + rendered bytes, the ≥10k req/s regime), and
//!    `per_request_telemetry` measures the complete telemetry sequence
//!    that path executes — endpoint span with three fields, status-class
//!    and body-byte counters, two cache counters — in isolation. The
//!    target is `per_request_telemetry / tcp_request ≤ 5%`; measured,
//!    the sequence is hundreds of nanoseconds against a
//!    tens-of-microseconds request, comfortably under.
//! 3. **What does instrumentation cost the ingest worker?** The
//!    incremental monitor loop bare vs with exactly the per-chunk
//!    telemetry the fleet shard worker adds (two clock reads, a
//!    histogram observation, four counter/gauge bumps). The cost is
//!    fixed per chunk, so it amortizes over the batch — report it per
//!    row, not per chunk.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use df_core::builder::{Audit, Smoothed};
use df_core::fleet::ShardTelemetry;
use df_core::monitor::FairnessMonitor;
use df_data::chunks::FrameChunks;
use df_data::frame::DataFrame;
use df_data::workloads::drift_replay_frame;
use df_obs::{Counter, Histogram, Registry, TraceRing, Tracer};
use df_prob::contingency::Axis;
use df_prob::rng::Pcg32;
use df_server::client::Http1Client;
use df_server::Server;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs/primitives");

    let counter = Counter::new();
    group.bench_function("counter_inc", |b| b.iter(|| counter.inc()));

    let hist = Histogram::default_latency();
    group.bench_function("histogram_observe", |b| {
        let mut v = 1e-6;
        b.iter(|| {
            v = (v * 1.001) % 1.0;
            hist.observe(black_box(v));
        })
    });

    let tracer = Tracer::new(
        Arc::new(df_obs::RealClock::new()),
        Some(TraceRing::new(256)),
    );
    group.bench_function("span_enter_finish", |b| {
        b.iter(|| {
            let mut span = tracer.span("bench", &hist);
            span.field("status", "200");
            black_box(span.finish())
        })
    });

    // A server-shaped registry: 9 endpoints × 5 status classes of
    // counters plus 9 latency histograms, scraped whole.
    let registry = Registry::new();
    for e in 0..9usize {
        let endpoint = format!("e{e}");
        let labels: &[(&str, &str)] = &[("endpoint", endpoint.as_str())];
        let h = registry
            .histogram("bench_seconds", labels, hist.bounds())
            .unwrap();
        h.observe(0.001 * e as f64);
        for class in ["1xx", "2xx", "3xx", "4xx", "5xx"] {
            let c = registry
                .counter(
                    "bench_total",
                    &[("endpoint", endpoint.as_str()), ("status", class)],
                )
                .unwrap();
            c.add(e as u64);
        }
    }
    group.bench_function("render_text_54_series", |b| {
        b.iter(|| black_box(registry.render_text().len()))
    });
    group.finish();
}

/// Two outcomes × 4×3×2 protected intersections, the server bench schema.
fn schema() -> Vec<Axis> {
    vec![
        Axis::from_strs("outcome", &["y0", "y1"]).unwrap(),
        Axis::from_strs("attr0", &["v0", "v1", "v2", "v3"]).unwrap(),
        Axis::from_strs("attr1", &["v0", "v1", "v2"]).unwrap(),
        Axis::from_strs("attr2", &["v0", "v1"]).unwrap(),
    ]
}

fn bench_warm_audit(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs/warm_audit");

    // The instrumented warm path over real TCP: spans, counters, and
    // cache telemetry all live, trace ring at its default capacity.
    let server = Server::builder("outcome", schema())
        .window_seconds(1e6)
        .bucket_seconds(1.0)
        .shards(2)
        .workers(2)
        .bind("127.0.0.1:0")
        .expect("bind bench server");
    let mut client = Http1Client::connect(server.local_addr()).expect("connect");
    let posted = client
        .request(
            "POST",
            "/v1/ingest/records",
            &[],
            br#"{"rows": [["y0","v0","v0","v0"],["y1","v1","v1","v1"]], "at": 1.0}"#,
        )
        .expect("ingest");
    assert_eq!(posted.status, 200, "{}", posted.text());
    // Prime both caches so every measured request is warm.
    assert_eq!(client.get("/v1/audit").expect("prime").status, 200);
    group.bench_function("tcp_request", |b| {
        b.iter(|| {
            let resp = client.get("/v1/audit").expect("warm audit");
            assert_eq!(resp.status, 200);
            black_box(resp.body.len())
        })
    });

    // The complete per-request telemetry sequence that path executes,
    // in isolation: its cost over `tcp_request` is the overhead ratio.
    let hist = Histogram::default_latency();
    let tracer = Tracer::new(
        Arc::new(df_obs::RealClock::new()),
        Some(TraceRing::new(256)),
    );
    let requests = Counter::new();
    let request_bytes = Counter::new();
    let response_bytes = Counter::new();
    let snap_cache_hit = Counter::new();
    let render_cache_hit = Counter::new();
    group.bench_function("per_request_telemetry", |b| {
        b.iter(|| {
            let mut span = tracer.span("audit", &hist);
            span.field("method", "GET");
            span.field("path", "/v1/audit");
            span.field("status", "200");
            let seconds = span.finish();
            requests.inc();
            request_bytes.add(0);
            response_bytes.add(1024);
            snap_cache_hit.inc();
            render_cache_hit.inc();
            black_box(seconds)
        })
    });
    group.finish();
    drop(client);
    server.shutdown();
}

const N_ROWS: usize = 200_000;
/// Per-chunk telemetry cost is fixed, so the overhead ratio is a
/// function of batch size; 256 rows is the shape of a realistic ingest
/// POST.
const CHUNK_ROWS: usize = 256;
const COLUMNS: [&str; 3] = ["outcome", "attr0", "attr1"];

fn workload() -> DataFrame {
    let mut rng = Pcg32::new(2026);
    drift_replay_frame(&mut rng, N_ROWS, &[2, 4], 0.35, 0.2, 1.8).expect("workload generation")
}

fn monitor_for(frame: &DataFrame) -> FairnessMonitor {
    let axes = FrameChunks::new(frame, &COLUMNS, CHUNK_ROWS)
        .unwrap()
        .axes()
        .unwrap();
    Audit::monitor("outcome", axes)
        .estimator(Smoothed { alpha: 1.0 })
        .window(10_000)
        .build()
        .unwrap()
}

fn bench_ingest_worker_overhead(c: &mut Criterion) {
    let frame = workload();

    let mut group = c.benchmark_group("obs/ingest_worker");
    group.sample_size(20);
    group.throughput(Throughput::Elements(N_ROWS as u64));

    // Baseline: the bare incremental monitor loop.
    group.bench_function("baseline", |b| {
        b.iter(|| {
            let mut monitor = monitor_for(&frame);
            let mut last = 0.0;
            for chunk in FrameChunks::new(&frame, &COLUMNS, CHUNK_ROWS).unwrap() {
                last = monitor.push(&chunk).unwrap().epsilon.epsilon;
            }
            black_box(last)
        })
    });

    // Instrumented: the identical loop plus exactly what the fleet
    // shard worker records per chunk.
    group.bench_function("instrumented", |b| {
        b.iter(|| {
            let mut monitor = monitor_for(&frame);
            let tel = ShardTelemetry::default();
            let push_seconds = Histogram::default_latency();
            let mut last = 0.0;
            let mut at = 0.0f64;
            for chunk in FrameChunks::new(&frame, &COLUMNS, CHUNK_ROWS).unwrap() {
                at += 1.0;
                tel.enqueued.inc();
                let start = Instant::now();
                last = monitor.push(&chunk).unwrap().epsilon.epsilon;
                push_seconds.observe(start.elapsed().as_secs_f64());
                tel.rows.add(chunk.n_rows() as u64);
                tel.chunks.inc();
                tel.last_seen.set(at);
                tel.processed.inc();
            }
            black_box((last, tel.rows.get(), push_seconds.count()))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_primitives,
    bench_warm_audit,
    bench_ingest_worker_overhead
);
criterion_main!(benches);
