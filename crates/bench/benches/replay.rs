//! DFRL replay-log throughput vs the CSV path, with a pinned floor.
//!
//! The replay fast path — varint decode straight into
//! `tally_codes_trusted` — must beat re-parsing the equivalent CSV by at
//! least `MIN_SPEEDUP`× on a 1M-row tally. The gate runs before the
//! criterion groups and panics if the floor is missed, so a regression
//! fails the bench run itself (CI compiles this bench; the gate runs on
//! every local/nightly `cargo bench`).
//!
//! Also reports encoded size: DFRL stores interned codes (about a byte
//! per cell at these arities) against CSV's label text.

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use df_data::chunks::CsvChunks;
use df_data::csv::CsvOptions;
use df_data::frame::DataFrame;
use df_data::replay::{tally_from_log, write_frame_log};
use df_data::workloads::{frame_to_csv, synthetic_audit_frame};
use df_prob::contingency::{Axis, ContingencyTable};
use df_prob::partial::{PartialCounts, Tally};
use df_prob::rng::Pcg32;
use std::hint::black_box;
use std::time::Instant;

const N_ROWS: usize = 1_000_000;
const CHUNK_ROWS: usize = 4_096;
const COLUMNS: [&str; 4] = ["outcome", "attr0", "attr1", "attr2"];
const MIN_SPEEDUP: f64 = 5.0;

fn workload() -> DataFrame {
    let mut rng = Pcg32::new(2024);
    synthetic_audit_frame(&mut rng, N_ROWS, 2, &[2, 4, 2]).expect("workload generation")
}

fn axes_of(frame: &DataFrame) -> Vec<Axis> {
    COLUMNS
        .iter()
        .map(|n| {
            let (_, vocab) = frame.column(n).unwrap().as_categorical().unwrap();
            Axis::new(n.to_string(), vocab.to_vec()).unwrap()
        })
        .collect()
}

fn csv_tally(csv: &str, axes: &[Axis]) -> ContingencyTable {
    let mut shard = PartialCounts::zeros(axes.to_vec()).unwrap();
    for chunk in CsvChunks::new(csv.as_bytes(), CsvOptions::default(), CHUNK_ROWS).unwrap() {
        chunk.unwrap().tally_into(&mut shard).unwrap();
    }
    shard.into_table()
}

fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let start = Instant::now();
        let value = f();
        best = best.min(start.elapsed().as_secs_f64());
        out = Some(value);
    }
    (best, out.expect("at least one rep"))
}

/// The pinned floor: replaying 1M rows from a DFRL log must be at least
/// `MIN_SPEEDUP`× faster than tallying the same rows from CSV.
fn pin_replay_speedup() {
    let frame = workload();
    let axes = axes_of(&frame);
    let csv = frame_to_csv(&frame, &COLUMNS).unwrap();
    let mut log = Vec::new();
    let stats = write_frame_log(&frame, CHUNK_ROWS, &mut log).unwrap();

    let (csv_secs, csv_table) = best_of(3, || csv_tally(&csv, &axes));
    let (log_secs, log_table) = best_of(3, || tally_from_log(log.as_slice(), &COLUMNS).unwrap());
    assert_eq!(csv_table, log_table, "paths disagree on the tally");

    let speedup = csv_secs / log_secs;
    let n = N_ROWS as f64;
    println!(
        "replay pin: {N_ROWS} rows  csv {:.3}s ({:.1} Mrows/s)  dfrl {:.3}s ({:.1} Mrows/s)  speedup {speedup:.1}x",
        csv_secs,
        n / csv_secs / 1e6,
        log_secs,
        n / log_secs / 1e6,
    );
    println!(
        "replay pin: csv {:.2} bytes/row  dfrl {:.2} bytes/row ({} bytes total)",
        csv.len() as f64 / n,
        stats.bytes as f64 / n,
        stats.bytes,
    );
    assert!(
        speedup >= MIN_SPEEDUP,
        "replay fast path regressed: {speedup:.2}x < pinned {MIN_SPEEDUP}x floor"
    );
}

/// Criterion comparison at a smaller size (keeps iteration counts sane).
fn bench_tally_paths(c: &mut Criterion) {
    const BENCH_ROWS: usize = 200_000;
    let mut rng = Pcg32::new(2024);
    let frame = synthetic_audit_frame(&mut rng, BENCH_ROWS, 2, &[2, 4, 2]).unwrap();
    let axes = axes_of(&frame);
    let csv = frame_to_csv(&frame, &COLUMNS).unwrap();
    let mut log = Vec::new();
    write_frame_log(&frame, CHUNK_ROWS, &mut log).unwrap();

    let mut group = c.benchmark_group("replay_tally");
    group.throughput(Throughput::Elements(BENCH_ROWS as u64));
    group.bench_with_input(BenchmarkId::new("csv", BENCH_ROWS), &(), |b, ()| {
        b.iter(|| black_box(csv_tally(&csv, &axes)));
    });
    group.bench_with_input(BenchmarkId::new("dfrl", BENCH_ROWS), &(), |b, ()| {
        b.iter(|| black_box(tally_from_log(log.as_slice(), &COLUMNS).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_tally_paths);

fn main() {
    pin_replay_speedup();
    benches();
}
