//! Criterion bench: per-push overhead of each registry fairness metric
//! against the ε-DF default, on the two hot paths that evaluate metrics:
//!
//! - `metrics/push_200k_w10k` — the monitor hot path: a 200k-row drifting
//!   replay pushed through `FairnessMonitor::push` in 100-row chunks at
//!   W = 10 000, once per metric. Tallying and window maintenance are
//!   identical across contenders (the stored counts are metric-agnostic),
//!   so any spread is the per-step metric evaluation.
//! - `metrics/evaluate_2x2x4` — the metric kernel alone:
//!   `Metric::evaluate_counts` on a fixed 2×2×4 joint table, isolating
//!   each statistic's arithmetic from the streaming machinery.
//!
//! Every metric walks the same per-outcome conditional table; ε-DF takes
//! pairwise log-ratios (via the estimator), the worst-case pair takes a
//! min/max sweep, α-IF adds the leveling-down blend on top of the ratio
//! sweep, and DEO repeats the ε-DF kernel once per true-label stratum.
//! Expected overhead vs ε-DF is therefore within noise for the min/max
//! family and roughly ×(strata) for DEO's kernel term — numbers that
//! EXPERIMENTS.md quotes from this bench.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use df_core::builder::{Audit, Smoothed};
use df_core::metric::metric_from_tag;
use df_core::JointCounts;
use df_data::chunks::FrameChunks;
use df_data::frame::DataFrame;
use df_data::workloads::drift_replay_frame;
use df_prob::rng::Pcg32;
use std::hint::black_box;

const N_ROWS: usize = 200_000;
const WINDOW: usize = 10_000;
const CHUNK_ROWS: usize = 100;
const COLUMNS: [&str; 3] = ["outcome", "attr0", "attr1"];

/// Every registry metric, instantiated for the outcome × attr0 × attr1
/// schema of the replay (attr1 doubles as the DEO true-label axis).
const TAGS: [&str; 5] = [
    "eps-df",
    "wc-ratio",
    "wc-diff",
    "alpha-if(alpha=0.5)",
    "deo(label=attr1)",
];

fn workload() -> DataFrame {
    let mut rng = Pcg32::new(2026);
    drift_replay_frame(&mut rng, N_ROWS, &[2, 4], 0.35, 0.2, 1.8).expect("workload generation")
}

fn bench_monitor_push(c: &mut Criterion) {
    let frame = workload();

    let mut group = c.benchmark_group("metrics/push_200k_w10k");
    group.sample_size(10);
    group.throughput(Throughput::Elements(N_ROWS as u64));

    for tag in TAGS {
        group.bench_function(tag, |b| {
            b.iter(|| {
                let chunks = FrameChunks::new(&frame, &COLUMNS, CHUNK_ROWS).unwrap();
                let axes = chunks.axes().unwrap();
                let mut monitor = Audit::monitor("outcome", axes)
                    .estimator(Smoothed { alpha: 1.0 })
                    .boxed_metric(metric_from_tag(tag).unwrap())
                    .window(WINDOW)
                    .build()
                    .unwrap();
                let mut last = 0.0;
                for chunk in chunks {
                    last = monitor.push(&chunk).unwrap().epsilon.epsilon;
                }
                black_box(last)
            });
        });
    }
    group.finish();
}

fn bench_evaluate(c: &mut Criterion) {
    let frame = workload();
    let table = frame.contingency(&COLUMNS).expect("contingency");
    let counts = JointCounts::from_table(table, "outcome").expect("joint counts");
    let estimator = Smoothed { alpha: 1.0 };

    let mut group = c.benchmark_group("metrics/evaluate_2x2x4");

    for tag in TAGS {
        let metric = metric_from_tag(tag).unwrap();
        group.bench_function(tag, |b| {
            b.iter(|| black_box(metric.evaluate_counts(&counts, &estimator).unwrap().epsilon));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_monitor_push, bench_evaluate);
criterion_main!(benches);
