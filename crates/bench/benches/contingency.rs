//! Criterion bench: contingency-table tallying and marginalization — the
//! data-structure hot path behind every EDF computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use df_data::workloads::random_joint_counts;
use df_prob::contingency::{Axis, ContingencyTable};
use df_prob::rng::Pcg32;
use std::hint::black_box;

fn bench_increment(c: &mut Criterion) {
    let mut group = c.benchmark_group("contingency/increment");
    for n_records in [10_000usize, 100_000] {
        let mut rng = Pcg32::new(7);
        // Pre-generate record index streams (outcome, a, b, c).
        let records: Vec<[usize; 4]> = (0..n_records)
            .map(|_| {
                [
                    rng.next_below(2) as usize,
                    rng.next_below(4) as usize,
                    rng.next_below(2) as usize,
                    rng.next_below(2) as usize,
                ]
            })
            .collect();
        group.throughput(Throughput::Elements(n_records as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(n_records),
            &records,
            |b, records| {
                b.iter(|| {
                    let axes = vec![
                        Axis::from_strs("y", &["0", "1"]).unwrap(),
                        Axis::from_strs("a", &["0", "1", "2", "3"]).unwrap(),
                        Axis::from_strs("b", &["0", "1"]).unwrap(),
                        Axis::from_strs("c", &["0", "1"]).unwrap(),
                    ];
                    let mut t = ContingencyTable::zeros(axes).unwrap();
                    for r in records {
                        t.increment(r);
                    }
                    black_box(t.total())
                });
            },
        );
    }
    group.finish();
}

fn bench_marginalize(c: &mut Criterion) {
    let mut group = c.benchmark_group("contingency/marginalize");
    let mut rng = Pcg32::new(8);
    for arity in [4usize, 8, 16] {
        // outcome × arity × arity × 2 cells.
        let table = random_joint_counts(&mut rng, 2, &[arity, arity, 2], 100).unwrap();
        group.throughput(Throughput::Elements(table.num_cells() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(arity), &table, |b, t| {
            b.iter(|| black_box(t.marginalize(&["outcome", "attr0"]).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_increment, bench_marginalize);
criterion_main!(benches);
