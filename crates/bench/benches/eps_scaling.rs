//! Criterion bench: scaling of the ε kernel in the number of intersections
//! and outcomes.
//!
//! The kernel is O(groups × outcomes) by tracking per-outcome extremes;
//! this bench pins that behaviour (and guards against an accidental
//! O(groups²) regression in the witness tracking).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use df_core::GroupOutcomes;
use df_prob::rng::Pcg32;
use std::hint::black_box;

fn table(n_groups: usize, n_outcomes: usize, rng: &mut Pcg32) -> GroupOutcomes {
    let mut probs = Vec::with_capacity(n_groups * n_outcomes);
    for _ in 0..n_groups {
        let mut row: Vec<f64> = (0..n_outcomes).map(|_| 0.05 + rng.next_f64()).collect();
        let total: f64 = row.iter().sum();
        row.iter_mut().for_each(|v| *v /= total);
        probs.extend(row);
    }
    GroupOutcomes::with_uniform_weights(
        (0..n_outcomes).map(|y| format!("y{y}")).collect(),
        (0..n_groups).map(|g| format!("g{g}")).collect(),
        probs,
    )
    .expect("valid table")
}

fn bench_groups(c: &mut Criterion) {
    let mut group = c.benchmark_group("epsilon_kernel/groups");
    let mut rng = Pcg32::new(1);
    for n_groups in [4usize, 16, 64, 256, 1024] {
        let t = table(n_groups, 2, &mut rng);
        group.throughput(Throughput::Elements(n_groups as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n_groups), &t, |b, t| {
            b.iter(|| black_box(t.epsilon()));
        });
    }
    group.finish();
}

fn bench_outcomes(c: &mut Criterion) {
    let mut group = c.benchmark_group("epsilon_kernel/outcomes");
    let mut rng = Pcg32::new(2);
    for n_outcomes in [2usize, 8, 32, 128] {
        let t = table(64, n_outcomes, &mut rng);
        group.throughput(Throughput::Elements(n_outcomes as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n_outcomes), &t, |b, t| {
            b.iter(|| black_box(t.epsilon()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_groups, bench_outcomes);
criterion_main!(benches);
