//! Criterion bench: the 2^p subset audit — Table 2's computation — as the
//! number of protected attributes grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use df_core::subsets::subset_audit;
use df_core::JointCounts;
use df_data::workloads::random_joint_counts;
use df_prob::rng::Pcg32;
use std::hint::black_box;

fn bench_subset_audit(c: &mut Criterion) {
    let mut group = c.benchmark_group("subsets/audit");
    let mut rng = Pcg32::new(9);
    for p in [2usize, 3, 4, 5, 6] {
        let arities = vec![2usize; p];
        let table = random_joint_counts(&mut rng, 2, &arities, 300).unwrap();
        let jc = JointCounts::from_table(table, "outcome").unwrap();
        group.throughput(Throughput::Elements((1u64 << p) - 1));
        group.bench_with_input(BenchmarkId::from_parameter(p), &jc, |b, jc| {
            b.iter(|| black_box(subset_audit(jc, 1.0).unwrap()));
        });
    }
    group.finish();
}

fn bench_single_edf(c: &mut Criterion) {
    let mut group = c.benchmark_group("subsets/single_edf");
    let mut rng = Pcg32::new(10);
    // Adult-shaped table: 2 outcomes x 4 x 2 x 2.
    let table = random_joint_counts(&mut rng, 2, &[4, 2, 2], 2000).unwrap();
    let jc = JointCounts::from_table(table, "outcome").unwrap();
    group.bench_function("adult_shape_raw", |b| {
        b.iter(|| black_box(jc.edf().unwrap()));
    });
    group.bench_function("adult_shape_smoothed", |b| {
        b.iter(|| black_box(jc.edf_smoothed(1.0).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_subset_audit, bench_single_edf);
criterion_main!(benches);
