//! # df-bench — experiment harness
//!
//! Binaries regenerating every table and figure of the paper (see DESIGN.md
//! §3 for the experiment index) plus Criterion benchmarks over the hot
//! paths. This library crate holds shared harness utilities: paper-vs-
//! measured row formatting and the standard dataset/pipeline setup reused
//! across binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use df_core::report::{Align, TextTable};

/// A paper-vs-measured comparison row.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Row label (e.g. a subset of protected attributes).
    pub label: String,
    /// Value reported in the paper.
    pub paper: f64,
    /// Value measured by this reproduction.
    pub measured: f64,
}

impl Comparison {
    /// Creates a row.
    pub fn new(label: impl Into<String>, paper: f64, measured: f64) -> Self {
        Self {
            label: label.into(),
            paper,
            measured,
        }
    }

    /// Absolute deviation.
    pub fn abs_error(&self) -> f64 {
        (self.measured - self.paper).abs()
    }
}

/// Renders a list of comparisons as an aligned text table with deviations.
pub fn render_comparisons(title: &str, rows: &[Comparison]) -> String {
    let mut t = TextTable::new(&["", "paper", "measured", "|delta|"]).align(&[
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    for row in rows {
        t.row(&[
            row.label.clone(),
            format!("{:.3}", row.paper),
            format!("{:.3}", row.measured),
            format!("{:.3}", row.abs_error()),
        ]);
    }
    format!("== {title} ==\n{}", t.render())
}

/// Standard experiment header printed by every binary.
pub fn print_header(experiment: &str, detail: &str) {
    println!("================================================================");
    println!("{experiment}");
    println!("{detail}");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_error() {
        let c = Comparison::new("x", 1.0, 1.25);
        assert!((c.abs_error() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn render_contains_all_rows() {
        let rows = vec![
            Comparison::new("gender", 1.03, 1.02),
            Comparison::new("race", 0.93, 0.95),
        ];
        let s = render_comparisons("Table 2", &rows);
        assert!(s.contains("Table 2"));
        assert!(s.contains("gender"));
        assert!(s.contains("0.93"));
    }
}
