//! Reproduces Table 1 and §5.1 of the paper: the Simpson's-paradox
//! admissions scenario (adapted from the kidney-stone data) and its
//! intersectional differential-fairness analysis.
//!
//! Run with `cargo run -p df-bench --release --bin table1`.

use df_bench::{print_header, render_comparisons, Comparison};
use df_core::builder::{Audit, Empirical, SubsetPolicy};
use df_core::report::{Align, TextTable};
use df_core::JointCounts;
use df_data::kidney;

fn main() {
    print_header(
        "Table 1 / section 5.1: Simpson's paradox, University X admissions",
        "counts adapted from Charig et al.'s kidney-stone comparison",
    );

    let counts =
        JointCounts::from_table(kidney::admissions_counts(), "outcome").expect("joint counts");

    // Table 1: probability of admission per cell, with the Overall row and
    // column.
    let go = counts.group_outcomes(0.0).expect("group outcomes");
    let admit = |gender: &str, race: &str| {
        let g = go
            .group_labels()
            .iter()
            .position(|l| l == &format!("gender={gender}, race={race}"))
            .expect("group exists");
        go.prob(g, 0)
    };
    let by_gender = counts
        .marginal_to(&["gender"])
        .expect("marginal")
        .group_outcomes(0.0)
        .expect("group outcomes");
    let by_race = counts
        .marginal_to(&["race"])
        .expect("marginal")
        .group_outcomes(0.0)
        .expect("group outcomes");

    let mut t = TextTable::new(&["", "Gender A", "Gender B", "Overall"]).align(&[
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    for race in ["1", "2"] {
        let overall_ix = by_race
            .group_labels()
            .iter()
            .position(|l| l == &format!("race={race}"))
            .expect("race group");
        t.row(&[
            format!("Race {race}"),
            format!("{:.4}", admit("A", race)),
            format!("{:.4}", admit("B", race)),
            format!("{:.4}", by_race.prob(overall_ix, 0)),
        ]);
    }
    t.row(&[
        "Overall".into(),
        format!("{:.4}", by_gender.prob(0, 0)),
        format!("{:.4}", by_gender.prob(1, 0)),
        String::new(),
    ]);
    println!("{}", t.render());
    println!(
        "paper: 81/87 = 0.9310, 234/270 = 0.8667, 192/263 = 0.7300, 55/80 = 0.6875;\n\
         overall 273/350 = 0.78 (A), 289/350 = 0.8257 (B)\n"
    );

    // Simpson's reversal narration.
    println!("Simpson's reversal:");
    println!(
        "  within each race, Gender A is admitted more often (race 1: {:.3} > {:.3}; race 2: {:.3} > {:.3})",
        admit("A", "1"),
        admit("B", "1"),
        admit("A", "2"),
        admit("B", "2"),
    );
    println!(
        "  yet overall Gender B is admitted more often ({:.3} > {:.3})\n",
        by_gender.prob(1, 0),
        by_gender.prob(0, 0),
    );

    // §5.1's ε values, via the audit builder.
    let report = Audit::of(&counts)
        .estimator(Empirical)
        .subsets(SubsetPolicy::All)
        .run()
        .expect("audit");
    let audit = report.estimator("eps-EDF").expect("estimator column");
    let eps = |attrs: &[&str]| audit.get(attrs).expect("subset").result.epsilon;
    let full = eps(&["gender", "race"]);
    let comparisons = vec![
        Comparison::new("eps-EDF, A = Gender x Race", 1.511, full),
        Comparison::new("eps-EDF, A = Gender", 0.2329, eps(&["gender"])),
        Comparison::new("eps-EDF, A = Race", 0.8667, eps(&["race"])),
        Comparison::new("Theorem 3.1 bound 2*eps", 3.022, 2.0 * full),
    ];
    println!(
        "{}",
        render_comparisons("Section 5.1: differential fairness", &comparisons)
    );

    println!(
        "Theorem 3.1 in action: even under the Simpson's reversal, every marginal\n\
         eps ({:.4}, {:.4}) stays below the 2*eps = {:.3} bound.",
        eps(&["gender"]),
        eps(&["race"]),
        2.0 * full
    );
}
