//! Runs every experiment binary in sequence — the one-command reproduction
//! of all of the paper's tables and figures plus the ablations.
//!
//! Run with `cargo run -p df-bench --release --bin run_all`.

use std::process::Command;

const BINARIES: [&str; 6] = [
    "fig2",
    "table1",
    "table2",
    "table3",
    "ablation_smoothing",
    "ablation_bound",
];

// ablation_sample_size is excluded from the default sweep because its
// largest setting generates half a million rows per seed; run it directly.

fn main() {
    let exe = std::env::current_exe().expect("current executable path");
    let dir = exe.parent().expect("binary directory");
    let mut failures = Vec::new();
    for bin in BINARIES {
        println!("\n############ {bin} ############\n");
        let status = Command::new(dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        if !status.success() {
            failures.push(bin);
        }
    }
    println!("\n############ summary ############");
    if failures.is_empty() {
        println!("all {} experiments completed", BINARIES.len());
    } else {
        println!("FAILED: {failures:?}");
        std::process::exit(1);
    }
}
