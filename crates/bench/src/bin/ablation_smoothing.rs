//! Ablation A: Dirichlet smoothing (Eq. 6 vs Eq. 7).
//!
//! Sweeps the concentration α over the Adult joint counts and over a small
//! subsample, showing (i) how smoothing tempers ε on rare intersections,
//! (ii) how Eq. 6's ε becomes infinite once an intersection has a
//! zero-count outcome, and Eq. 7 rescues it.
//!
//! Run with `cargo run -p df-bench --release --bin ablation_smoothing`.

use df_core::report::{fmt_epsilon, Align, TextTable};
use df_core::JointCounts;
use df_data::adult::synth::{self, CellAllocation, SynthConfig};
use df_prob::rng::Pcg32;

const ALPHAS: [f64; 7] = [0.0, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0];

fn adult_counts(n_train: usize, seed: u64) -> JointCounts {
    let d = synth::generate(&SynthConfig {
        seed,
        n_train,
        n_test: 16,
        allocation: CellAllocation::Iid,
    })
    .expect("generation")
    .with_protected()
    .expect("protected prep");
    JointCounts::from_table(
        d.train
            .contingency(&["income", "race_m", "gender", "nationality"])
            .expect("contingency"),
        "income",
    )
    .expect("joint counts")
}

fn main() {
    df_bench::print_header(
        "Ablation A: Dirichlet smoothing of differential fairness (Eq. 7)",
        "eps vs alpha at several sample sizes (iid-sampled synthetic Adult)",
    );

    let sizes = [200usize, 1_000, 5_000, 32_561];
    let mut table = TextTable::new(&["alpha", "N=200", "N=1000", "N=5000", "N=32561"]).align(&[
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);

    // 8 independent datasets per size; cells report the mean over seeds
    // (infinite estimates render as `inf` and taint the mean, which is the
    // honest summary for Eq. 6 at small N).
    let counts: Vec<Vec<JointCounts>> = sizes
        .iter()
        .map(|&n| (0..8).map(|s| adult_counts(n, 0xA1FA + s)).collect())
        .collect();
    for alpha in ALPHAS {
        let mut row = vec![format!("{alpha}")];
        for per_size in &counts {
            let mean = per_size
                .iter()
                .map(|c| c.edf_smoothed(alpha).expect("epsilon").epsilon)
                .sum::<f64>()
                / per_size.len() as f64;
            row.push(fmt_epsilon(mean));
        }
        table.row(&row);
    }
    println!("{}", table.render());

    println!("reading:");
    println!("- alpha = 0 (Eq. 6) is infinite at small N: some intersection has a");
    println!("  zero-count outcome, so the ratio in Definition 3.1 is unbounded;");
    println!("- any alpha > 0 (Eq. 7) keeps eps finite, and larger alpha shrinks");
    println!("  eps toward 0 as every group's estimate is pulled to uniform;");
    println!("- at N = 32,561 the effect of alpha in [0.1, 2] is small: the data");
    println!("  dominates the prior, which is why the paper's Table 3 choice of");
    println!("  alpha = 1 is innocuous at full scale.");

    // Expected-eps stability across seeds at small N (smoothing as variance
    // reduction).
    println!("\nseed-to-seed spread of eps at N = 500 (10 seeds):");
    let mut rng = Pcg32::new(99);
    for alpha in [0.0, 1.0] {
        let mut values = Vec::new();
        for _ in 0..10 {
            let seed = rng.next_u32_raw() as u64;
            let eps = adult_counts(500, seed)
                .edf_smoothed(alpha)
                .expect("epsilon")
                .epsilon;
            values.push(eps);
        }
        let finite: Vec<f64> = values.iter().copied().filter(|e| e.is_finite()).collect();
        let infinite = values.len() - finite.len();
        if finite.is_empty() {
            println!("  alpha = {alpha}: {infinite}/10 infinite (no finite estimates)");
            continue;
        }
        let mean = finite.iter().sum::<f64>() / finite.len() as f64;
        let spread =
            (finite.iter().map(|e| (e - mean).powi(2)).sum::<f64>() / finite.len() as f64).sqrt();
        println!(
            "  alpha = {alpha}: {infinite}/10 infinite; finite mean {mean:.3}, sd {spread:.3}"
        );
    }
}
