//! Reproduces Figure 2 of the paper: the worked example of differential
//! fairness for a test-score threshold mechanism over two Gaussian groups.
//!
//! Regenerates (a) the group-conditional density table at the threshold,
//! (b) the outcome-probability table, (c) the log-ratio table, and
//! (d) ε = 2.337 — analytically and by Monte-Carlo — plus the §3.3
//! interpretation (privacy regime, e^ε bound, randomized-response
//! calibration) and the fairest-threshold repair.
//!
//! Run with `cargo run -p df-bench --release --bin fig2`.

use df_bench::{print_header, render_comparisons, Comparison};
use df_core::privacy::{PrivacyRegime, RANDOMIZED_RESPONSE_EPSILON};
use df_core::report::{Align, TextTable};
use df_core::GroupOutcomes;
use df_data::workloads::GaussianScoreGroups;
use df_learn::threshold::ThresholdMechanism;
use df_prob::rng::Pcg32;

fn main() {
    print_header(
        "Figure 2: worked example of differential fairness",
        "M(x) = [score >= 10.5]; scores ~ N(10,1) (group 1), N(12,1) (group 2)",
    );

    let workload = GaussianScoreGroups::figure2();
    let mech = ThresholdMechanism::new(10.5);

    // Outcome-probability table ("Probability of Hiring Outcome Given Group").
    let probs = mech.group_outcome_probabilities(&workload);
    let mut t = TextTable::new(&["outcome", "group 1", "group 2"]).align(&[
        Align::Left,
        Align::Right,
        Align::Right,
    ]);
    t.row(&[
        "yes".into(),
        format!("{:.4}", probs[0][1]),
        format!("{:.4}", probs[1][1]),
    ]);
    t.row(&[
        "no".into(),
        format!("{:.4}", probs[0][0]),
        format!("{:.4}", probs[1][0]),
    ]);
    println!("{}", t.render());
    println!("paper: yes 0.3085 / 0.9332, no 0.6915 / 0.0668\n");

    // Log-ratio table.
    let go = GroupOutcomes::with_uniform_weights(
        vec!["no".into(), "yes".into()],
        vec!["group1".into(), "group2".into()],
        vec![probs[0][0], probs[0][1], probs[1][0], probs[1][1]],
    )
    .expect("valid table");
    let mut lr = TextTable::new(&["y", "s_i", "s_j", "log ratio"]).align(&[
        Align::Left,
        Align::Left,
        Align::Left,
        Align::Right,
    ]);
    for (y, label) in [(0usize, "no"), (1, "yes")] {
        for (i, j, ratio) in go.log_ratio_table(y).expect("valid outcome") {
            lr.row(&[
                label.to_string(),
                format!("{}", i + 1),
                format!("{}", j + 1),
                format!("{ratio:.3}"),
            ]);
        }
    }
    println!("{}", lr.render());
    println!("paper: no 2.337 / -2.337, yes -1.107 / 1.107\n");

    // ε: analytic, via the generic kernel, and Monte-Carlo.
    let analytic = mech.analytic_epsilon(&workload);
    let kernel = go.epsilon();
    let mut rng = Pcg32::new(2337);
    let samples = workload.sample(&mut rng, 1_000_000);
    let emp = mech
        .empirical_outcome_probabilities(&samples, 2)
        .expect("two groups");
    let go_mc = GroupOutcomes::with_uniform_weights(
        vec!["no".into(), "yes".into()],
        vec!["group1".into(), "group2".into()],
        vec![emp[0][0], emp[0][1], emp[1][0], emp[1][1]],
    )
    .expect("valid table");
    let comparisons = vec![
        Comparison::new("eps (analytic)", 2.337, analytic),
        Comparison::new("eps (kernel)", 2.337, kernel.epsilon),
        Comparison::new("eps (Monte-Carlo, 1M)", 2.337, go_mc.epsilon().epsilon),
        Comparison::new("e^eps bound", 10.35, kernel.probability_ratio_bound()),
    ];
    println!("{}", render_comparisons("Figure 2: epsilon", &comparisons));

    let w = kernel.witness.clone().expect("two populated groups");
    println!(
        "witness: outcome `{}`, {} ({:.4}) vs {} ({:.4})",
        w.outcome, w.group_hi, w.prob_hi, w.group_lo, w.prob_lo
    );

    // §3.3 interpretation.
    println!("\n-- interpretation (paper section 3.3) --");
    println!(
        "privacy regime at eps = {:.3}: {:?} (high-privacy cutoff is eps = 1)",
        kernel.epsilon,
        PrivacyRegime::of(kernel.epsilon)
    );
    println!(
        "randomized response calibration point: eps = ln 3 = {RANDOMIZED_RESPONSE_EPSILON:.4}"
    );
    println!(
        "one group is up to {:.2}x as likely to receive an outcome (paper: ~10x for `no`)",
        kernel.probability_ratio_bound()
    );

    // Fairness repair: the fairest threshold for this workload.
    let (best_t, best_eps) =
        ThresholdMechanism::fairest_threshold(&workload, 2000).expect("grid search");
    println!("\n-- threshold repair (extension) --");
    println!(
        "fairest threshold on this workload: t = {best_t:.2} with eps = {best_eps:.3} \
         (paper's t = 10.5 gives {analytic:.3})"
    );
}
