//! Reproduces Table 2 of the paper: empirical differential fairness of the
//! Adult training set for every subset of {race, gender, nationality}.
//!
//! Run with `cargo run -p df-bench --bin table2 [--real-data DIR]`.

use df_bench::{print_header, render_comparisons, Comparison};
use df_core::builder::{Audit, Empirical, SubsetPolicy};
use df_core::JointCounts;
use df_data::adult::{self, calibration, synth};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let dataset = match args.iter().position(|a| a == "--real-data") {
        Some(i) => {
            let dir = std::path::Path::new(args.get(i + 1).map(String::as_str).unwrap_or("data"));
            match adult::loader::load_uci_dir(dir).expect("loading UCI files") {
                Some(d) => {
                    println!("using real UCI Adult data from {}", dir.display());
                    d
                }
                None => {
                    eprintln!(
                        "UCI files not found in {}; falling back to synthetic",
                        dir.display()
                    );
                    synth::generate_default().expect("synthetic generation")
                }
            }
        }
        None => synth::generate_default().expect("synthetic generation"),
    };

    print_header(
        "Table 2: eps-EDF of the Adult dataset (training set, Eq. 6)",
        &format!(
            "protected = race x gender x nationality; N = {} train rows",
            dataset.train.n_rows()
        ),
    );

    let prepared = dataset.with_protected().expect("protected prep");
    let counts_table = prepared
        .train
        .contingency(&["income", "race_m", "gender", "nationality"])
        .expect("contingency");
    let counts = JointCounts::from_table(counts_table, "income").expect("joint counts");
    let report = Audit::of(&counts)
        .estimator(Empirical)
        .subsets(SubsetPolicy::All)
        .run()
        .expect("audit");
    let audit = report.estimator("eps-EDF").expect("estimator column");

    // Paper rows in Table 2's order, with the matching subset lookups.
    let paper_rows: [(&str, &[&str], f64); 7] = [
        ("nationality", &["nationality"], 0.219),
        ("race", &["race_m"], 0.930),
        ("gender", &["gender"], 1.03),
        ("gender, nationality", &["gender", "nationality"], 1.16),
        ("race, nationality", &["race_m", "nationality"], 1.21),
        ("race, gender", &["race_m", "gender"], 1.76),
        (
            "race, gender, nationality",
            &["race_m", "gender", "nationality"],
            2.14,
        ),
    ];

    let mut comparisons = Vec::new();
    for (label, attrs, paper) in paper_rows {
        let eps = audit
            .get(attrs)
            .expect("subset present in audit")
            .result
            .epsilon;
        comparisons.push(Comparison::new(label, paper, eps));
    }
    println!(
        "{}",
        render_comparisons("Table 2: eps-EDF per subset", &comparisons)
    );

    // Ground-truth (population) values of the calibrated generator.
    println!("calibrated population ground truth (sampling-free):");
    for (mask, target) in calibration::TABLE2_TARGETS {
        println!(
            "  mask {:03b}: model {:.3} (paper {:.3})",
            mask,
            calibration::population_epsilon(mask),
            target
        );
    }

    // Theorem 3.2 check on the measured audit (the builder performs it as
    // part of the full-lattice policy); tightness from the same column.
    let violations = report.bound_violations.as_ref().expect("full lattice");
    println!(
        "\nTheorem 3.2 bound (subset eps <= 2 x full eps): {}",
        if violations.is_empty() {
            "holds for all 7 subsets".to_string()
        } else {
            format!("VIOLATED by {} subsets", violations.len())
        }
    );
    let full = audit.result.epsilon;
    if full > 0.0 && full.is_finite() {
        let tightness = audit.subsets[..audit.subsets.len() - 1]
            .iter()
            .map(|s| s.result.epsilon / full)
            .fold(f64::NEG_INFINITY, f64::max);
        println!(
            "bound tightness (max subset eps / full eps): {tightness:.3} (theorem allows 2.0)"
        );
    }

    let worst = comparisons
        .iter()
        .map(Comparison::abs_error)
        .fold(0.0f64, f64::max);
    println!("\nworst |delta| vs paper: {worst:.3}");
}
