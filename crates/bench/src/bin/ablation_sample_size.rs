//! Ablation C: sampling error of the EDF estimator vs dataset size.
//!
//! Draws iid synthetic-Adult samples of increasing size and measures the
//! plug-in ε̂ of Eq. 6 against the known population ε (2.135 for the full
//! race × gender × nationality intersection). Shows the upward bias of the
//! max-of-ratios estimator at small N, its decay, and how Eq. 7 smoothing
//! (α = 1) tempers it — quantifying why the quota-allocated default
//! generator is used for the Table 2 reproduction.
//!
//! Run with `cargo run -p df-bench --release --bin ablation_sample_size`.

use df_core::bootstrap::bootstrap_epsilon;
use df_core::report::{fmt_epsilon, Align, TextTable};
use df_core::JointCounts;
use df_data::adult::calibration;
use df_data::adult::synth::{self, CellAllocation, SynthConfig};
use df_prob::rng::Pcg32;
use df_prob::summary::RunningMoments;

fn counts_at(n: usize, seed: u64) -> JointCounts {
    let d = synth::generate(&SynthConfig {
        seed,
        n_train: n,
        n_test: 16,
        allocation: CellAllocation::Iid,
    })
    .expect("generation")
    .with_protected()
    .expect("protected prep");
    JointCounts::from_table(
        d.train
            .contingency(&["income", "race_m", "gender", "nationality"])
            .expect("contingency"),
        "income",
    )
    .expect("joint counts")
}

fn epsilon_at(n: usize, seed: u64, alpha: f64) -> f64 {
    counts_at(n, seed)
        .edf_smoothed(alpha)
        .expect("epsilon")
        .epsilon
}

fn main() {
    let truth = calibration::population_epsilon(0b111);
    df_bench::print_header(
        "Ablation C: sampling error of eps-EDF vs dataset size",
        &format!("population truth eps = {truth:.3} (full intersection); 12 seeds per N"),
    );

    let sizes = [500usize, 2_000, 8_000, 32_561, 130_000, 520_000];
    let mut table = TextTable::new(&[
        "N",
        "mean eps (Eq.6)",
        "sd",
        "#inf",
        "boot 90% UB (Eq.6)",
        "#inf reps",
        "mean eps (Eq.7, a=1)",
        "sd",
        "bias vs truth",
    ])
    .align(&[
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);

    let mut rng = Pcg32::new(0xC0DE);
    for &n in &sizes {
        let mut raw = RunningMoments::new();
        let mut infinite = 0usize;
        let mut smoothed = RunningMoments::new();
        let mut first_seed = None;
        for _ in 0..12 {
            let seed = rng.next_u32_raw() as u64;
            first_seed.get_or_insert(seed);
            let e_raw = epsilon_at(n, seed, 0.0);
            if e_raw.is_finite() {
                raw.push(e_raw);
            } else {
                infinite += 1;
            }
            smoothed.push(epsilon_at(n, seed, 1.0));
        }
        // Bootstrap the plug-in estimator on the first replicate dataset.
        // The percentile interval ranks the full replicate multiset with
        // +inf ordered last, so the upper bound honestly reports `inf`
        // whenever infinite replicates reach into the upper tail — the
        // sparse-N rows below show exactly that.
        let mut boot_rng = Pcg32::new(first_seed.unwrap_or(1));
        let boot = bootstrap_epsilon(
            &counts_at(n, first_seed.unwrap_or(1)),
            0.0,
            200,
            0.9,
            &mut boot_rng,
        )
        .expect("bootstrap");
        table.row(&[
            format!("{n}"),
            format!("{:.3}", raw.mean()),
            format!("{:.3}", raw.std_dev()),
            format!("{infinite}"),
            fmt_epsilon(boot.interval.1),
            format!("{}", boot.infinite_replicates),
            format!("{:.3}", smoothed.mean()),
            format!("{:.3}", smoothed.std_dev()),
            format!("{:+.3}", smoothed.mean() - truth),
        ]);
    }
    println!("{}", table.render());

    println!("reading:");
    println!("- the plug-in estimator overshoots the population eps at small N:");
    println!("  the max over 16 intersections of noisy log-ratios is biased up;");
    println!("- the bootstrap upper bound reports `inf` whenever infinite");
    println!("  replicates (rare-cell dropout) reach into the upper tail —");
    println!("  rather than a finite bound computed as if they never happened;");
    println!("- smoothing reduces both the bias and the variance, at the cost of");
    println!("  shrinking large-N estimates slightly below truth;");
    println!("- at the paper's N = 32,561 the residual bias of the iid estimator");
    println!("  motivates the quota-allocated default generator used by table2");
    println!("  (which matches the population joint by construction).");
}
