//! Reproduces Table 3 of the paper: differential fairness of a logistic
//! regression on Adult as a function of which sensitive attributes are used
//! as features, with Dirichlet smoothing α = 1 (Eq. 7), plus bias
//! amplification against the test data's ε and the test error rate.
//!
//! Run with `cargo run -p df-bench --release --bin table3`.

use df_core::amplification::BiasAmplification;
use df_core::builder::{Audit, Smoothed, SubsetPolicy};
use df_core::report::{Align, TextTable};
use df_core::JointCounts;
use df_data::adult::synth;
use df_data::frame::{Column, DataFrame};
use df_learn::logistic::LogisticConfig;
use df_learn::pipeline::{run_feature_selection, table3_sensitive_sets, ADULT_BASE_FEATURES};

/// Paper rows: (label, test ε-DF of the classifier, amplification, error %).
const PAPER_ROWS: [(&str, f64, f64, f64); 8] = [
    ("none", 2.14, 0.074, 14.90),
    ("nationality", 1.95, -0.12, 14.92),
    ("race", 2.65, 0.59, 15.18),
    ("gender", 2.14, 0.074, 14.99),
    ("gender, nationality", 2.59, 0.53, 15.09),
    ("race, nationality", 2.58, 0.52, 15.17),
    ("race, gender", 2.71, 0.64, 15.01),
    ("race, gender, nationality", 2.65, 0.59, 15.21),
];

/// ε of a prediction column tallied against the protected intersections,
/// with α = 1 smoothing as in the paper's Table 3.
fn prediction_epsilon(frame: &DataFrame, predictions: &[f64], alpha: f64) -> f64 {
    let labels: Vec<&str> = predictions
        .iter()
        .map(|&p| if p >= 0.5 { "pred>50K" } else { "pred<=50K" })
        .collect();
    let mut with_preds = frame.clone();
    with_preds
        .add_column(Column::categorical("prediction", &labels))
        .expect("fresh column");
    let table = with_preds
        .contingency(&["prediction", "race_m", "gender", "nationality"])
        .expect("contingency");
    let counts = JointCounts::from_table(table, "prediction").expect("joint counts");
    Audit::of_counts(counts)
        .expect("finite counts")
        .estimator(Smoothed { alpha })
        .subsets(SubsetPolicy::None)
        .run()
        .expect("audit")
        .epsilon
        .epsilon
}

fn main() {
    df_bench::print_header(
        "Table 3: DF of logistic regression vs. sensitive features used",
        "train 32,561 / test 16,281 synthetic-Adult rows; alpha = 1 smoothing (Eq. 7)",
    );

    let dataset = synth::generate_default()
        .expect("synthetic generation")
        .with_protected()
        .expect("protected prep");

    // ε of the test data itself (Definition 4.2 + Eq. 7), the paper's
    // amplification reference: "The test dataset was eps = 2.06-DF."
    let test_counts = JointCounts::from_table(
        dataset
            .test
            .contingency(&["income", "race_m", "gender", "nationality"])
            .expect("contingency"),
        "income",
    )
    .expect("joint counts");
    let test_data_eps = test_counts.edf_smoothed(1.0).expect("epsilon").epsilon;
    println!("test dataset eps-DF (alpha = 1): {test_data_eps:.3}   (paper: 2.06)\n");

    let mut table = TextTable::new(&[
        "sensitive features used",
        "eps-DF",
        "paper",
        "amplif.",
        "paper",
        "error %",
        "paper",
    ])
    .align(&[
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);

    let config = LogisticConfig::default();
    for (set, (label, paper_eps, paper_amp, paper_err)) in
        table3_sensitive_sets().into_iter().zip(PAPER_ROWS)
    {
        let run = run_feature_selection(
            &dataset.train,
            &dataset.test,
            &ADULT_BASE_FEATURES,
            &set,
            "income",
            ">50K",
            &config,
        )
        .expect("feature-selection run");
        let eps = prediction_epsilon(&dataset.test, &run.test_predictions, 1.0);
        let amp = BiasAmplification::new(eps, test_data_eps);
        table.row(&[
            label.to_string(),
            format!("{eps:.2}"),
            format!("{paper_eps:.2}"),
            format!("{:+.2}", amp.delta()),
            format!("{paper_amp:+.2}"),
            format!("{:.2}", run.error_rate * 100.0),
            format!("{paper_err:.2}"),
        ]);
    }
    println!("{}", table.render());
    println!("note: absolute values depend on the synthetic feature model;");
    println!("the paper-shape checks are (i) all eps within the 1.9-2.8 band,");
    println!("(ii) adding race increases eps over the none-row, (iii) error");
    println!("rates in the ~15% band. See EXPERIMENTS.md for the comparison.");
}
