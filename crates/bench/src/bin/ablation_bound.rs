//! Ablation B: tightness of the Theorem 3.1/3.2 factor-2 bound.
//!
//! The paper proves ε_subset ≤ 2 ε_full for every nonempty proper subset of
//! the protected attributes. This ablation measures how tight that is in
//! practice — and empirically confirms a *sharper* fact: for exact
//! (count-weighted) marginalization the ratio never exceeds 1. The reason
//! is convexity: `P(y | D) = Σ_E P(y | E, D) P(E | D)` is a convex
//! combination of full-intersection conditionals, all of which lie within a
//! factor `e^ε` of each other for the same outcome, so the marginal ratio is
//! bounded by `e^ε` directly. The paper's factor 2 comes from bounding the
//! numerator and denominator against a shared anchor cell, which is looser.
//!
//! Run with `cargo run -p df-bench --release --bin ablation_bound`.

use df_core::subsets::subset_audit;
use df_core::JointCounts;
use df_data::workloads::random_joint_counts;
use df_prob::contingency::{Axis, ContingencyTable};
use df_prob::rng::Pcg32;
use df_prob::summary::RunningMoments;

fn main() {
    df_bench::print_header(
        "Ablation B: tightness of the 2*eps subset bound (Theorem 3.2)",
        "2000 random joint tables over outcome x 2 x 3 x 2 attributes",
    );

    let mut rng = Pcg32::new(0xB0BD);
    let mut tightness = RunningMoments::new();
    let mut violations_2eps = 0usize;
    let mut violations_1eps = 0usize;
    for _ in 0..2000 {
        let table = random_joint_counts(&mut rng, 2, &[2, 3, 2], 400).expect("workload");
        let jc = JointCounts::from_table(table, "outcome").expect("joint counts");
        let audit = subset_audit(&jc, 0.0).expect("audit");
        violations_2eps += audit.verify_bound(1e-9).len();
        if let Some(t) = audit.bound_tightness() {
            tightness.push(t);
            if t > 1.0 + 1e-9 {
                violations_1eps += 1;
            }
        }
    }
    println!("violations of the paper's 2*eps bound: {violations_2eps} (theorem guarantees 0)");
    println!("violations of the sharpened 1*eps bound: {violations_1eps} (convexity predicts 0)");
    println!(
        "tightness eps_subset / eps_full: mean {:.3}, sd {:.3}, max {:.4}",
        tightness.mean(),
        tightness.std_dev(),
        tightness.max()
    );
    println!(
        "\nrandom tables sit well below even the sharpened bound: marginalization\n\
         averages per-cell disparities, so subsets are usually *fairer* than the\n\
         full intersection.\n"
    );

    // A family that approaches the sharpened bound (ratio -> 1): skew the
    // conditional P(s2 | s1) so each marginal rides its extreme cell.
    println!("adversarial family (skew -> 1 approaches ratio = 1):");
    for &skew in &[0.5, 0.8, 0.9, 0.99, 0.999] {
        let jc = adversarial_table(0.02, skew);
        let audit = subset_audit(&jc, 0.0).expect("audit");
        let full = audit.full_intersection().result.epsilon;
        let t = audit.bound_tightness().expect("nontrivial");
        println!("  skew = {skew:<6}: eps_full = {full:.4}, max eps_subset/eps_full = {t:.4}");
    }
    println!(
        "\nconclusion: Theorem 3.2's factor 2 is safe but loose for empirical\n\
         marginals; the attainable worst case is the factor 1 of the convexity\n\
         argument (see df-core::subsets docs), and Table-1-like real data sits\n\
         far below even that."
    );
}

/// Joint where each S1 value concentrates its S2-conditional mass on the
/// cell carrying its extreme outcome rate, driving the S1 marginal toward
/// the full-intersection extremes.
fn adversarial_table(base_rate: f64, skew: f64) -> JointCounts {
    let g: f64 = 1.0;
    let hi = base_rate * (g / 2.0).exp();
    let mid = base_rate;
    let lo = base_rate * (-g / 2.0).exp();
    let total = 1_000_000.0;
    let cells = [
        // (s1, s2, mass, positive rate): s1 = a concentrates on its extreme
        // cell (a, u) with rate hi; s1 = b on (b, v) with rate lo. The
        // off-cells carry the middle rate, so no marginal is trivially at an
        // extreme — only the skew pushes it there.
        (0usize, 0usize, 0.5 * skew, hi),
        (0, 1, 0.5 * (1.0 - skew), mid),
        (1, 0, 0.5 * (1.0 - skew), mid),
        (1, 1, 0.5 * skew, lo),
    ];
    let axes = vec![
        Axis::from_strs("y", &["0", "1"]).expect("axes"),
        Axis::from_strs("s1", &["a", "b"]).expect("axes"),
        Axis::from_strs("s2", &["u", "v"]).expect("axes"),
    ];
    let mut table = ContingencyTable::zeros(axes).expect("table");
    for (s1, s2, mass, rate) in cells {
        table.add(&[1, s1, s2], total * mass * rate);
        table.add(&[0, s1, s2], total * mass * (1.0 - rate));
    }
    JointCounts::from_table(table, "y").expect("joint counts")
}
