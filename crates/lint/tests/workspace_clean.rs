//! Self-check: the shipped tree lints clean. This is the acceptance
//! gate in test form — if a PR introduces an unsuppressed violation,
//! this test (and the CI `df-lint --workspace` step) both fail.

use df_lint::{lint_workspace, render, Format};
use std::path::Path;

#[test]
fn shipped_workspace_has_zero_unsuppressed_violations() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = lint_workspace(&root, &[]).expect("workspace walk");
    assert!(
        report.files > 50,
        "walked only {} files — workspace layout changed?",
        report.files
    );
    assert!(
        report.violations.is_empty(),
        "df-lint must be clean on the shipped tree:\n{}",
        render(&report, Format::Text)
    );
    // Every suppression in the tree carries a justification (unjustified
    // pragmas would have surfaced as pragma-hygiene violations above);
    // the count is pinned loosely so new justified pragmas don't churn
    // this test, but wholesale pragma deletion/addition is visible.
    assert!(
        report.suppressed >= 10 && report.suppressed <= 40,
        "suppression count {} drifted far from the audited set — re-audit LINTS.md",
        report.suppressed
    );
}
