//! Golden-fixture suite: proves every rule fires on its violating
//! fixture, stays silent on the clean one, is silenced by a justified
//! pragma, and treats an unjustified pragma as no suppression at all
//! (plus a `pragma-hygiene` finding).
//!
//! Each fixture is linted under a *virtual* in-scope path via
//! [`df_lint::lint_source`], so path-scoped rules (server request path,
//! codec decode path, df-core) see the path they police — the files on
//! disk under `tests/fixtures/` are never walked by `--workspace`.

use df_lint::{lint_source, Report};

fn count(report: &Report, rule: &str) -> usize {
    report.violations.iter().filter(|v| v.rule == rule).count()
}

/// Runs the four-fixture contract for one rule at one virtual path.
fn check_rule(rule: &str, path: &str, fixtures: [&str; 4]) {
    let [violating, clean, suppressed, missing] = fixtures;

    let v = lint_source(path, violating, &[]);
    assert!(
        count(&v, rule) >= 1,
        "{rule}: violating fixture must fire; got {:?}",
        v.violations
    );
    assert_eq!(
        count(&v, "pragma-hygiene"),
        0,
        "{rule}: violating fixture has no pragmas to get wrong"
    );

    let c = lint_source(path, clean, &[]);
    assert!(
        c.violations.is_empty(),
        "{rule}: clean fixture must be silent under every rule; got {:?}",
        c.violations
    );

    let s = lint_source(path, suppressed, &[]);
    assert_eq!(
        count(&s, rule),
        0,
        "{rule}: justified pragma must suppress; got {:?}",
        s.violations
    );
    assert!(
        s.suppressed >= 1,
        "{rule}: suppression must be counted, not silently dropped"
    );
    assert_eq!(
        count(&s, "pragma-hygiene"),
        0,
        "{rule}: a justified pragma is hygienic"
    );

    let m = lint_source(path, missing, &[]);
    assert!(
        count(&m, rule) >= 1,
        "{rule}: unjustified pragma must NOT suppress; got {:?}",
        m.violations
    );
    assert!(
        count(&m, "pragma-hygiene") >= 1,
        "{rule}: unjustified pragma is itself a violation; got {:?}",
        m.violations
    );
}

macro_rules! fixture {
    ($rule:literal, $name:literal) => {
        include_str!(concat!("fixtures/", $rule, "/", $name, ".rs"))
    };
}

macro_rules! fixture_set {
    ($rule:literal) => {
        [
            fixture!($rule, "violating"),
            fixture!($rule, "clean"),
            fixture!($rule, "suppressed"),
            fixture!($rule, "missing_justification"),
        ]
    };
}

#[test]
fn no_panic_path_fixtures() {
    check_rule(
        "no-panic-path",
        "crates/server/src/http.rs",
        fixture_set!("no-panic-path"),
    );
}

#[test]
fn no_wall_clock_fixtures() {
    check_rule(
        "no-wall-clock",
        "crates/core/src/fleet/ingest.rs",
        fixture_set!("no-wall-clock"),
    );
}

#[test]
fn typed_errors_only_fixtures() {
    check_rule(
        "typed-errors-only",
        "crates/core/src/lib.rs",
        fixture_set!("typed-errors-only"),
    );
}

#[test]
fn no_lossy_cast_fixtures() {
    check_rule(
        "no-lossy-cast",
        "crates/core/src/fleet/codec.rs",
        fixture_set!("no-lossy-cast"),
    );
}

#[test]
fn no_float_eq_fixtures() {
    check_rule(
        "no-float-eq",
        "crates/core/src/edf.rs",
        fixture_set!("no-float-eq"),
    );
}

#[test]
fn counts_via_monoid_fixtures() {
    check_rule(
        "counts-via-monoid",
        "crates/core/src/monitor/snapshot.rs",
        fixture_set!("counts-via-monoid"),
    );
}

#[test]
fn must_use_results_fixtures() {
    check_rule(
        "must-use-results",
        "crates/core/src/lib.rs",
        fixture_set!("must-use-results"),
    );
}

#[test]
fn bounded_alloc_decode_fixtures() {
    check_rule(
        "bounded-alloc-decode",
        "crates/core/src/fleet/codec.rs",
        fixture_set!("bounded-alloc-decode"),
    );
}

// `pragma-hygiene` is the meta-rule: it has no "suppressed" variant
// because hygiene findings are never pragma-suppressible by design.
#[test]
fn pragma_hygiene_fixtures() {
    let v = lint_source(
        "crates/core/src/lib.rs",
        fixture!("pragma-hygiene", "violating"),
        &[],
    );
    // Three distinct sins: missing justification, unknown rule name,
    // empty allow list.
    assert_eq!(count(&v, "pragma-hygiene"), 3, "got {:?}", v.violations);

    let c = lint_source(
        "crates/server/src/http.rs",
        fixture!("pragma-hygiene", "clean"),
        &[],
    );
    assert!(
        c.violations.is_empty(),
        "a well-formed justified pragma is hygienic; got {:?}",
        c.violations
    );
    assert_eq!(c.suppressed, 1, "and its suppression is counted");
}

/// A pragma cannot excuse its own hygiene violation: even
/// `allow(pragma-hygiene)` with a justification does not silence the
/// finding about a *different* malformed pragma, and an unjustified one
/// still fires on itself.
#[test]
fn pragma_hygiene_is_never_suppressible() {
    let src = "pub fn f() -> u32 {\n    // df-lint: allow(pragma-hygiene)\n    0\n}\n";
    let r = lint_source("crates/core/src/lib.rs", src, &[]);
    assert_eq!(count(&r, "pragma-hygiene"), 1, "got {:?}", r.violations);
    assert_eq!(r.suppressed, 0);
}

/// `--rule` filtering applies to fixtures the same way the CLI does.
#[test]
fn rule_filter_isolates_one_rule() {
    let src = fixture!("no-panic-path", "violating");
    let only = lint_source(
        "crates/server/src/http.rs",
        src,
        &["no-wall-clock".to_string()],
    );
    assert!(only.violations.is_empty());
    let hit = lint_source(
        "crates/server/src/http.rs",
        src,
        &["no-panic-path".to_string()],
    );
    assert!(!hit.violations.is_empty());
}

/// Scoping: the same violating source outside a rule's scope is silent.
#[test]
fn out_of_scope_paths_are_silent() {
    // Wall-clock reads are fine outside df-core (e.g. the server).
    let wall = fixture!("no-wall-clock", "violating");
    let r = lint_source("crates/server/src/lib.rs", wall, &[]);
    assert_eq!(count(&r, "no-wall-clock"), 0, "got {:?}", r.violations);

    // Narrowing casts are fine outside the codec decode path.
    let cast = fixture!("no-lossy-cast", "violating");
    let r = lint_source("crates/core/src/edf.rs", cast, &[]);
    assert_eq!(count(&r, "no-lossy-cast"), 0, "got {:?}", r.violations);

    // Float-eq is allowed inside the approved numerics module.
    let feq = fixture!("no-float-eq", "violating");
    let r = lint_source("crates/prob/src/numerics.rs", feq, &[]);
    assert_eq!(count(&r, "no-float-eq"), 0, "got {:?}", r.violations);
}

/// df-obs is in the wall-clock scope: a bare clock read anywhere in the
/// crate fires, and only the audited `Clock` seam pragma silences it.
#[test]
fn obs_crate_is_in_wall_clock_scope() {
    let wall = fixture!("no-wall-clock", "violating");
    let r = lint_source("crates/obs/src/metrics.rs", wall, &[]);
    assert!(count(&r, "no-wall-clock") > 0, "got {:?}", r.violations);

    let seam = "pub fn origin() -> Instant {\n    \
        // df-lint: allow(no-wall-clock) -- the audited Clock seam: telemetry durations only\n    \
        Instant::now()\n}\n";
    let r = lint_source("crates/obs/src/clock.rs", seam, &[]);
    assert_eq!(count(&r, "no-wall-clock"), 0, "got {:?}", r.violations);
    assert_eq!(r.suppressed, 1);
}
