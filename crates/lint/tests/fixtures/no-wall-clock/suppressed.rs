//! Fixture: a standalone justified pragma governs the next code line.
use std::time::Instant;

pub fn deadline_seam() -> Instant {
    // df-lint: allow(no-wall-clock) -- thread-liveness timeout only; never feeds the fairness clock
    Instant::now()
}
