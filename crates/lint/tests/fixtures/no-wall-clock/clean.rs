//! Fixture: caller-supplied timestamps are the approved pattern.
pub fn advance(now_seconds: f64, last: f64) -> f64 {
    now_seconds.max(last)
}
