//! Fixture: unjustified pragma -> finding stays, plus pragma-hygiene.
use std::time::Instant;

pub fn deadline_seam() -> Instant {
    // df-lint: allow(no-wall-clock)
    Instant::now()
}
