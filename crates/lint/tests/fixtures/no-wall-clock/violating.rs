//! Fixture: wall-clock reads in df-core.
use std::time::{Instant, SystemTime};

pub fn now_pair() -> (Instant, SystemTime) {
    (Instant::now(), SystemTime::now())
}
