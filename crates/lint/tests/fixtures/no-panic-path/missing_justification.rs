//! Fixture: a pragma without a justification suppresses nothing.
pub fn f(x: Option<u32>) -> u32 {
    x.unwrap() // df-lint: allow(no-panic-path)
}
