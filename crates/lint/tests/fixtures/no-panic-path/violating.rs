//! Fixture: every shape the rule must catch on the request path.
pub fn f(x: Option<u32>, buf: &[u8], i: usize) -> u32 {
    let a = x.unwrap();
    let b = x.expect("present");
    if i > buf.len() {
        panic!("out of range");
    }
    a + b + u32::from(buf[i])
}
