//! Fixture: the approved alternatives do not fire.
pub fn f(x: Option<u32>, buf: &[u8], i: usize) -> u32 {
    let a = x.unwrap_or(0);
    let b = buf.get(i).copied().unwrap_or_default();
    a + u32::from(b)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
