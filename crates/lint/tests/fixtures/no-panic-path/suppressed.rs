//! Fixture: a justified pragma suppresses the finding.
pub fn f(x: Option<u32>) -> u32 {
    x.unwrap() // df-lint: allow(no-panic-path) -- caller validated x above; absence is a programmer error, not input
}
