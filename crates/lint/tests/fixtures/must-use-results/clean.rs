//! Fixture: write! into a String is the approved discard.
use std::fmt::Write as _;

pub fn f(s: &mut String) {
    let _ = write!(s, "formatted");
    let _ = writeln!(s, "formatted");
}
