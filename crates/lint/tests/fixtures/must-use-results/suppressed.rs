//! Fixture: justified discard.
pub fn f(r: Result<u32, u32>) {
    // df-lint: allow(must-use-results) -- the receiver is gone; there is no one left to tell
    let _ = r;
}
