//! Fixture: silent discards.
pub fn f(r: Result<u32, u32>) {
    let _ = r;
}
