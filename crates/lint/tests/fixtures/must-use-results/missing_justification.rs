//! Fixture: unjustified pragma suppresses nothing.
pub fn f(r: Result<u32, u32>) {
    // df-lint: allow(must-use-results)
    let _ = r;
}
