//! Fixture: unjustified pragma suppresses nothing.
pub fn decode(n_cells: usize) -> Vec<f64> {
    // df-lint: allow(bounded-alloc-decode)
    Vec::with_capacity(n_cells)
}
