//! Fixture: allocations bounded by held data or literals.
pub struct R {
    buf: Vec<u8>,
}

impl R {
    fn remaining(&self) -> usize {
        self.buf.len()
    }
}

pub fn decode(r: &R) -> Vec<u8> {
    let n = r.remaining();
    let mut v: Vec<u8> = Vec::with_capacity(n.min(1024));
    v.reserve(r.buf.len());
    let fixed: Vec<u8> = Vec::with_capacity(64);
    v.extend(fixed);
    v
}
