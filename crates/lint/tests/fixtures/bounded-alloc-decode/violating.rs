//! Fixture: allocation sized by a raw decoded value.
pub fn decode(raw_header_count: usize) -> Vec<u8> {
    let mut v = Vec::with_capacity(raw_header_count);
    v.reserve(raw_header_count);
    v
}
