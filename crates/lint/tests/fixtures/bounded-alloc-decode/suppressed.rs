//! Fixture: justified pragma on an out-of-band-bounded allocation.
pub fn decode(n_cells: usize) -> Vec<f64> {
    // df-lint: allow(bounded-alloc-decode) -- n_cells rejected against remaining() by the caller; each cell costs >= 1 wire byte
    Vec::with_capacity(n_cells)
}
