//! Fixture: a justified pragma for a provably-masked cast.
pub fn low_byte(v: u64) -> u8 {
    // df-lint: allow(no-lossy-cast) -- masked to 7 bits on the previous line; cannot lose information
    (v & 0x7f) as u8
}
