//! Fixture: try_from and widening casts pass.
pub fn widen(v: u32, w: u64) -> (u64, f64, Option<u32>) {
    (u64::from(v), w as f64, u32::try_from(w).ok())
}
