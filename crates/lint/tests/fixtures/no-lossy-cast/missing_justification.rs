//! Fixture: unjustified pragma suppresses nothing.
pub fn low_byte(v: u64) -> u8 {
    // df-lint: allow(no-lossy-cast)
    (v & 0x7f) as u8
}
