//! Fixture: narrowing casts in the decode path.
pub fn narrow(v: u64) -> (usize, u32, u8) {
    (v as usize, v as u32, v as u8)
}
