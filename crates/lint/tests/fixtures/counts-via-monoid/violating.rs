//! Fixture: direct cell-count arithmetic outside the monoid.
pub fn merge(data: &mut [f64], other: &[f64]) {
    for (dst, src) in data.iter_mut().zip(other) {
        *dst += src;
    }
}
