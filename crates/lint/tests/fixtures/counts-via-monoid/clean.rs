//! Fixture: non-count arithmetic does not fire.
pub fn accumulate(total: &mut f64, xs: &[f64]) {
    for x in xs {
        *total += x;
    }
}
