//! Fixture: unjustified pragma suppresses nothing.
pub fn merge(data: &mut [f64], other: &[f64]) {
    for (dst, src) in data.iter_mut().zip(other) {
        // df-lint: allow(counts-via-monoid)
        *dst += src;
    }
}
