//! Fixture: the wire-level merge carries a justified pragma.
pub fn merge(data: &mut [f64], other: &[f64]) {
    for (dst, src) in data.iter_mut().zip(other) {
        // df-lint: allow(counts-via-monoid) -- this IS the wire-level monoid op; lengths validated by the caller
        *dst += src;
    }
}
