//! Fixture: typed error enums pass.
pub enum DfError {
    Invalid(String),
}

pub fn parse(s: &str) -> Result<u32, DfError> {
    Err(DfError::Invalid(s.to_string()))
}
