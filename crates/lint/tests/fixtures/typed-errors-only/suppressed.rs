//! Fixture: justified pragma on a deliberate string-typed boundary.
pub fn shim(s: &str) -> Result<u32, String> { // df-lint: allow(typed-errors-only) -- ffi boundary demands a bare string; converted at the caller
    let _ignored = s;
    Ok(0)
}
