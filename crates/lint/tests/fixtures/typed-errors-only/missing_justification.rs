//! Fixture: unjustified pragma suppresses nothing.
pub fn shim(s: &str) -> Result<u32, String> { // df-lint: allow(typed-errors-only)
    let _ignored = s;
    Ok(0)
}
