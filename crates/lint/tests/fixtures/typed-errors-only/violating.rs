//! Fixture: stringly-typed errors.
pub fn parse(s: &str) -> Result<u32, String> {
    if s.is_empty() {
        return Err("empty input".to_string());
    }
    Err(format!("cannot parse `{s}`"))
}
