//! Fixture: justified pragma for a deliberate sentinel comparison.
pub fn is_sentinel(x: f64) -> bool {
    x == -1.0 // df-lint: allow(no-float-eq) -- -1.0 is an exact sentinel written by us, never computed
}
