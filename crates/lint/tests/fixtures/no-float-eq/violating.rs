//! Fixture: exact comparisons against float literals and consts.
pub fn checks(a: f64, b: f64) -> bool {
    a == 0.0 || b != 1.5 || a == f64::INFINITY || 2.0 == b || a == -1.0
}
