//! Fixture: named helpers and non-literal comparisons pass.
fn exactly_zero(x: f64) -> bool {
    x.abs() < f64::EPSILON
}

pub fn checks(a: f64, b: f64) -> bool {
    exactly_zero(a) || (a - b).abs() < 1e-9 || a < 0.5
}
