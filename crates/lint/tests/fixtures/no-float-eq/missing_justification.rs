//! Fixture: unjustified pragma suppresses nothing.
pub fn is_sentinel(x: f64) -> bool {
    x == -1.0 // df-lint: allow(no-float-eq)
}
