//! Fixture: a well-formed justified pragma is hygienic.
pub fn f(x: Option<u32>) -> u32 {
    x.unwrap() // df-lint: allow(no-panic-path) -- fixture: input is a compile-time constant
}
