//! Fixture: malformed pragmas are themselves violations.
pub fn f(x: Option<u32>) -> u32 {
    // df-lint: allow(no-panic-path)
    let a = x.unwrap_or(0);
    // df-lint: allow(not-a-real-rule) -- justification present but the rule does not exist
    let b = a + 1;
    // df-lint: allow() -- allows nothing
    a + b
}
