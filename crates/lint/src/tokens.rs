//! A hand-rolled Rust lexer, just deep enough for rule matching.
//!
//! The rules only ever look at *code* tokens — identifiers, literals,
//! punctuation — with comments and doc comments lifted out separately
//! (comments are where pragmas live, and doc-example code must never
//! trigger a rule). String and char literals are parsed precisely so a
//! `"panic!"` inside a message can never be mistaken for the macro, and
//! raw strings / nested block comments are handled because the codebase
//! uses both.

/// What a code token is; the rules mostly switch on this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unwrap`, `as`, `_`, …).
    Ident,
    /// Integer or float literal (including suffixed forms).
    Number,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Char or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Punctuation, greedily grouped (`==`, `+=`, `::`, `->`, single chars).
    Punct,
}

/// One code token with its source line (1-based).
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Exact source text.
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

impl Tok {
    /// Whether this token is the given identifier.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// Whether this token is the given punctuation.
    pub fn is_punct(&self, p: &str) -> bool {
        self.kind == TokKind::Punct && self.text == p
    }

    /// Whether this token is a *float* literal (`1.0`, `2e-3`, `1f64`).
    pub fn is_float(&self) -> bool {
        if self.kind != TokKind::Number {
            return false;
        }
        let t = self.text.as_str();
        if t.starts_with("0x") || t.starts_with("0o") || t.starts_with("0b") {
            return false;
        }
        t.contains('.')
            || t.contains("f32")
            || t.contains("f64")
            || t.contains('e')
            || t.contains('E')
    }
}

/// One comment, with enough context to interpret pragmas.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text without the `//` / `/* */` markers, trimmed.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Whether any code token precedes the comment on its line
    /// (a trailing comment governs its own line; a standalone one
    /// governs the next code line).
    pub trailing: bool,
}

/// Tokenized source: code tokens plus the comment stream.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in order.
    pub tokens: Vec<Tok>,
    /// Comments in order.
    pub comments: Vec<Comment>,
}

/// Multi-char punctuation recognized greedily, longest first.
const PUNCTS: &[&str] = &[
    "..=", "<<=", ">>=", "==", "!=", "<=", ">=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "::", "->", "=>", "..", "&&", "||", "<<", ">>",
];

/// Lexes Rust source. Unterminated literals are tolerated (the rest of
/// the file lexes as best-effort) — the linter must never panic on the
/// code it audits.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    // Tracks whether any code token has been seen on the current line.
    let mut code_on_line = false;

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                code_on_line = false;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i + 2;
                let mut j = start;
                while j < b.len() && b[j] != b'\n' {
                    j += 1;
                }
                let raw = &src[start..j];
                // Doc markers (`///`, `//!`) are still comments.
                let text = raw.trim_start_matches(['/', '!']).trim().to_string();
                out.comments.push(Comment {
                    text,
                    line,
                    trailing: code_on_line,
                });
                i = j;
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start_line = line;
                let start = i + 2;
                let mut depth = 1usize;
                let mut j = start;
                while j < b.len() && depth > 0 {
                    if b[j] == b'\n' {
                        line += 1;
                        j += 1;
                    } else if b[j] == b'/' && j + 1 < b.len() && b[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if b[j] == b'*' && j + 1 < b.len() && b[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                let end = j.saturating_sub(2).max(start);
                out.comments.push(Comment {
                    text: src[start..end].trim().to_string(),
                    line: start_line,
                    trailing: code_on_line,
                });
                i = j;
            }
            b'"' => {
                let (text, nl, j) = lex_string(src, i, 0);
                out.tokens.push(Tok {
                    kind: TokKind::Str,
                    text,
                    line,
                });
                line += nl;
                code_on_line = true;
                i = j;
            }
            b'r' | b'b' if starts_raw_or_byte_string(b, i) => {
                let hashes_at = i + prefix_len(b, i);
                let hashes = count_hashes(b, hashes_at);
                let (text, nl, j) = lex_string(src, i, hashes);
                out.tokens.push(Tok {
                    kind: TokKind::Str,
                    text,
                    line,
                });
                line += nl;
                code_on_line = true;
                i = j;
            }
            b'b' if i + 1 < b.len() && b[i + 1] == b'\'' => {
                let j = lex_char(b, i + 1);
                out.tokens.push(Tok {
                    kind: TokKind::Char,
                    text: src[i..j].to_string(),
                    line,
                });
                code_on_line = true;
                i = j;
            }
            b'\'' => {
                // Lifetime or char literal.
                let (kind, j) = lifetime_or_char(b, i);
                out.tokens.push(Tok {
                    kind,
                    text: src[i..j].to_string(),
                    line,
                });
                code_on_line = true;
                i = j;
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                let mut j = i + 1;
                while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
                    j += 1;
                }
                out.tokens.push(Tok {
                    kind: TokKind::Ident,
                    text: src[i..j].to_string(),
                    line,
                });
                code_on_line = true;
                i = j;
            }
            c if c.is_ascii_digit() => {
                let j = lex_number(b, i);
                out.tokens.push(Tok {
                    kind: TokKind::Number,
                    text: src[i..j].to_string(),
                    line,
                });
                code_on_line = true;
                i = j;
            }
            _ => {
                let mut matched = None;
                for p in PUNCTS {
                    if src[i..].starts_with(p) {
                        matched = Some(*p);
                        break;
                    }
                }
                let text = match matched {
                    Some(p) => p.to_string(),
                    None => (c as char).to_string(),
                };
                let len = text.len();
                out.tokens.push(Tok {
                    kind: TokKind::Punct,
                    text,
                    line,
                });
                code_on_line = true;
                i += len;
            }
        }
    }
    out
}

fn prefix_len(b: &[u8], i: usize) -> usize {
    // `r…`, `b…`, or `br…` before the quote/hashes.
    if b[i] == b'b' && i + 1 < b.len() && b[i + 1] == b'r' {
        2
    } else {
        1
    }
}

fn starts_raw_or_byte_string(b: &[u8], i: usize) -> bool {
    let p = i + prefix_len(b, i);
    let mut j = p;
    while j < b.len() && b[j] == b'#' {
        j += 1;
    }
    j < b.len() && b[j] == b'"' && (b[i] != b'b' || p == 2 || b[i + 1] == b'"')
}

fn count_hashes(b: &[u8], mut i: usize) -> usize {
    let start = i;
    while i < b.len() && b[i] == b'#' {
        i += 1;
    }
    i - start
}

/// Lexes a string literal starting at `i` (prefix included); returns
/// `(text, newlines inside, index after)`. `hashes` is the raw-string
/// hash count (raw strings take no escapes and close on `"` + hashes;
/// an unhashed `r"…"` is raw with `hashes == 0` — escape handling is
/// keyed off the `r` prefix, closing off the hash count).
fn lex_string(src: &str, i: usize, hashes: usize) -> (String, u32, usize) {
    let b = src.as_bytes();
    let mut j = i;
    // Skip prefix + hashes + opening quote.
    while j < b.len() && b[j] != b'"' {
        j += 1;
    }
    let is_raw = src[i..j].contains('r');
    j += 1;
    let mut nl = 0u32;
    while j < b.len() {
        match b[j] {
            b'\n' => {
                nl += 1;
                j += 1;
            }
            b'\\' if !is_raw => {
                // Escapes are skipped wholesale, but a line-continuation
                // (`\` + newline) still advances the line counter.
                if b.get(j + 1) == Some(&b'\n') {
                    nl += 1;
                }
                j += 2;
            }
            b'"' => {
                if hashes == 0 {
                    j += 1;
                    return (src[i..j].to_string(), nl, j);
                }
                let mut k = j + 1;
                let mut seen = 0;
                while k < b.len() && b[k] == b'#' && seen < hashes {
                    k += 1;
                    seen += 1;
                }
                if seen == hashes {
                    return (src[i..k].to_string(), nl, k);
                }
                j += 1;
            }
            _ => j += 1,
        }
    }
    (src[i..].to_string(), nl, b.len())
}

fn lex_char(b: &[u8], i: usize) -> usize {
    // `i` points at the opening `'`.
    let mut j = i + 1;
    if j < b.len() && b[j] == b'\\' {
        j += 2;
    } else {
        j += 1;
    }
    while j < b.len() && b[j] != b'\'' {
        j += 1;
    }
    (j + 1).min(b.len())
}

fn lifetime_or_char(b: &[u8], i: usize) -> (TokKind, usize) {
    // `'a` / `'static` (no closing quote) vs `'x'` / `'\n'`.
    let next = b.get(i + 1).copied().unwrap_or(0);
    if next == b'\\' {
        return (TokKind::Char, lex_char(b, i));
    }
    if next == b'_' || next.is_ascii_alphabetic() {
        let mut j = i + 2;
        while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
            j += 1;
        }
        if b.get(j).copied() == Some(b'\'') {
            return (TokKind::Char, j + 1);
        }
        return (TokKind::Lifetime, j);
    }
    (TokKind::Char, lex_char(b, i))
}

fn lex_number(b: &[u8], i: usize) -> usize {
    let mut j = i;
    let hex = b[i] == b'0' && matches!(b.get(i + 1), Some(b'x' | b'o' | b'b'));
    if hex {
        j += 2;
        while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
            j += 1;
        }
        return j;
    }
    while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'_') {
        j += 1;
    }
    // Fractional part — but not `1..x` ranges or `1.method()`.
    if j + 1 < b.len() && b[j] == b'.' && b[j + 1].is_ascii_digit() {
        j += 1;
        while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'_') {
            j += 1;
        }
    } else if j < b.len()
        && b[j] == b'.'
        && (j + 1 == b.len() || (b[j + 1] != b'.' && !b[j + 1].is_ascii_alphabetic()))
    {
        j += 1;
    }
    // Exponent.
    if j < b.len() && (b[j] == b'e' || b[j] == b'E') {
        let mut k = j + 1;
        if k < b.len() && (b[k] == b'+' || b[k] == b'-') {
            k += 1;
        }
        if k < b.len() && b[k].is_ascii_digit() {
            j = k;
            while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'_') {
                j += 1;
            }
        }
    }
    // Type suffix (`u64`, `f32`, `usize`).
    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let l =
            lex("let x = \"unwrap() panic!\"; // trailing unwrap()\n/* block\nunwrap */ call();");
        assert!(!idents("let x = \"unwrap()\";").contains(&"unwrap".to_string()));
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].trailing);
        assert!(!l.comments[1].trailing);
        assert_eq!(l.comments[1].line, 2);
    }

    #[test]
    fn raw_strings_close_on_matching_hashes() {
        let l = lex(r###"let s = r#"quote " inside"#; x.unwrap()"###);
        assert!(l.tokens.iter().any(|t| t.is_ident("unwrap")));
        let s = l.tokens.iter().find(|t| t.kind == TokKind::Str).unwrap();
        assert!(s.text.contains("quote"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        let kinds: Vec<TokKind> = l.tokens.iter().map(|t| t.kind).collect();
        assert_eq!(kinds.iter().filter(|k| **k == TokKind::Lifetime).count(), 2);
        assert_eq!(kinds.iter().filter(|k| **k == TokKind::Char).count(), 2);
    }

    #[test]
    fn float_classification() {
        let l = lex("a == 0.0; b == 1; c != 2e-3; d == 0x1f; e..2");
        let floats: Vec<bool> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Number)
            .map(Tok::is_float)
            .collect();
        assert_eq!(floats, vec![true, false, true, false, false]);
    }

    #[test]
    fn multi_char_punct_groups() {
        let l = lex("a += 1; b == c; d -> e; f::g");
        let puncts: Vec<&str> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text.as_str())
            .collect();
        assert!(puncts.contains(&"+="));
        assert!(puncts.contains(&"=="));
        assert!(puncts.contains(&"->"));
        assert!(puncts.contains(&"::"));
    }

    #[test]
    fn line_numbers_track_newlines_in_strings() {
        let l = lex("let s = \"a\nb\";\nfoo()");
        let foo = l.tokens.iter().find(|t| t.is_ident("foo")).unwrap();
        assert_eq!(foo.line, 3);
    }
}
