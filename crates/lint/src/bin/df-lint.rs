//! `df-lint` CLI: one entry point shared by CI and humans.
//!
//! ```text
//! df-lint --workspace [--root PATH] [--format json|text] [--rule NAME]...
//! df-lint [--format json|text] [--rule NAME]... FILE...
//! ```
//!
//! Exit code is the violation count, capped at 100 so shells and CI
//! see a stable "many" instead of a wrapped byte.

use df_lint::{describe, engine, is_known_rule, Format, RULE_IDS};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> String {
    let mut s = String::from(
        "df-lint: static analysis for the df workspace\n\n\
         USAGE:\n  df-lint --workspace [--root PATH] [--format json|text] [--rule NAME]...\n  df-lint [--format json|text] [--rule NAME]... FILE...\n\nRULES:\n",
    );
    for r in RULE_IDS {
        s.push_str(&format!("  {:<22} {}\n", r, describe(r)));
    }
    s.push_str("\nExit code = violation count (capped at 100). 0 means clean.\n");
    s
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut workspace = false;
    let mut root = PathBuf::from(".");
    let mut format = Format::Text;
    let mut rule_filter: Vec<String> = Vec::new();
    let mut files: Vec<PathBuf> = Vec::new();

    while let Some(a) = args.next() {
        match a.as_str() {
            "--workspace" => workspace = true,
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => return fail("--root needs a path"),
            },
            "--format" => match args.next().as_deref() {
                Some("json") => format = Format::Json,
                Some("text") => format = Format::Text,
                _ => return fail("--format must be json or text"),
            },
            "--rule" => match args.next() {
                Some(r) if is_known_rule(&r) => rule_filter.push(r),
                Some(r) => return fail(&format!("unknown rule `{}` (see --help)", r)),
                None => return fail("--rule needs a name"),
            },
            "--help" | "-h" => {
                print!("{}", usage());
                return ExitCode::SUCCESS;
            }
            f if !f.starts_with('-') => files.push(PathBuf::from(f)),
            other => return fail(&format!("unknown flag `{}` (see --help)", other)),
        }
    }

    if !workspace && files.is_empty() {
        return fail("nothing to lint: pass --workspace or file paths");
    }

    let report = if workspace {
        engine::lint_workspace(&root, &rule_filter)
    } else {
        engine::lint_paths(&root, &files, &rule_filter)
    };
    let report = match report {
        Ok(r) => r,
        Err(e) => return fail(&format!("io error: {}", e)),
    };

    print!("{}", engine::render(&report, format));
    ExitCode::from(report.violations.len().min(100) as u8)
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("df-lint: {}", msg);
    eprint!("{}", usage());
    ExitCode::from(101)
}
