//! Drives the rules over files, applies pragma suppression, and
//! renders diagnostics as text or JSON.

use crate::rules::{self, Finding};
use crate::source::SourceFile;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Output format for [`render`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Human-readable `path:line rule message` lines plus a summary.
    Text,
    /// One JSON object with a `violations` array (hand-rolled writer).
    Json,
}

/// Result of linting a set of files.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings that survived pragma filtering, in file/line order.
    pub violations: Vec<Finding>,
    /// Number of findings suppressed by justified pragmas.
    pub suppressed: usize,
    /// Number of files inspected.
    pub files: usize,
}

/// Lints a single source text under a (virtual) workspace-relative
/// path. This is the seam the fixture tests use: scope rules see
/// `path`, not the real location on disk.
pub fn lint_source(path: &str, content: &str, rule_filter: &[String]) -> Report {
    let file = SourceFile::parse(path, content);
    let mut raw = rules::run_all(&file);
    raw.sort_by_key(|f| (f.line, f.rule));

    let mut violations = Vec::new();
    let mut suppressed = 0usize;
    for f in raw {
        // `pragma-hygiene` findings are never pragma-suppressible —
        // that would let a bad pragma excuse itself.
        if f.rule != "pragma-hygiene" {
            let (justified, _unjustified) = file.pragma_lines(f.rule);
            if justified.contains(&f.line) {
                suppressed += 1;
                continue;
            }
        }
        if !rule_filter.is_empty() && !rule_filter.iter().any(|r| r == f.rule) {
            continue;
        }
        violations.push(f);
    }
    Report {
        violations,
        suppressed,
        files: 1,
    }
}

/// Lints every `.rs` file under the workspace rooted at `root`
/// (crate `src/` trees only: integration tests, benches, fixtures,
/// and vendored stubs are out of scope by construction).
pub fn lint_workspace(root: &Path, rule_filter: &[String]) -> io::Result<Report> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let entry = entry?;
            let src = entry.path().join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    let top_src = root.join("src");
    if top_src.is_dir() {
        collect_rs(&top_src, &mut files)?;
    }
    files.sort();
    lint_paths(root, &files, rule_filter)
}

/// Lints an explicit list of files, reporting paths relative to `root`.
pub fn lint_paths(root: &Path, files: &[PathBuf], rule_filter: &[String]) -> io::Result<Report> {
    let mut report = Report::default();
    for f in files {
        let content = fs::read_to_string(f)?;
        let rel = f
            .strip_prefix(root)
            .unwrap_or(f)
            .to_string_lossy()
            .replace('\\', "/");
        let one = lint_source(&rel, &content, rule_filter);
        report.violations.extend(one.violations);
        report.suppressed += one.suppressed;
        report.files += 1;
    }
    Ok(report)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let p = entry.path();
        if p.is_dir() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name == "target" || name == "fixtures" || name == "vendor" {
                continue;
            }
            collect_rs(&p, out)?;
        } else if p.extension().map(|e| e == "rs").unwrap_or(false) {
            out.push(p);
        }
    }
    Ok(())
}

/// Renders a report in the requested format.
pub fn render(report: &Report, format: Format) -> String {
    match format {
        Format::Text => render_text(report),
        Format::Json => render_json(report),
    }
}

fn render_text(report: &Report) -> String {
    let mut s = String::new();
    for v in &report.violations {
        s.push_str(&format!(
            "{}:{} [{}] {}\n",
            v.path, v.line, v.rule, v.message
        ));
    }
    s.push_str(&format!(
        "df-lint: {} violation(s), {} suppressed by justified pragma, {} file(s) checked\n",
        report.violations.len(),
        report.suppressed,
        report.files
    ));
    s
}

fn render_json(report: &Report) -> String {
    let mut s = String::from("{\n  \"violations\": [");
    for (i, v) in report.violations.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            json_escape(v.rule),
            json_escape(&v.path),
            v.line,
            json_escape(&v.message)
        ));
    }
    if !report.violations.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str(&format!(
        "],\n  \"count\": {},\n  \"suppressed\": {},\n  \"files\": {}\n}}\n",
        report.violations.len(),
        report.suppressed,
        report.files
    ));
    s
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn justified_pragma_suppresses_unjustified_does_not() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // df-lint: allow(no-panic-path) -- input validated by caller\n}\nfn g(y: Option<u32>) -> u32 {\n    y.unwrap() // df-lint: allow(no-panic-path)\n}\n";
        let r = lint_source("crates/server/src/http.rs", src, &[]);
        // g's unwrap stays, plus the pragma-hygiene finding for the
        // missing justification.
        assert_eq!(r.suppressed, 1);
        let rules: Vec<&str> = r.violations.iter().map(|v| v.rule).collect();
        assert!(rules.contains(&"no-panic-path"));
        assert!(rules.contains(&"pragma-hygiene"));
    }

    #[test]
    fn rule_filter_narrows_output() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let r = lint_source(
            "crates/server/src/http.rs",
            src,
            &["no-wall-clock".to_string()],
        );
        assert!(r.violations.is_empty());
    }

    #[test]
    fn json_escapes_quotes() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
    }
}
