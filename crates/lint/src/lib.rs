//! # df-lint
//!
//! Workspace-native static analysis for the differential-fairness
//! pipeline. The system's correctness story rests on a handful of
//! invariants — the server never panics on untrusted input, `df-core`
//! never reads the wall clock, counts only mutate through the
//! `PartialCounts` monoid — that used to live in comments. This crate
//! machine-checks them on every build.
//!
//! Entirely dependency-free: a hand-rolled lexer ([`tokens`]), per-file
//! analysis ([`source`]), the rule catalog ([`rules`]), and the driver +
//! renderers ([`engine`]). See `LINTS.md` at the workspace root for the
//! rule catalog and pragma syntax:
//!
//! ```text
//! // df-lint: allow(rule-name) -- why this site is safe
//! ```
//!
//! A pragma without the `-- justification` is itself a violation
//! (`pragma-hygiene`) and suppresses nothing.

pub mod engine;
pub mod rules;
pub mod source;
pub mod tokens;

pub use engine::{lint_paths, lint_source, lint_workspace, render, Format, Report};
pub use rules::{describe, is_known_rule, Finding, RULE_IDS};
