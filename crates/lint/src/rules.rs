//! The rule catalog. Each rule is a pure function from a parsed
//! [`SourceFile`] to raw findings (pragma suppression is applied later
//! by the engine). Scoping — which paths a rule even looks at — lives
//! here too, so the catalog in LINTS.md and the code stay one thing.

use crate::source::SourceFile;
use crate::tokens::{Tok, TokKind};

/// One diagnostic, before pragma filtering.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id (kebab-case, as used in pragmas and `--rule`).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human message.
    pub message: String,
}

/// All rule ids, in catalog order. `pragma-hygiene` is the meta-rule:
/// it fires on pragmas that are malformed, unjustified, or name an
/// unknown rule.
pub const RULE_IDS: &[&str] = &[
    "no-panic-path",
    "no-wall-clock",
    "typed-errors-only",
    "no-lossy-cast",
    "no-float-eq",
    "counts-via-monoid",
    "must-use-results",
    "bounded-alloc-decode",
    "pragma-hygiene",
];

/// Whether `rule` is a known rule id.
pub fn is_known_rule(rule: &str) -> bool {
    RULE_IDS.contains(&rule)
}

/// One-line description per rule (drives `--help` and LINTS.md parity).
pub fn describe(rule: &str) -> &'static str {
    match rule {
        "no-panic-path" => "no unwrap/expect/panic!/slice-index on the untrusted-input paths (server + DFLT decode)",
        "no-wall-clock" => "df-core and df-obs never read Instant::now/SystemTime::now outside the audited Clock seam (replay determinism)",
        "typed-errors-only" => "errors are typed DfError variants, not ad-hoc strings",
        "no-lossy-cast" => "no `as` narrowing casts in the codec decode path; use try_from + CorruptCounts",
        "no-float-eq" => "no ==/!= against float literals outside the approved numerics helpers",
        "counts-via-monoid" => "cell-count arithmetic flows through the PartialCounts monoid",
        "must-use-results" => "no `let _ =` discards of fallible results without a justified pragma",
        "bounded-alloc-decode" => "decode-path allocations are bounded by remaining input, not attacker-chosen headers",
        "pragma-hygiene" => "every df-lint pragma names known rules and carries a `-- justification`",
        _ => "unknown rule",
    }
}

/// Runs every rule on `file`, returning unsuppressed-candidate findings.
pub fn run_all(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    no_panic_path(file, &mut out);
    no_wall_clock(file, &mut out);
    typed_errors_only(file, &mut out);
    no_lossy_cast(file, &mut out);
    no_float_eq(file, &mut out);
    counts_via_monoid(file, &mut out);
    must_use_results(file, &mut out);
    bounded_alloc_decode(file, &mut out);
    pragma_hygiene(file, &mut out);
    out
}

fn push(out: &mut Vec<Finding>, rule: &'static str, file: &SourceFile, line: u32, msg: String) {
    out.push(Finding {
        rule,
        path: file.path.clone(),
        line,
        message: msg,
    });
}

// ---------------------------------------------------------------- scopes

fn in_server_request_path(path: &str) -> bool {
    path.starts_with("crates/server/src/") && !path.ends_with("client.rs")
}

fn in_decode_path(path: &str) -> bool {
    path == "crates/core/src/fleet/codec.rs" || path == "crates/data/src/replay.rs"
}

/// no-panic-path scope: server request/connection path + the untrusted
/// binary decoders (DFLT snapshots, DFRL replay logs).
fn panic_scope(path: &str) -> bool {
    in_server_request_path(path) || in_decode_path(path)
}

fn in_core(path: &str) -> bool {
    path.starts_with("crates/core/src/")
}

/// no-wall-clock scope: df-core (replay determinism) plus df-obs, whose
/// only sanctioned clock read is the audited `Clock` seam in
/// `crates/obs/src/clock.rs` — everything else must take time through an
/// injected `Clock` or a caller-observed duration.
fn wall_clock_scope(path: &str) -> bool {
    in_core(path) || path.starts_with("crates/obs/src/")
}

/// Approved home for exact float comparison helpers.
fn float_eq_exempt(path: &str) -> bool {
    path == "crates/prob/src/numerics.rs"
}

/// Approved home for direct cell-vector arithmetic: the monoid itself
/// and its dense storage layer.
fn monoid_exempt(path: &str) -> bool {
    path == "crates/prob/src/partial.rs" || path == "crates/prob/src/contingency.rs"
}

fn in_alloc_scope(path: &str) -> bool {
    in_decode_path(path) || path == "crates/server/src/http.rs"
}

// ----------------------------------------------------------------- rules

/// `no-panic-path`: `.unwrap()` / `.expect(` / panicking macros /
/// direct index expressions in non-test code of the untrusted paths.
fn no_panic_path(file: &SourceFile, out: &mut Vec<Finding>) {
    if !panic_scope(&file.path) {
        return;
    }
    let toks = &file.tokens;
    for (i, t) in toks.iter().enumerate() {
        if file.is_test_line(t.line) {
            continue;
        }
        // `.unwrap(` / `.expect(`
        if t.kind == TokKind::Ident
            && (t.text == "unwrap" || t.text == "expect")
            && i > 0
            && toks[i - 1].is_punct(".")
            && toks.get(i + 1).map(|n| n.is_punct("(")).unwrap_or(false)
        {
            push(
                out,
                "no-panic-path",
                file,
                t.line,
                format!(".{}() on an untrusted-input path can abort the connection; return a typed DfError", t.text),
            );
        }
        // Panicking macros.
        if t.kind == TokKind::Ident
            && matches!(
                t.text.as_str(),
                "panic"
                    | "unreachable"
                    | "todo"
                    | "unimplemented"
                    | "assert"
                    | "assert_eq"
                    | "assert_ne"
                    | "debug_assert"
            )
            && toks.get(i + 1).map(|n| n.is_punct("!")).unwrap_or(false)
        {
            push(
                out,
                "no-panic-path",
                file,
                t.line,
                format!("{}! can take down a worker mid-request; map the condition to an error response", t.text),
            );
        }
        // Index expressions: `[` whose previous significant token ends an
        // expression (ident, `)`, `]`, `?`). Excludes `#[attr]`, `&[T]`,
        // `vec![…]` (macro bang precedes), and array-type positions.
        if t.is_punct("[") && i > 0 {
            let p = &toks[i - 1];
            let expr_before = matches!(p.kind, TokKind::Ident) && !is_keyword(&p.text)
                || p.is_punct(")")
                || p.is_punct("]")
                || p.is_punct("?");
            let macro_bang =
                i >= 2 && toks[i - 1].kind == TokKind::Ident && toks[i - 2].is_punct("!");
            if expr_before && !macro_bang {
                push(
                    out,
                    "no-panic-path",
                    file,
                    t.line,
                    "direct index/slice can panic on attacker-shaped input; use .get()/.get_mut() and map None to an error".to_string(),
                );
            }
        }
    }
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "mut"
            | "ref"
            | "in"
            | "as"
            | "dyn"
            | "impl"
            | "where"
            | "return"
            | "break"
            | "const"
            | "static"
            | "else"
            | "move"
    )
}

/// `no-wall-clock`: `Instant::now` / `SystemTime::now` in df-core or
/// df-obs.
fn no_wall_clock(file: &SourceFile, out: &mut Vec<Finding>) {
    if !wall_clock_scope(&file.path) {
        return;
    }
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if file.is_test_line(toks[i].line) {
            continue;
        }
        if toks[i].kind == TokKind::Ident
            && (toks[i].text == "Instant" || toks[i].text == "SystemTime")
            && toks.get(i + 1).map(|t| t.is_punct("::")).unwrap_or(false)
            && toks.get(i + 2).map(|t| t.is_ident("now")).unwrap_or(false)
        {
            push(
                out,
                "no-wall-clock",
                file,
                toks[i].line,
                format!("{}::now() here breaks replay determinism; thread the deadline in from the caller or go through the audited Clock seam", toks[i].text),
            );
        }
    }
}

/// `typed-errors-only`: `Err("...")`, `Err(format!(...))`, and
/// `Result<_, String>` error positions outside `error.rs` files.
fn typed_errors_only(file: &SourceFile, out: &mut Vec<Finding>) {
    if file.path.ends_with("error.rs") {
        return;
    }
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if file.is_test_line(toks[i].line) {
            continue;
        }
        if toks[i].is_ident("Err") && toks.get(i + 1).map(|t| t.is_punct("(")).unwrap_or(false) {
            let next = toks.get(i + 2);
            let stringy = match next {
                Some(t) if t.kind == TokKind::Str => true,
                Some(t)
                    if t.is_ident("format")
                        && toks.get(i + 3).map(|n| n.is_punct("!")).unwrap_or(false) =>
                {
                    true
                }
                _ => false,
            };
            if stringy {
                push(
                    out,
                    "typed-errors-only",
                    file,
                    toks[i].line,
                    "Err(<string>) bypasses DfError; callers can't classify it into an HTTP status"
                        .to_string(),
                );
            }
        }
        // `Result<..., String>` — String at the top-level error position
        // (commas nested in tuples/slices/inner generics don't count).
        if toks[i].is_ident("Result") && toks.get(i + 1).map(|t| t.is_punct("<")).unwrap_or(false) {
            let mut depth = 1i32;
            let mut nest = 0i32;
            let mut j = i + 2;
            let mut after_comma_at_depth1 = false;
            while j < toks.len() && depth > 0 {
                let t = &toks[j];
                if t.is_punct("<") {
                    depth += 1;
                } else if t.is_punct(">") {
                    depth -= 1;
                } else if t.is_punct(">>") {
                    depth -= 2;
                } else if t.is_punct("(") || t.is_punct("[") {
                    nest += 1;
                } else if t.is_punct(")") || t.is_punct("]") {
                    nest -= 1;
                } else if t.is_punct(",") && depth == 1 && nest == 0 {
                    after_comma_at_depth1 = true;
                } else if after_comma_at_depth1 && depth == 1 && nest == 0 && t.is_ident("String") {
                    push(
                        out,
                        "typed-errors-only",
                        file,
                        t.line,
                        "Result<_, String> loses error structure; use a DfError (or crate error enum) instead".to_string(),
                    );
                }
                j += 1;
            }
        }
    }
}

/// Types considered "narrowing" targets for `no-lossy-cast`.
const NARROW: &[&str] = &[
    "u8", "u16", "u32", "i8", "i16", "i32", "f32", "usize", "isize",
];

/// `no-lossy-cast`: `as <narrow>` inside the codec decode file.
fn no_lossy_cast(file: &SourceFile, out: &mut Vec<Finding>) {
    if !in_decode_path(&file.path) {
        return;
    }
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if file.is_test_line(toks[i].line) {
            continue;
        }
        if toks[i].is_ident("as") {
            if let Some(t) = toks.get(i + 1) {
                if t.kind == TokKind::Ident && NARROW.contains(&t.text.as_str()) {
                    push(
                        out,
                        "no-lossy-cast",
                        file,
                        toks[i].line,
                        format!("`as {}` silently truncates decoded values (32-bit targets included); use try_from + CorruptCounts", t.text),
                    );
                }
            }
        }
    }
}

/// `no-float-eq`: `==` / `!=` with a float literal or `f64::CONST`
/// operand, outside the approved numerics helpers.
fn no_float_eq(file: &SourceFile, out: &mut Vec<Finding>) {
    if float_eq_exempt(&file.path) {
        return;
    }
    let toks = &file.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if !(t.is_punct("==") || t.is_punct("!=")) || file.is_test_line(t.line) {
            continue;
        }
        let float_left = i >= 1 && operand_is_floaty(toks, i - 1, true);
        let float_right = operand_is_floaty(toks, i + 1, false);
        if float_left || float_right {
            push(
                out,
                "no-float-eq",
                file,
                t.line,
                "exact float comparison; use the approved helpers in df-prob numerics (exactly_zero / exactly)".to_string(),
            );
        }
    }
}

/// Whether the operand adjacent to a comparison is a float literal or a
/// float-constant path like `f64::INFINITY` / `f64::NAN`.
fn operand_is_floaty(toks: &[Tok], i: usize, left: bool) -> bool {
    match toks.get(i) {
        Some(t) if t.is_float() => true,
        // Right side: unary minus in front of the literal (`x == -1.0`).
        Some(t) if !left && t.is_punct("-") => {
            toks.get(i + 1).map(|n| n.is_float()).unwrap_or(false)
        }
        // Right side: `f64::CONST`. Left side: CONST preceded by `f64::`.
        Some(t) if !left && (t.text == "f64" || t.text == "f32") => {
            toks.get(i + 1).map(|n| n.is_punct("::")).unwrap_or(false)
        }
        Some(t) if left && t.kind == TokKind::Ident => {
            i >= 2
                && toks[i - 1].is_punct("::")
                && matches!(toks[i - 2].text.as_str(), "f64" | "f32")
        }
        _ => false,
    }
}

/// `counts-via-monoid`: compound assignment touching a `data` cell
/// vector outside the monoid's own files.
fn counts_via_monoid(file: &SourceFile, out: &mut Vec<Finding>) {
    if monoid_exempt(&file.path) || !in_core_or_prob(&file.path) {
        return;
    }
    let toks = &file.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if !(t.is_punct("+=") || t.is_punct("-=") || t.is_punct("*=")) || file.is_test_line(t.line)
        {
            continue;
        }
        // Look back across the statement (to the previous `;`, `{`, or
        // `}`) for a `data` / `counts` / `cells` identifier — the shapes
        // cell-count storage takes in this codebase.
        let mut j = i;
        let mut touches_counts = false;
        while j > 0 {
            j -= 1;
            let p = &toks[j];
            if p.is_punct(";") || p.is_punct("{") || p.is_punct("}") {
                break;
            }
            if p.kind == TokKind::Ident
                && matches!(p.text.as_str(), "data" | "counts" | "cells" | "dst")
            {
                touches_counts = true;
            }
        }
        if touches_counts {
            push(
                out,
                "counts-via-monoid",
                file,
                t.line,
                "direct cell-count arithmetic outside partial.rs; route the mutation through the PartialCounts monoid so fleet merges stay byte-identical".to_string(),
            );
        }
    }
}

fn in_core_or_prob(path: &str) -> bool {
    path.starts_with("crates/core/src/") || path.starts_with("crates/prob/src/")
}

/// `must-use-results`: `let _ =` discards. `let _ = write!(...)` /
/// `writeln!(...)` into a String is exempt (infallible by design).
fn must_use_results(file: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if file.is_test_line(toks[i].line) {
            continue;
        }
        if toks[i].is_ident("let")
            && toks.get(i + 1).map(|t| t.is_ident("_")).unwrap_or(false)
            && toks.get(i + 2).map(|t| t.is_punct("=")).unwrap_or(false)
        {
            let exempt = toks
                .get(i + 3)
                .map(|t| t.is_ident("write") || t.is_ident("writeln"))
                .unwrap_or(false)
                && toks.get(i + 4).map(|t| t.is_punct("!")).unwrap_or(false);
            if !exempt {
                push(
                    out,
                    "must-use-results",
                    file,
                    toks[i].line,
                    "`let _ =` silently discards a result; handle it, or justify the discard with a pragma".to_string(),
                );
            }
        }
    }
}

/// `bounded-alloc-decode`: in the decode paths, `with_capacity(...)` /
/// `reserve(...)` arguments must be literals or values tied to the
/// remaining input (`len`, `remaining`, or an identifier bounded by an
/// earlier `count(`/`remaining(` call) — never a raw attacker-chosen
/// header value.
fn bounded_alloc_decode(file: &SourceFile, out: &mut Vec<Finding>) {
    if !in_alloc_scope(&file.path) {
        return;
    }
    let toks = &file.tokens;
    // Identifiers bound from a bounded source anywhere in the file:
    // `let <id> ... count(...)` or any statement mentioning `remaining`.
    let mut bounded_ids: Vec<&str> = Vec::new();
    for i in 0..toks.len() {
        if toks[i].is_ident("let") {
            if let Some(name) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) {
                // Scan the statement for a bounding call.
                let mut j = i + 2;
                while j < toks.len() && !toks[j].is_punct(";") {
                    if toks[j].is_ident("count")
                        || toks[j].is_ident("remaining")
                        || toks[j].is_ident("min")
                    {
                        bounded_ids.push(name.text.as_str());
                        break;
                    }
                    j += 1;
                }
            }
        }
    }
    for i in 0..toks.len() {
        let t = &toks[i];
        if file.is_test_line(t.line) {
            continue;
        }
        if !(t.is_ident("with_capacity") || t.is_ident("reserve"))
            || !toks.get(i + 1).map(|n| n.is_punct("(")).unwrap_or(false)
        {
            continue;
        }
        // Collect the argument tokens. An argument that takes a `.len()`
        // / `remaining()` / `.min(..)` anywhere is proportional to data
        // we already hold, so the whole expression is bounded; otherwise
        // every identifier must itself be a known-bounded binding.
        let mut depth = 0i32;
        let mut j = i + 1;
        let mut all_bounded = true;
        let mut any_bounding_call = false;
        let mut any_ident = false;
        while j < toks.len() {
            let a = &toks[j];
            if a.is_punct("(") {
                depth += 1;
            } else if a.is_punct(")") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if a.kind == TokKind::Ident {
                any_ident = true;
                let id = a.text.as_str();
                if id.contains("len") || id == "remaining" || id == "capacity" || id == "min" {
                    any_bounding_call = true;
                }
                let fine = id == "self"
                    || NARROW.contains(&id)
                    || id == "u64"
                    || bounded_ids.contains(&id);
                if !fine {
                    all_bounded = false;
                }
            }
            j += 1;
        }
        if any_ident && !all_bounded && !any_bounding_call {
            push(
                out,
                "bounded-alloc-decode",
                file,
                t.line,
                "allocation sized by a decoded value that isn't visibly bounded by remaining input; clamp it (e.g. via Reader::count) first".to_string(),
            );
        }
    }
}

/// `pragma-hygiene`: every pragma must carry a justification and name
/// only known rules.
fn pragma_hygiene(file: &SourceFile, out: &mut Vec<Finding>) {
    for p in &file.pragmas {
        if p.justification.is_none() {
            push(
                out,
                "pragma-hygiene",
                file,
                p.line,
                "df-lint pragma without a `-- justification`; an unexplained suppression is itself a violation".to_string(),
            );
        }
        for r in &p.rules {
            if !is_known_rule(r) {
                push(
                    out,
                    "pragma-hygiene",
                    file,
                    p.line,
                    format!("df-lint pragma names unknown rule `{}`", r),
                );
            }
        }
        if p.rules.is_empty() {
            push(
                out,
                "pragma-hygiene",
                file,
                p.line,
                "df-lint pragma allows no rules; delete it or name the rule being suppressed"
                    .to_string(),
            );
        }
    }
}
