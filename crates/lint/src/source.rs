//! Per-file analysis context: the token stream, the comment stream,
//! which lines are test code, and which lines carry pragmas.

use crate::tokens::{lex, Comment, Lexed, Tok, TokKind};

/// A parsed `df-lint: allow(...)` pragma.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// Rule names listed inside `allow(...)`, verbatim.
    pub rules: Vec<String>,
    /// Justification after ` -- `, if present and non-empty.
    pub justification: Option<String>,
    /// 1-based line of the comment.
    pub line: u32,
    /// True when code precedes the pragma on its line (it then governs
    /// that line); false means it governs the next code line.
    pub trailing: bool,
}

/// One file, fully prepared for rule evaluation.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (used for scoping).
    pub path: String,
    /// Code tokens.
    pub tokens: Vec<Tok>,
    /// Pragmas found in comments.
    pub pragmas: Vec<Pragma>,
    /// `test_lines[i]` is true when 1-based line `i + 1` is inside
    /// `#[cfg(test)]` / `#[test]` code.
    test_lines: Vec<bool>,
    /// Highest line number seen (for bounds).
    pub max_line: u32,
}

impl SourceFile {
    /// Lexes and analyses `content` as the file at `path`.
    pub fn parse(path: &str, content: &str) -> SourceFile {
        let Lexed { tokens, comments } = lex(content);
        let max_line = tokens
            .last()
            .map(|t| t.line)
            .unwrap_or(0)
            .max(comments.last().map(|c| c.line).unwrap_or(0))
            .max(content.lines().count() as u32);
        let test_lines = mark_test_lines(&tokens, max_line);
        let pragmas = comments.iter().filter_map(parse_pragma).collect();
        SourceFile {
            path: path.to_string(),
            tokens,
            pragmas,
            test_lines,
            max_line,
        }
    }

    /// Whether 1-based `line` is inside test-only code.
    pub fn is_test_line(&self, line: u32) -> bool {
        line >= 1
            && self
                .test_lines
                .get(line as usize - 1)
                .copied()
                .unwrap_or(false)
    }

    /// Lines governed by a pragma for `rule`, split into justified and
    /// unjustified. A trailing pragma governs its own line; a standalone
    /// pragma governs the next line that has a code token (falling back
    /// to the immediately-next line when the file ends first).
    pub fn pragma_lines(&self, rule: &str) -> (Vec<u32>, Vec<u32>) {
        let mut justified = Vec::new();
        let mut unjustified = Vec::new();
        for p in &self.pragmas {
            if !p.rules.iter().any(|r| r == rule) {
                continue;
            }
            let governed = if p.trailing {
                p.line
            } else {
                self.tokens
                    .iter()
                    .map(|t| t.line)
                    .find(|l| *l > p.line)
                    .unwrap_or(p.line + 1)
            };
            if p.justification.is_some() {
                justified.push(governed);
            } else {
                unjustified.push(governed);
            }
        }
        (justified, unjustified)
    }
}

/// Parses a comment as a pragma; `None` when the comment isn't one.
/// Accepts `df-lint: allow(rule-a, rule-b) -- because reasons`.
fn parse_pragma(c: &Comment) -> Option<Pragma> {
    let text = c.text.trim();
    let rest = text.strip_prefix("df-lint:")?.trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    let tail = rest[close + 1..].trim_start();
    let justification = tail
        .strip_prefix("--")
        .map(|j| j.trim())
        .filter(|j| !j.is_empty())
        .map(|j| j.to_string());
    Some(Pragma {
        rules,
        justification,
        line: c.line,
        trailing: c.trailing,
    })
}

/// Builds the per-line test mask: lines covered by an item annotated
/// `#[cfg(test)]` or `#[test]` (attribute token sequence, then the
/// brace-matched body of the following item).
fn mark_test_lines(tokens: &[Tok], max_line: u32) -> Vec<bool> {
    let mut mask = vec![false; max_line as usize];
    let mut i = 0usize;
    while i < tokens.len() {
        if let Some(attr_end) = test_attr_at(tokens, i) {
            // Span the attribute itself plus the item body it governs.
            let start_line = tokens[i].line;
            let end_line = item_end_line(tokens, attr_end);
            for l in start_line..=end_line.min(max_line) {
                if l >= 1 {
                    mask[l as usize - 1] = true;
                }
            }
            i = attr_end;
        } else {
            i += 1;
        }
    }
    mask
}

/// If `tokens[i..]` starts a `#[test]`, `#[cfg(test)]`, or
/// `#[cfg(any(test, ...))]`-style attribute, returns the index just
/// past the closing `]`.
fn test_attr_at(tokens: &[Tok], i: usize) -> Option<usize> {
    if !(tokens.get(i)?.is_punct("#") && tokens.get(i + 1)?.is_punct("[")) {
        return None;
    }
    // Find the matching `]`.
    let mut depth = 0usize;
    let mut j = i + 1;
    let mut mentions_test = false;
    let mut is_cfg_or_test = false;
    let mut negated = false;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct("[") {
            depth += 1;
        } else if t.is_punct("]") {
            depth -= 1;
            if depth == 0 {
                j += 1;
                break;
            }
        } else if t.kind == TokKind::Ident {
            if j == i + 2 && (t.text == "test" || t.text == "cfg" || t.text == "tokio") {
                is_cfg_or_test = true;
            }
            if t.text == "test" {
                mentions_test = true;
            }
            if t.text == "not" {
                // `#[cfg(not(test))]` is production code.
                negated = true;
            }
        }
        j += 1;
    }
    if is_cfg_or_test && mentions_test && !negated {
        Some(j)
    } else {
        None
    }
}

/// Last line of the item following an attribute: skips further
/// attributes, then brace-matches the first `{ ... }` block (or stops
/// at `;` for braceless items).
fn item_end_line(tokens: &[Tok], mut i: usize) -> u32 {
    // Skip stacked attributes.
    while i + 1 < tokens.len() && tokens[i].is_punct("#") && tokens[i + 1].is_punct("[") {
        let mut depth = 0usize;
        let mut j = i + 1;
        while j < tokens.len() {
            if tokens[j].is_punct("[") {
                depth += 1;
            } else if tokens[j].is_punct("]") {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
        i = j;
    }
    let mut depth = 0usize;
    let mut entered = false;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct("{") {
            depth += 1;
            entered = true;
        } else if t.is_punct("}") {
            depth = depth.saturating_sub(1);
            if entered && depth == 0 {
                return t.line;
            }
        } else if t.is_punct(";") && !entered {
            return t.line;
        }
        i += 1;
    }
    tokens.last().map(|t| t.line).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_module_is_masked() {
        let src = "fn prod() { x.unwrap(); }\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { y.unwrap(); }\n}\n";
        let f = SourceFile::parse("src/lib.rs", src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(3));
        assert!(f.is_test_line(6));
        assert!(f.is_test_line(7));
    }

    #[test]
    fn standalone_test_fn_is_masked() {
        let src = "#[test]\nfn t() {\n    boom();\n}\nfn prod() {}\n";
        let f = SourceFile::parse("src/lib.rs", src);
        assert!(f.is_test_line(1));
        assert!(f.is_test_line(3));
        assert!(!f.is_test_line(5));
    }

    #[test]
    fn pragma_parsing_trailing_and_standalone() {
        let src = "let a = 1; // df-lint: allow(no-panic-path) -- checked above\n// df-lint: allow(no-wall-clock, must-use-results) -- server edge\nlet b = now();\nlet c = 2; // df-lint: allow(no-float-eq)\n";
        let f = SourceFile::parse("src/lib.rs", src);
        let (j, u) = f.pragma_lines("no-panic-path");
        assert_eq!((j, u), (vec![1], vec![]));
        let (j, _) = f.pragma_lines("no-wall-clock");
        assert_eq!(j, vec![3]);
        let (j, _) = f.pragma_lines("must-use-results");
        assert_eq!(j, vec![3]);
        let (j, u) = f.pragma_lines("no-float-eq");
        assert_eq!((j, u), (vec![], vec![4]));
    }

    #[test]
    fn attribute_without_test_is_ignored() {
        let src = "#[derive(Debug)]\nstruct S;\nfn f() {}\n";
        let f = SourceFile::parse("src/lib.rs", src);
        assert!(!f.is_test_line(1));
        assert!(!f.is_test_line(2));
    }
}
